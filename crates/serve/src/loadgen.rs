//! Closed-loop load generator for the live server.
//!
//! Each connection is a blocking TCP client thread running the same
//! device lifecycle the trace recorder uses: enrol (Hello, Register,
//! Observe), then a seeded weighted mix of state updates, comms,
//! observations and sensed-batch submissions. *Closed-loop* means every
//! client waits for its response before sending the next request, so the
//! measured latency distribution is honest — no coordinated-omission
//! artefacts from open-loop backlog.
//!
//! Latencies land in per-thread [`LatencyHistogram`]s merged at the end;
//! the report carries requests/sec plus p50/p99/p999 for the perf
//! harness and the CI smoke job.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use senseaid_device::Sensor;
use senseaid_geo::GeoPoint;
use senseaid_sim::SimRng;

use crate::conn::FrameAssembler;
use crate::hist::LatencyHistogram;
use crate::wire::{
    encode_request, WireReading, WireRequest, WireTaskSpec, KIND_PUSH, KIND_RESPONSE,
};

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests to issue across all connections (measured
    /// requests; enrolment is excluded).
    pub requests: u64,
    /// Optional wall-clock cap; whichever of `requests`/`duration`
    /// trips first ends the bout.
    pub duration: Option<Duration>,
    /// Seed for the request mix.
    pub seed: u64,
    /// Have connection 0 submit a sensing task so assignment pushes
    /// exercise the push path during the bout.
    pub submit_task: bool,
    /// Send a wire `Shutdown` when done (lets CI stop the server from
    /// the client side).
    pub stop_server: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:7411".to_owned(),
            connections: 4,
            requests: 10_000,
            duration: None,
            seed: 0x5EED,
            submit_task: true,
            stop_server: false,
        }
    }
}

/// What a load bout measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Measured requests completed (responses received).
    pub requests: u64,
    /// Requests that failed transport-side (connection lost mid-bout).
    pub errors: u64,
    /// Wall time of the measured bout.
    pub elapsed: Duration,
    /// Latency distribution over all measured requests.
    pub hist: LatencyHistogram,
}

impl LoadReport {
    /// Requests per second over the bout.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// One-line operator rendering.
    pub fn render(&self) -> String {
        format!(
            "loadgen: requests={} errors={} elapsed_ms={:.1} rps={:.0} p50_ms={:.3} p99_ms={:.3} p999_ms={:.3} max_ms={:.3}",
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64() * 1e3,
            self.rps(),
            self.hist.quantile_ms(0.50),
            self.hist.quantile_ms(0.99),
            self.hist.quantile_ms(0.999),
            self.hist.max_ns() as f64 / 1e6,
        )
    }
}

/// A blocking client: send one frame, wait for its response, skipping
/// (but fully consuming) any assignment pushes interleaved on the
/// stream.
struct Client {
    stream: TcpStream,
    assembler: FrameAssembler,
    scratch: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            assembler: FrameAssembler::new(),
            scratch: vec![0u8; 16 * 1024],
        })
    }

    /// Sends `req` and blocks until the matching response frame arrives.
    fn call(&mut self, req: &WireRequest) -> std::io::Result<()> {
        let frame = encode_request(req);
        self.stream.write_all(&frame)?;
        loop {
            while let Some((kind, _payload)) = self
                .assembler
                .next_frame()
                .map_err(|e| std::io::Error::other(format!("wire: {e}")))?
            {
                match kind {
                    KIND_RESPONSE => return Ok(()),
                    KIND_PUSH => continue,
                    other => {
                        return Err(std::io::Error::other(format!(
                            "unexpected frame kind {other:#x} from server"
                        )))
                    }
                }
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            self.assembler.extend(&self.scratch[..n]);
        }
    }
}

fn enrolment(imei: u64, position: GeoPoint) -> Vec<WireRequest> {
    vec![
        WireRequest::Hello { imei },
        WireRequest::Register {
            imei,
            energy_budget_j: 140.0,
            critical_battery_pct: 15.0,
            battery_pct: 90.0,
            device_type: "loadgen-phone".to_owned(),
            sensors: vec![Sensor::Barometer, Sensor::Light],
        },
        WireRequest::Observe {
            imei,
            lat_deg: position.lat_deg(),
            lon_deg: position.lon_deg(),
            cell: None,
        },
    ]
}

/// The seeded steady-state mix — the same weighting the trace recorder
/// uses, so live load resembles the replayed workload.
fn next_request(rng: &mut SimRng, imei: u64, seq: &mut u64, battery: &mut f64) -> WireRequest {
    let roll = rng.uniform();
    if roll < 0.35 {
        *battery = (*battery - rng.uniform_range(0.0, 0.4)).max(5.0);
        WireRequest::StateUpdate {
            imei,
            battery_pct: *battery,
            cs_energy_j: rng.uniform_range(0.0, 0.5),
        }
    } else if roll < 0.55 {
        WireRequest::Comm { imei }
    } else if roll < 0.80 {
        let centre = GeoPoint::new(40.4284, -86.9138);
        let position = centre.offset_by_meters(
            rng.uniform_range(-900.0, 900.0),
            rng.uniform_range(-900.0, 900.0),
        );
        WireRequest::Observe {
            imei,
            lat_deg: position.lat_deg(),
            lon_deg: position.lon_deg(),
            cell: None,
        }
    } else {
        *seq += 1;
        WireRequest::SubmitBatch {
            imei,
            seq: *seq,
            attempt: 1,
            readings: vec![WireReading {
                request: rng.uniform_usize(0, 8) as u64,
                sensor: Sensor::Barometer,
                value: rng.uniform_range(990.0, 1030.0),
                taken_at_us: *seq * 1_000,
                lat_deg: 40.4284,
                lon_deg: -86.9138,
            }],
        }
    }
}

/// Runs a closed-loop load bout against a live server.
///
/// # Errors
///
/// Connection-establishment failures. Errors *during* the bout are
/// counted in [`LoadReport::errors`] rather than aborting the run.
pub fn run_loadgen(options: &LoadgenOptions) -> std::io::Result<LoadReport> {
    let connections = options.connections.max(1);
    // Fail fast if the server is unreachable, before spawning threads.
    drop(TcpStream::connect(&options.addr)?);

    let issued = Arc::new(AtomicU64::new(0));
    let deadline = options.duration.map(|d| Instant::now() + d);
    let started = Instant::now();
    let mut joins = Vec::with_capacity(connections);
    for worker in 0..connections {
        let addr = options.addr.clone();
        let issued = Arc::clone(&issued);
        let total = options.requests;
        let seed = options.seed;
        let submit_task = options.submit_task && worker == 0;
        joins.push(std::thread::spawn(move || {
            let mut hist = LatencyHistogram::new();
            let mut errors = 0u64;
            let mut completed = 0u64;
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return (hist, 0, 1),
            };
            let mut rng = SimRng::from_seed_label(seed ^ worker as u64, "loadgen");
            let imei = 0x10AD_0000 + worker as u64;
            let centre = GeoPoint::new(40.4284, -86.9138);
            let position = centre.offset_by_meters(
                rng.uniform_range(-800.0, 800.0),
                rng.uniform_range(-800.0, 800.0),
            );
            for req in enrolment(imei, position) {
                if client.call(&req).is_err() {
                    return (hist, completed, errors + 1);
                }
            }
            if submit_task {
                let spec = WireTaskSpec {
                    sensor: Sensor::Barometer,
                    centre_lat: centre.lat_deg(),
                    centre_lon: centre.lon_deg(),
                    radius_m: 2_000.0,
                    spatial_density: 2,
                    one_shot: false,
                    period_us: 120_000_000,
                    duration_us: 1_200_000_000,
                };
                let _ = client.call(&WireRequest::SubmitTask { cas: 1, spec });
            }
            let mut seq = 0u64;
            let mut battery = 90.0f64;
            loop {
                if issued.fetch_add(1, Ordering::Relaxed) >= total {
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
                let req = next_request(&mut rng, imei, &mut seq, &mut battery);
                let sent = Instant::now();
                match client.call(&req) {
                    Ok(()) => {
                        hist.record(sent.elapsed());
                        completed += 1;
                    }
                    Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
            (hist, completed, errors)
        }));
    }

    let mut hist = LatencyHistogram::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    for join in joins {
        let (h, c, e) = join.join().expect("loadgen thread panicked");
        hist.merge(&h);
        requests += c;
        errors += e;
    }
    let elapsed = started.elapsed();

    if options.stop_server {
        if let Ok(mut client) = Client::connect(&options.addr) {
            let _ = client.call(&WireRequest::Shutdown);
        }
    }

    Ok(LoadReport {
        requests,
        errors,
        elapsed,
        hist,
    })
}
