//! A synthetic, spatio-temporally correlated weather field.
//!
//! The study collected barometric pressure for a hyperlocal weather map.
//! For readings to be meaningful in the reproduction, nearby devices must
//! read nearly identical pressures and the field must evolve smoothly —
//! [`WeatherField`] builds both from a sum of deterministic sinusoids with
//! seed-derived phases (a cheap, reproducible stand-in for real weather).

use serde::{Deserialize, Serialize};

use senseaid_device::{Sensor, SensorEnvironment};
use senseaid_geo::GeoPoint;
use senseaid_sim::{SimRng, SimTime};

/// A deterministic weather field over the campus.
///
/// # Example
///
/// ```
/// use senseaid_device::{Sensor, SensorEnvironment};
/// use senseaid_geo::GeoPoint;
/// use senseaid_sim::SimTime;
/// use senseaid_workload::WeatherField;
///
/// let field = WeatherField::new(42);
/// let p = GeoPoint::new(40.4284, -86.9138);
/// let a = field.truth(Sensor::Barometer, p, SimTime::ZERO);
/// let b = field.truth(Sensor::Barometer, p.offset_by_meters(100.0, 0.0), SimTime::ZERO);
/// assert!((a - b).abs() < 0.5, "100 m apart reads nearly the same pressure");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherField {
    base_pressure_hpa: f64,
    base_temp_c: f64,
    base_humidity: f64,
    /// Phases (radians) of the temporal harmonics, derived from the seed.
    phases: Vec<f64>,
    /// Spatial gradient direction (unit vector in the local plane).
    grad_north: f64,
    grad_east: f64,
    anchor: GeoPoint,
}

impl WeatherField {
    /// Creates a field with seed-derived weather phases.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::from_seed_label(seed, "weather-field");
        let phases: Vec<f64> = (0..6)
            .map(|_| rng.uniform_range(0.0, std::f64::consts::TAU))
            .collect();
        let dir = rng.uniform_range(0.0, std::f64::consts::TAU);
        WeatherField {
            base_pressure_hpa: 1013.25,
            base_temp_c: 18.0,
            base_humidity: 55.0,
            phases,
            grad_north: dir.cos(),
            grad_east: dir.sin(),
            anchor: GeoPoint::new(40.4284, -86.9138),
        }
    }

    /// Pressure (hPa) at a position and time.
    pub fn pressure(&self, position: GeoPoint, at: SimTime) -> f64 {
        let t = at.as_secs_f64();
        // Temporal: a slow synoptic swing (~2 days), a diurnal tide
        // (~12 h), and a mesoscale wobble (~3 h).
        let temporal = 6.0 * (t / 172_800.0 * std::f64::consts::TAU + self.phases[0]).sin()
            + 1.2 * (t / 43_200.0 * std::f64::consts::TAU + self.phases[1]).sin()
            + 0.5 * (t / 10_800.0 * std::f64::consts::TAU + self.phases[2]).sin();
        // Spatial: a gentle pressure gradient, ~0.3 hPa per 10 km.
        let (n, e) = self.anchor.displacement_to(position);
        let spatial = (n * self.grad_north + e * self.grad_east) * 3e-5;
        self.base_pressure_hpa + temporal + spatial
    }

    /// Temperature (°C) at a position and time.
    pub fn temperature(&self, _position: GeoPoint, at: SimTime) -> f64 {
        let t = at.as_secs_f64();
        self.base_temp_c + 7.0 * (t / 86_400.0 * std::f64::consts::TAU + self.phases[3]).sin()
    }

    /// Relative humidity (%) at a position and time.
    pub fn humidity(&self, _position: GeoPoint, at: SimTime) -> f64 {
        let t = at.as_secs_f64();
        (self.base_humidity + 20.0 * (t / 86_400.0 * std::f64::consts::TAU + self.phases[4]).sin())
            .clamp(5.0, 100.0)
    }
}

impl SensorEnvironment for WeatherField {
    fn truth(&self, sensor: Sensor, position: GeoPoint, at: SimTime) -> f64 {
        match sensor {
            Sensor::Barometer => self.pressure(position, at),
            Sensor::Thermometer => self.temperature(position, at),
            Sensor::Humidity => self.humidity(position, at),
            Sensor::Light => {
                // Day/night cycle peaking at noon.
                let t = at.as_secs_f64();
                let day_phase = (t / 86_400.0 * std::f64::consts::TAU).sin();
                (day_phase.max(0.0) * 80_000.0) + 100.0
            }
            // Motion/field sensors read small ambient values.
            Sensor::Accelerometer => 9.81,
            Sensor::Magnetometer => 48.0,
            Sensor::Gyroscope => 0.0,
            Sensor::Gps => 0.0,
            Sensor::Microphone => 45.0,
            Sensor::Camera => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_sim::SimDuration;

    fn field() -> WeatherField {
        WeatherField::new(7)
    }

    fn campus() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    #[test]
    fn pressure_is_plausible_everywhere() {
        let f = field();
        for h in 0..48 {
            for (dn, de) in [(0.0, 0.0), (1000.0, -1000.0), (-800.0, 500.0)] {
                let p = f.pressure(
                    campus().offset_by_meters(dn, de),
                    SimTime::ZERO + SimDuration::from_hours(h),
                );
                assert!((990.0..1040.0).contains(&p), "pressure {p} at h={h}");
            }
        }
    }

    #[test]
    fn nearby_points_agree_far_points_differ_more() {
        let f = field();
        let t = SimTime::from_mins(30);
        let a = f.pressure(campus(), t);
        let near = f.pressure(campus().offset_by_meters(200.0, 0.0), t);
        let far = f.pressure(campus().offset_by_meters(100_000.0, 0.0), t);
        assert!((a - near).abs() < 0.2);
        assert!((a - far).abs() > (a - near).abs());
    }

    #[test]
    fn field_evolves_smoothly_in_time() {
        let f = field();
        let mut prev = f.pressure(campus(), SimTime::ZERO);
        for min in 1..240u64 {
            let p = f.pressure(campus(), SimTime::from_mins(min));
            assert!((p - prev).abs() < 0.15, "jump at minute {min}");
            prev = p;
        }
    }

    #[test]
    fn field_actually_changes_over_hours() {
        let f = field();
        let a = f.pressure(campus(), SimTime::ZERO);
        let samples: Vec<f64> = (1..=24)
            .map(|h| f.pressure(campus(), SimTime::ZERO + SimDuration::from_hours(h)))
            .collect();
        assert!(
            samples.iter().any(|p| (p - a).abs() > 0.5),
            "weather must move over a day"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WeatherField::new(1);
        let b = WeatherField::new(1);
        let c = WeatherField::new(2);
        let t = SimTime::from_mins(90);
        assert_eq!(a.pressure(campus(), t), b.pressure(campus(), t));
        assert_ne!(a.pressure(campus(), t), c.pressure(campus(), t));
    }

    #[test]
    fn humidity_stays_in_bounds() {
        let f = field();
        for h in 0..72 {
            let rh = f.humidity(campus(), SimTime::ZERO + SimDuration::from_hours(h));
            assert!((5.0..=100.0).contains(&rh));
        }
    }

    #[test]
    fn environment_trait_dispatches() {
        let f = field();
        let p = f.truth(Sensor::Barometer, campus(), SimTime::ZERO);
        assert_eq!(p, f.pressure(campus(), SimTime::ZERO));
        let g = f.truth(Sensor::Accelerometer, campus(), SimTime::ZERO);
        assert_eq!(g, 9.81);
    }
}

/// A weather field with a sharp pressure front crossing the campus — the
/// kind of mesoscale event (gust front, derecho outflow) a hyperlocal
/// pressure network exists to catch. Before `front_arrives` the field is
/// the base [`WeatherField`]; afterwards a steep moving gradient sweeps
/// through, making *spatial* pressure differences across the campus large
/// enough that a fixed 2-device density under-samples the structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormFront {
    base: WeatherField,
    /// When the front reaches the campus anchor.
    front_arrives: SimTime,
    /// Pressure drop across the front, hPa.
    depth_hpa: f64,
    /// Front propagation speed, m/s.
    speed_mps: f64,
    /// Width of the transition zone, metres.
    width_m: f64,
    anchor: GeoPoint,
}

impl StormFront {
    /// A front of `depth_hpa` arriving at `front_arrives`. It crawls at
    /// 2 m/s with a 600 m transition zone, so crossing the ±1.5 km campus
    /// takes ~25 minutes — several sampling rounds of a 5-minute task.
    pub fn new(seed: u64, front_arrives: SimTime, depth_hpa: f64) -> Self {
        StormFront {
            base: WeatherField::new(seed),
            front_arrives,
            depth_hpa,
            speed_mps: 2.0,
            width_m: 600.0,
            anchor: GeoPoint::new(40.4284, -86.9138),
        }
    }

    /// The base field (pre-storm behaviour).
    pub fn base(&self) -> &WeatherField {
        &self.base
    }

    /// Pressure including the front's contribution.
    pub fn pressure(&self, position: GeoPoint, at: SimTime) -> f64 {
        let base = self.base.pressure(position, at);
        if at < self.front_arrives {
            return base;
        }
        // The front line moves from west to east; its position relative to
        // the anchor grows with time.
        let elapsed = at.elapsed_since(self.front_arrives).as_secs_f64();
        let front_east = -1_500.0 + self.speed_mps * elapsed;
        let (_, east) = self.anchor.displacement_to(position);
        // Behind the front the pressure has dropped by `depth`; the
        // transition is a smooth ramp of `width_m`.
        let x = (east - front_east) / self.width_m;
        let ramp = 1.0 / (1.0 + (-4.0 * -x).exp()); // 1 behind, 0 ahead
        base - self.depth_hpa * ramp
    }
}

impl SensorEnvironment for StormFront {
    fn truth(&self, sensor: Sensor, position: GeoPoint, at: SimTime) -> f64 {
        match sensor {
            Sensor::Barometer => self.pressure(position, at),
            other => self.base.truth(other, position, at),
        }
    }
}

#[cfg(test)]
mod storm_tests {
    use super::*;
    use senseaid_sim::SimDuration;

    fn campus() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    #[test]
    fn quiet_before_the_front() {
        let storm = StormFront::new(3, SimTime::from_mins(60), 6.0);
        let t = SimTime::from_mins(30);
        assert_eq!(
            storm.pressure(campus(), t),
            storm.base().pressure(campus(), t)
        );
    }

    #[test]
    fn front_creates_a_spatial_gradient_then_passes() {
        let storm = StormFront::new(3, SimTime::from_mins(60), 6.0);
        // While the front is crossing the campus, east and west differ
        // (front line reaches the anchor ~12.5 min after arrival at 2 m/s).
        let crossing = SimTime::from_mins(60) + SimDuration::from_secs(750);
        let west = storm.pressure(campus().offset_by_meters(0.0, -1000.0), crossing);
        let east = storm.pressure(campus().offset_by_meters(0.0, 1000.0), crossing);
        assert!(
            (west - east).abs() > 2.0,
            "crossing front must split the campus: west {west:.2} east {east:.2}"
        );
        // Long after, the whole campus sits behind the front (pressure
        // dropped everywhere, gradient back to small).
        let after = SimTime::from_mins(60) + SimDuration::from_mins(45);
        let west_a = storm.pressure(campus().offset_by_meters(0.0, -1000.0), after);
        let east_a = storm.pressure(campus().offset_by_meters(0.0, 1000.0), after);
        assert!((west_a - east_a).abs() < 1.0, "front has passed");
        assert!(
            west_a
                < storm
                    .base()
                    .pressure(campus().offset_by_meters(0.0, -1000.0), after)
                    - 4.0,
            "pressure dropped behind the front"
        );
    }

    #[test]
    fn non_barometer_sensors_ignore_the_storm() {
        let storm = StormFront::new(3, SimTime::from_mins(10), 6.0);
        let t = SimTime::from_mins(30);
        assert_eq!(
            storm.truth(Sensor::Thermometer, campus(), t),
            storm.base().truth(Sensor::Thermometer, campus(), t)
        );
    }
}
