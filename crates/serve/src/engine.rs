//! The serving engine: one coordinator, one clock, many connections.
//!
//! [`ServeEngine`] is the mode-independent heart of the live runtime.
//! It owns a `SenseAidServer` and a [`Clock`]; decoded requests arrive
//! tagged with a connection id, get stamped with `clock.now()` at
//! receive time, and the resulting responses / assignment pushes come
//! back as sealed frames routed to connection ids. Neither sockets nor
//! loopback queues appear here — the TCP event loops (live mode) and the
//! trace replay driver (sim mode) both feed this same type, which is the
//! structural half of the byte-identity argument.
//!
//! **The serving semantics, stated once** (the sim-side replay in
//! [`crate::trace`] mirrors these rules verbatim — change them together):
//!
//! 1. Before a request is applied, the scheduler is advanced through
//!    every due wakeup: `while next_wakeup(cursor) <= now { poll }`.
//! 2. Every device-originated request except `Hello`/`Register` first
//!    renews the device's lease via `record_device_comm` at receive time
//!    (the PR 5 "any radio contact renews" rule, driven by real receive
//!    timestamps in live mode); an unknown device renews nothing.
//! 3. The request's own mutation is applied at the same receive
//!    timestamp.
//! 4. Assignments produced by polls are pushed to the session bound to
//!    each selected device (`Hello`/`Register` bind sessions); devices
//!    without a live session miss the push — delivery is not part of the
//!    durable state, so this cannot perturb byte identity.

use std::collections::HashMap;
use std::sync::Arc;

use senseaid_cellnet::CellId;
use senseaid_core::cas::CasId;
use senseaid_core::runtime::Clock;
use senseaid_core::{Assignment, SenseAidError, SenseAidServer, TaskSpec};
use senseaid_device::{ImeiHash, SensorReading};
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_sim::{SimDuration, SimTime};

use crate::wire::{
    encode_push, encode_response, error_code, WirePush, WireReading, WireRequest, WireResponse,
    WireTaskSpec,
};

/// A connection identity, assigned by the transport layer.
pub type ConnId = u64;

/// Counters the engine keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests decoded and applied.
    pub requests: u64,
    /// Responses sent (1:1 with requests).
    pub responses: u64,
    /// Assignment pushes routed to live sessions.
    pub assignments_pushed: u64,
    /// Assignments whose device had no live session.
    pub assignments_unrouted: u64,
}

/// What the WAL flush at graceful shutdown found.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlushSummary {
    /// Whether persistence was armed at all.
    pub persistence_armed: bool,
    /// Journal records appended over the server's lifetime.
    pub journal_records: u64,
    /// Snapshots persisted (including the shutdown flush).
    pub snapshots_persisted: u64,
    /// The durable generation after the flush.
    pub generation: Option<u64>,
}

/// Frames to send, each addressed to a connection.
#[derive(Debug, Default)]
pub struct EngineOutput {
    /// Sealed frames, in send order per connection.
    pub frames: Vec<(ConnId, Vec<u8>)>,
    /// The request asked the server to shut down.
    pub shutdown: bool,
}

/// The mode-independent serving core. See the module docs for the
/// serving semantics it guarantees.
pub struct ServeEngine {
    server: SenseAidServer,
    clock: Arc<dyn Clock>,
    /// imei → the connection bound as that device's session.
    sessions: HashMap<u64, ConnId>,
    /// The last instant the scheduler was advanced to.
    cursor: SimTime,
    stats: EngineStats,
}

impl ServeEngine {
    /// Wraps a configured server and a clock.
    pub fn new(server: SenseAidServer, clock: Arc<dyn Clock>) -> Self {
        ServeEngine {
            server,
            clock,
            sessions: HashMap::new(),
            cursor: SimTime::ZERO,
            stats: EngineStats::default(),
        }
    }

    /// The wrapped server (digests, stats).
    pub fn server(&self) -> &SenseAidServer {
        &self.server
    }

    /// Mutable access (persistence arming at startup).
    pub fn server_mut(&mut self) -> &mut SenseAidServer {
        &mut self.server
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine's current notion of now.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances the scheduler through every wakeup due at or before `t`,
    /// returning assignment pushes for the sessions of selected devices.
    ///
    /// This is rule 1 of the serving semantics: polls happen at their
    /// scheduled instants in order, never early, never skipped — the same
    /// event-loop contract the sim harness runs (`WakeupDriver`).
    pub fn advance_to(&mut self, t: SimTime) -> Vec<(ConnId, Vec<u8>)> {
        let mut frames = Vec::new();
        while let Some(wakeup) = self.server.next_wakeup(self.cursor) {
            if wakeup > t {
                break;
            }
            let at = wakeup.max(self.cursor);
            let assignments = self.server.poll(at).unwrap_or_default();
            self.cursor = at;
            for assignment in assignments {
                self.route_assignment(&assignment, &mut frames);
            }
        }
        if t > self.cursor {
            self.cursor = t;
        }
        frames
    }

    fn route_assignment(&mut self, assignment: &Assignment, frames: &mut Vec<(ConnId, Vec<u8>)>) {
        let push = WirePush::Assignment {
            request: assignment.request.0,
            task: assignment.task.0,
            sensor: assignment.sensor,
            sample_at_us: assignment.sample_at.as_micros(),
            deadline_us: assignment.deadline.as_micros(),
            payload_bytes: assignment.payload_bytes,
            devices: assignment.devices.iter().map(|d| d.0).collect(),
        };
        let frame = encode_push(&push);
        for device in &assignment.devices {
            match self.sessions.get(&device.0) {
                Some(&conn) => {
                    frames.push((conn, frame.clone()));
                    self.stats.assignments_pushed += 1;
                }
                None => self.stats.assignments_unrouted += 1,
            }
        }
    }

    /// Drops the session bindings of a disconnected connection.
    pub fn on_disconnect(&mut self, conn: ConnId) {
        self.sessions.retain(|_, bound| *bound != conn);
    }

    /// Applies one decoded request from `conn` at the clock's current
    /// instant, per the serving semantics in the module docs.
    pub fn handle(&mut self, conn: ConnId, request: WireRequest) -> EngineOutput {
        let now = self.clock.now();
        let mut output = EngineOutput {
            frames: self.advance_to(now),
            shutdown: false,
        };
        self.stats.requests += 1;
        let response = self.apply(conn, &request, now, &mut output);
        output.frames.push((conn, encode_response(&response)));
        self.stats.responses += 1;
        output
    }

    /// Rule 2: any device-originated frame is radio contact; renew the
    /// lease at receive time. Unknown devices renew nothing (they are
    /// about to get their own typed error from the op itself, or they
    /// are stale traffic from a deregistered device).
    fn renew_lease(&mut self, imei: u64, now: SimTime) {
        let _ = self.server.record_device_comm(ImeiHash(imei), now);
    }

    fn apply(
        &mut self,
        conn: ConnId,
        request: &WireRequest,
        now: SimTime,
        output: &mut EngineOutput,
    ) -> WireResponse {
        match request {
            WireRequest::Hello { imei } => {
                self.sessions.insert(*imei, conn);
                WireResponse::Ok
            }
            WireRequest::Register {
                imei,
                energy_budget_j,
                critical_battery_pct,
                battery_pct,
                device_type,
                sensors,
            } => {
                let result = self.server.register_device(
                    ImeiHash(*imei),
                    *energy_budget_j,
                    *critical_battery_pct,
                    *battery_pct,
                    sensors.clone(),
                    device_type.clone(),
                    now,
                );
                if result.is_ok() {
                    self.sessions.insert(*imei, conn);
                }
                respond(result)
            }
            WireRequest::Deregister { imei } => {
                self.sessions.remove(imei);
                respond(self.server.deregister_device(ImeiHash(*imei)))
            }
            WireRequest::UpdatePreferences {
                imei,
                energy_budget_j,
                critical_battery_pct,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.update_preferences(
                    ImeiHash(*imei),
                    *energy_budget_j,
                    *critical_battery_pct,
                ))
            }
            WireRequest::StateUpdate {
                imei,
                battery_pct,
                cs_energy_j,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.update_device_state(
                    ImeiHash(*imei),
                    *battery_pct,
                    *cs_energy_j,
                    now,
                ))
            }
            WireRequest::Observe {
                imei,
                lat_deg,
                lon_deg,
                cell,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.observe_device(
                    ImeiHash(*imei),
                    GeoPoint::new(*lat_deg, *lon_deg),
                    cell.map(|c| CellId(c as usize)),
                ))
            }
            WireRequest::Comm { imei } => {
                // The renewal IS the op; no double-stamping.
                respond(self.server.record_device_comm(ImeiHash(*imei), now))
            }
            WireRequest::SubmitBatch {
                imei,
                seq,
                attempt,
                readings,
            } => {
                self.renew_lease(*imei, now);
                let decoded = decode_readings(readings);
                match self.server.submit_sensed_batch(
                    ImeiHash(*imei),
                    *seq,
                    *attempt,
                    &decoded,
                    now,
                ) {
                    Ok(receipt) => {
                        let accepted = receipt
                            .outcomes
                            .iter()
                            .filter(|o| {
                                matches!(o, senseaid_core::DeliveryOutcome::Accepted { .. })
                            })
                            .count() as u32;
                        let duplicates = receipt
                            .outcomes
                            .iter()
                            .filter(|o| matches!(o, senseaid_core::DeliveryOutcome::Duplicate))
                            .count() as u32;
                        WireResponse::BatchAck {
                            ack: receipt.ack,
                            accepted,
                            duplicates,
                        }
                    }
                    Err(e) => error_response(&e),
                }
            }
            WireRequest::SubmitTask { cas, spec } => match build_task_spec(spec) {
                Ok(built) => match self.server.submit_task_for(CasId(*cas), built, now) {
                    Ok(task) => WireResponse::TaskCreated { task: task.0 },
                    Err(e) => error_response(&e),
                },
                Err(e) => error_response(&e),
            },
            WireRequest::DrainOutbox => WireResponse::Outbox {
                delivered: self.server.drain_outbox().len() as u32,
            },
            WireRequest::Stats => {
                // ServerStats is rich; the wire carries the load-bearing gauges.
                WireResponse::Stats {
                    devices: self.server.device_count() as u64,
                    tasks: self.server.task_count() as u64,
                    run_queue: self.server.run_queue_len() as u64,
                    wait_queue: self.server.wait_queue_len() as u64,
                    unresolved: self.server.unresolved_request_count() as u64,
                }
            }
            WireRequest::Shutdown => {
                output.shutdown = true;
                WireResponse::ShuttingDown
            }
        }
    }

    /// Graceful-shutdown flush: advance the scheduler to `now`, persist
    /// a final snapshot when a WAL is armed, and report what is durable.
    pub fn shutdown_flush(&mut self) -> FlushSummary {
        let now = self.clock.now();
        let _ = self.advance_to(now);
        let armed = self.server.persist_stats().is_some();
        if armed {
            self.server.take_snapshot(now);
        }
        let stats = self.server.persist_stats();
        FlushSummary {
            persistence_armed: armed,
            journal_records: stats.as_ref().map(|s| s.journal_records).unwrap_or(0),
            snapshots_persisted: stats
                .as_ref()
                .map(|s| s.snapshots_full + s.snapshots_delta)
                .unwrap_or(0),
            generation: self.server.persist_generation(),
        }
    }
}

/// Reconstructs the server-side `TaskSpec` from its wire form through
/// the same builder a sim-mode CAS uses, so wire-submitted tasks face
/// identical validation.
pub fn build_task_spec(spec: &WireTaskSpec) -> Result<TaskSpec, SenseAidError> {
    let region = CircleRegion::new(
        GeoPoint::new(spec.centre_lat, spec.centre_lon),
        spec.radius_m,
    );
    let mut builder = TaskSpec::builder(spec.sensor)
        .region(region)
        .spatial_density(spec.spatial_density as usize);
    if spec.one_shot {
        builder = builder.one_shot();
    } else {
        builder = builder
            .sampling_period(SimDuration::from_micros(spec.period_us))
            .sampling_duration(SimDuration::from_micros(spec.duration_us));
    }
    builder.build()
}

/// Converts wire readings to the server's native tuple form.
pub fn decode_readings(readings: &[WireReading]) -> Vec<(senseaid_core::RequestId, SensorReading)> {
    readings
        .iter()
        .map(|r| {
            (
                senseaid_core::RequestId(r.request),
                SensorReading {
                    sensor: r.sensor,
                    value: r.value,
                    taken_at: SimTime::from_micros(r.taken_at_us),
                    position: GeoPoint::new(r.lat_deg, r.lon_deg),
                },
            )
        })
        .collect()
}

fn respond(result: Result<(), SenseAidError>) -> WireResponse {
    match result {
        Ok(()) => WireResponse::Ok,
        Err(e) => error_response(&e),
    }
}

fn error_response(e: &SenseAidError) -> WireResponse {
    WireResponse::Error {
        code: error_code(e),
        detail: e.to_string(),
    }
}
