//! Crowdsensing task descriptors (paper Table 1).
//!
//! A task names a sensor, a circular region, a spatial density (how many
//! devices must report), and either a sampling period + duration or an
//! explicit start/stop window. One task expands into many *requests* — one
//! per sampling instant (§3: "a task lasts for 60 minutes and requires a
//! sampling period of 10 minutes will generate 6 requests").

use std::fmt;

use serde::{Deserialize, Serialize};

use senseaid_device::Sensor;
use senseaid_geo::CircleRegion;
use senseaid_sim::{SimDuration, SimTime};

use crate::error::SenseAidError;
use crate::request::{Request, RequestId};

/// Identifier of a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// When a task runs (Table 1 allows either form).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskSchedule {
    /// Sample for this long, starting when the task is submitted.
    Duration(SimDuration),
    /// Sample inside an explicit window.
    Window {
        /// First sampling instant.
        start: SimTime,
        /// No samples at or after this instant.
        end: SimTime,
    },
    /// A single sample, taken as soon as the task is scheduled.
    OneShot,
}

/// A validated crowdsensing task specification.
///
/// Build with [`TaskSpec::builder`]; the builder enforces Table 1's
/// constraints at construction so a `TaskSpec` is always internally
/// consistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    sensor: Sensor,
    region: CircleRegion,
    spatial_density: usize,
    sampling_period: Option<SimDuration>,
    schedule: TaskSchedule,
    device_type: Option<String>,
}

impl TaskSpec {
    /// Starts building a task for `sensor`.
    pub fn builder(sensor: Sensor) -> TaskSpecBuilder {
        TaskSpecBuilder::new(sensor)
    }

    /// The sensor to sample.
    pub fn sensor(&self) -> Sensor {
        self.sensor
    }

    /// The circular area of interest.
    pub fn region(&self) -> CircleRegion {
        self.region
    }

    /// Minimum number of reporting devices per request.
    pub fn spatial_density(&self) -> usize {
        self.spatial_density
    }

    /// The sampling period, if periodic.
    pub fn sampling_period(&self) -> Option<SimDuration> {
        self.sampling_period
    }

    /// The schedule.
    pub fn schedule(&self) -> TaskSchedule {
        self.schedule
    }

    /// Optional `device_type` restriction (e.g. `"iPhone6"`).
    pub fn device_type(&self) -> Option<&str> {
        self.device_type.as_deref()
    }

    /// Reconstructs a spec from decoded wire fields, returning `None`
    /// instead of erroring or panicking when the invariants do not hold.
    ///
    /// Deliberately NOT routed through the builder: `with_updates` can
    /// legitimately produce specs the builder would refuse (e.g. a period
    /// grown past the original duration), and such specs must round-trip
    /// through the persistence codec. Only the invariants the rest of the
    /// control plane actually relies on are enforced here: density ≥ 1,
    /// periodic schedules carry a non-zero period (`expand_requests`
    /// unwraps it), windows are non-inverted and durations non-zero.
    pub(crate) fn from_decoded(
        sensor: Sensor,
        region: CircleRegion,
        spatial_density: usize,
        sampling_period: Option<SimDuration>,
        schedule: TaskSchedule,
        device_type: Option<String>,
    ) -> Option<Self> {
        if spatial_density == 0 {
            return None;
        }
        match schedule {
            TaskSchedule::Duration(d) => {
                if d.is_zero() || !matches!(sampling_period, Some(p) if !p.is_zero()) {
                    return None;
                }
            }
            TaskSchedule::Window { start, end } => {
                if end <= start || !matches!(sampling_period, Some(p) if !p.is_zero()) {
                    return None;
                }
            }
            TaskSchedule::OneShot => {}
        }
        Some(TaskSpec {
            sensor,
            region,
            spatial_density,
            sampling_period,
            schedule,
            device_type,
        })
    }

    /// Replaces mutable parameters (the `update_task_param` API): period,
    /// density and region may change mid-flight; sensor and schedule may
    /// not.
    pub fn with_updates(
        &self,
        spatial_density: Option<usize>,
        sampling_period: Option<SimDuration>,
        region: Option<CircleRegion>,
    ) -> Result<TaskSpec, SenseAidError> {
        let mut next = self.clone();
        if let Some(d) = spatial_density {
            if d == 0 {
                return Err(SenseAidError::InvalidTask(
                    "spatial density must be at least 1".into(),
                ));
            }
            next.spatial_density = d;
        }
        if let Some(p) = sampling_period {
            if p.is_zero() {
                return Err(SenseAidError::InvalidTask(
                    "sampling period must be non-zero".into(),
                ));
            }
            next.sampling_period = Some(p);
        }
        if let Some(r) = region {
            next.region = r;
        }
        Ok(next)
    }

    /// Expands the task into its requests, given the submission instant and
    /// a request-id allocator. Requests come back in sampling order.
    ///
    /// Each request's deadline is one sampling period after its sampling
    /// instant (the reading is stale once the next one is due); one-shot
    /// tasks get a five-minute grace deadline.
    pub fn expand_requests(
        &self,
        task_id: TaskId,
        submitted_at: SimTime,
        mut next_id: impl FnMut() -> RequestId,
    ) -> Vec<Request> {
        const ONE_SHOT_GRACE: SimDuration = SimDuration::from_mins(5);
        let (start, end) = match self.schedule {
            TaskSchedule::Duration(d) => (submitted_at, submitted_at + d),
            TaskSchedule::Window { start, end } => (start.max(submitted_at), end),
            TaskSchedule::OneShot => {
                return vec![Request::new(
                    next_id(),
                    task_id,
                    self.clone(),
                    submitted_at,
                    submitted_at + ONE_SHOT_GRACE,
                )];
            }
        };
        let period = self
            .sampling_period
            .expect("builder guarantees periodic tasks carry a period");
        let mut out = Vec::new();
        let mut sample_at = start;
        while sample_at < end {
            out.push(Request::new(
                next_id(),
                task_id,
                self.clone(),
                sample_at,
                sample_at + period,
            ));
            sample_at += period;
        }
        out
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ×{} in {}",
            self.sensor, self.spatial_density, self.region
        )
    }
}

/// Builder for [`TaskSpec`].
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    sensor: Sensor,
    region: Option<CircleRegion>,
    spatial_density: usize,
    sampling_period: Option<SimDuration>,
    sampling_duration: Option<SimDuration>,
    window: Option<(SimTime, SimTime)>,
    one_shot: bool,
    device_type: Option<String>,
}

impl TaskSpecBuilder {
    fn new(sensor: Sensor) -> Self {
        TaskSpecBuilder {
            sensor,
            region: None,
            spatial_density: 1,
            sampling_period: None,
            sampling_duration: None,
            window: None,
            one_shot: false,
            device_type: None,
        }
    }

    /// Sets the area of interest (required).
    pub fn region(mut self, region: CircleRegion) -> Self {
        self.region = Some(region);
        self
    }

    /// Sets the minimum number of reporting devices (default 1).
    pub fn spatial_density(mut self, n: usize) -> Self {
        self.spatial_density = n;
        self
    }

    /// Sets the sampling period.
    pub fn sampling_period(mut self, period: SimDuration) -> Self {
        self.sampling_period = Some(period);
        self
    }

    /// Runs the task for `duration` starting at submission.
    pub fn sampling_duration(mut self, duration: SimDuration) -> Self {
        self.sampling_duration = Some(duration);
        self
    }

    /// Runs the task inside an explicit window.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Makes the task a one-shot sample.
    pub fn one_shot(mut self) -> Self {
        self.one_shot = true;
        self
    }

    /// Restricts the task to one device type.
    pub fn device_type(mut self, device_type: impl Into<String>) -> Self {
        self.device_type = Some(device_type.into());
        self
    }

    /// Validates and builds the task.
    ///
    /// # Errors
    ///
    /// [`SenseAidError::InvalidTask`] if the region is missing, the density
    /// is zero, a periodic task lacks a period or schedule, the period is
    /// zero or exceeds the duration, or the window is inverted.
    pub fn build(self) -> Result<TaskSpec, SenseAidError> {
        let region = self
            .region
            .ok_or_else(|| SenseAidError::InvalidTask("a region is required".into()))?;
        if self.spatial_density == 0 {
            return Err(SenseAidError::InvalidTask(
                "spatial density must be at least 1".into(),
            ));
        }
        let schedule = if self.one_shot {
            if self.sampling_period.is_some()
                || self.sampling_duration.is_some()
                || self.window.is_some()
            {
                return Err(SenseAidError::InvalidTask(
                    "one-shot tasks take no period, duration or window".into(),
                ));
            }
            TaskSchedule::OneShot
        } else {
            let period = self.sampling_period.ok_or_else(|| {
                SenseAidError::InvalidTask("periodic tasks need a sampling period".into())
            })?;
            if period.is_zero() {
                return Err(SenseAidError::InvalidTask(
                    "sampling period must be non-zero".into(),
                ));
            }
            match (self.sampling_duration, self.window) {
                (Some(_), Some(_)) => {
                    return Err(SenseAidError::InvalidTask(
                        "specify either a duration or a window, not both".into(),
                    ))
                }
                (Some(d), None) => {
                    if d < period {
                        return Err(SenseAidError::InvalidTask(format!(
                            "duration {d} shorter than period {period}"
                        )));
                    }
                    TaskSchedule::Duration(d)
                }
                (None, Some((start, end))) => {
                    if end <= start {
                        return Err(SenseAidError::InvalidTask(
                            "window end must be after start".into(),
                        ));
                    }
                    TaskSchedule::Window { start, end }
                }
                (None, None) => {
                    return Err(SenseAidError::InvalidTask(
                        "periodic tasks need a duration or a window".into(),
                    ))
                }
            }
        };
        Ok(TaskSpec {
            sensor: self.sensor,
            region,
            spatial_density: self.spatial_density,
            sampling_period: if self.one_shot {
                None
            } else {
                self.sampling_period
            },
            schedule,
            device_type: self.device_type,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_geo::GeoPoint;

    fn region() -> CircleRegion {
        CircleRegion::new(GeoPoint::new(40.4284, -86.9138), 500.0)
    }

    fn base() -> TaskSpecBuilder {
        TaskSpec::builder(Sensor::Barometer)
            .region(region())
            .spatial_density(2)
    }

    #[test]
    fn paper_example_sixty_minutes_ten_minute_period_is_six_requests() {
        let task = base()
            .sampling_period(SimDuration::from_mins(10))
            .sampling_duration(SimDuration::from_mins(60))
            .build()
            .unwrap();
        let mut n = 0u64;
        let reqs = task.expand_requests(TaskId(1), SimTime::ZERO, || {
            n += 1;
            RequestId(n)
        });
        assert_eq!(reqs.len(), 6);
        // Sampling instants: 0, 10, 20, 30, 40, 50 minutes.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.sample_at(), SimTime::from_mins(10 * i as u64));
            assert_eq!(r.deadline(), SimTime::from_mins(10 * (i as u64 + 1)));
        }
    }

    #[test]
    fn window_schedule_clamps_to_submission() {
        let task = base()
            .sampling_period(SimDuration::from_mins(5))
            .window(SimTime::from_mins(10), SimTime::from_mins(30))
            .build()
            .unwrap();
        // Submitted late: sampling starts at submission, not window start.
        let mut n = 0u64;
        let reqs = task.expand_requests(TaskId(1), SimTime::from_mins(20), || {
            n += 1;
            RequestId(n)
        });
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].sample_at(), SimTime::from_mins(20));
    }

    #[test]
    fn one_shot_generates_single_request() {
        let task = base().one_shot().build().unwrap();
        let mut n = 0u64;
        let reqs = task.expand_requests(TaskId(2), SimTime::from_mins(3), || {
            n += 1;
            RequestId(n)
        });
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].sample_at(), SimTime::from_mins(3));
        assert_eq!(reqs[0].deadline(), SimTime::from_mins(8));
    }

    #[test]
    fn builder_rejects_missing_region() {
        let err = TaskSpec::builder(Sensor::Barometer)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(60))
            .build()
            .unwrap_err();
        assert!(matches!(err, SenseAidError::InvalidTask(_)));
    }

    #[test]
    fn builder_rejects_zero_density() {
        let err = base()
            .spatial_density(0)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(60))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("density"));
    }

    #[test]
    fn builder_rejects_period_longer_than_duration() {
        let err = base()
            .sampling_period(SimDuration::from_mins(60))
            .sampling_duration(SimDuration::from_mins(10))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("shorter than period"));
    }

    #[test]
    fn builder_rejects_both_duration_and_window() {
        let err = base()
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(60))
            .window(SimTime::ZERO, SimTime::from_mins(60))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("not both"));
    }

    #[test]
    fn builder_rejects_inverted_window() {
        let err = base()
            .sampling_period(SimDuration::from_mins(5))
            .window(SimTime::from_mins(60), SimTime::from_mins(10))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("after start"));
    }

    #[test]
    fn builder_rejects_one_shot_with_period() {
        let err = base()
            .one_shot()
            .sampling_period(SimDuration::from_mins(5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("one-shot"));
    }

    #[test]
    fn update_params_mid_flight() {
        let task = base()
            .sampling_period(SimDuration::from_mins(10))
            .sampling_duration(SimDuration::from_mins(60))
            .build()
            .unwrap();
        let updated = task
            .with_updates(Some(5), Some(SimDuration::from_mins(2)), None)
            .unwrap();
        assert_eq!(updated.spatial_density(), 5);
        assert_eq!(updated.sampling_period(), Some(SimDuration::from_mins(2)));
        assert_eq!(updated.region(), task.region());
        assert!(task.with_updates(Some(0), None, None).is_err());
        assert!(task
            .with_updates(None, Some(SimDuration::ZERO), None)
            .is_err());
    }

    #[test]
    fn device_type_restriction_carries() {
        let task = base()
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(10))
            .device_type("iPhone6")
            .build()
            .unwrap();
        assert_eq!(task.device_type(), Some("iPhone6"));
    }

    #[test]
    fn display_mentions_sensor_and_density() {
        let task = base()
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(10))
            .build()
            .unwrap();
        let s = task.to_string();
        assert!(s.contains("barometer") && s.contains("×2"), "{s}");
    }
}
