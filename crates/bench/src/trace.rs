//! The `senseaid trace` engine: re-run an experiment with full telemetry
//! recording and export the span stream.
//!
//! A trace run is an ordinary [`run_scenario_with`] call whose
//! [`HarnessOptions::telemetry`] is a recording handle, so the scenario's
//! result is byte-identical to the untraced run — the span stream is a
//! side channel, not a different code path. The stream is exported twice:
//!
//! * **JSONL** — one event per line, byte-deterministic for a fixed seed
//!   at any `SENSEAID_WORKERS`; the determinism tests diff this form.
//! * **Chrome Trace Event JSON** — loads directly in Perfetto or
//!   `chrome://tracing`; shards appear as processes, devices as threads.

use std::collections::BTreeMap;

use senseaid_cellnet::FaultPlan;
use senseaid_geo::NamedLocation;
use senseaid_sim::SimDuration;
use senseaid_telemetry::{check_balanced, to_chrome_trace, to_jsonl, Event, Telemetry};
use senseaid_workload::ScenarioConfig;

use crate::experiments::fig09;
use crate::framework::FrameworkKind;
use crate::runner::{run_scenario_with, HarnessOptions};

/// The exported artefacts of one traced experiment run.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Chrome Trace Event JSON (open in Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// One event per line; the byte-deterministic form.
    pub jsonl: String,
    /// Human-readable run summary for the terminal.
    pub summary: String,
}

/// The experiments `senseaid trace` knows how to run, with the spelling
/// the CLI accepts for each.
pub const TRACEABLE: &[(&str, &str)] = &[
    (
        "fig06",
        "tail-time uploads under a lossy network (envelope sends, retries, acks, RRC phases)",
    ),
    (
        "fig09",
        "selection fairness, fault-free (selection rounds, taskings, direct uploads)",
    ),
];

/// The Fig 6 trace scenario: small and short so the trace stays readable,
/// with enough sampling rounds that retransmission and tail-riding both
/// appear.
fn fig06_trace_scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(30),
        sampling_period: SimDuration::from_mins(10),
        spatial_density: 2,
        area_radius_m: 800.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 10,
    }
}

/// Runs `experiment` with telemetry recording and exports the stream.
/// Returns `None` for an experiment that has no trace configuration; see
/// [`TRACEABLE`] for the known names (`fig6`/`fig06` spellings both work).
pub fn run_trace(experiment: &str, seed: u64) -> Option<TraceRun> {
    let (canonical, scenario, plan) = match experiment {
        "fig06" | "fig6" => (
            "fig06",
            fig06_trace_scenario(),
            // A mildly lossy network so the delivery envelope engages:
            // the trace then shows sends, retries, and acks, not just the
            // happy path.
            Some(FaultPlan::lossy(7, 0.25)),
        ),
        "fig09" | "fig9" => ("fig09", fig09::scenario(), None),
        _ => return None,
    };
    let tel = Telemetry::recording();
    let report = run_scenario_with(
        FrameworkKind::SenseAidComplete,
        scenario,
        seed,
        HarnessOptions {
            fault_plan: plan,
            telemetry: tel.clone(),
            ..HarnessOptions::default()
        },
    );
    let events = tel.events();
    check_balanced(&events).expect("recorded span stream is balanced");

    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    for ev in &events {
        match ev {
            Event::Enter { name, .. } => {
                spans += 1;
                *by_name.entry(name.clone()).or_insert(0) += 1;
            }
            Event::Instant { name, .. } => {
                instants += 1;
                *by_name.entry(name.clone()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut summary = format!(
        "trace {canonical} seed {seed}: {} events ({spans} spans, {instants} instants), \
         {} selection rounds, {} uploads, {} readings delivered\n",
        events.len(),
        report.rounds.len(),
        report.uploads,
        report.readings_delivered,
    );
    summary.push_str("events by name:\n");
    for (name, n) in &by_name {
        summary.push_str(&format!("  {name:<24} {n}\n"));
    }

    Some(TraceRun {
        chrome_json: to_chrome_trace(&events),
        jsonl: to_jsonl(&events),
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_trace("fig99", 1).is_none());
        assert!(run_trace("", 1).is_none());
    }

    #[test]
    fn both_spellings_trace_identically() {
        let a = run_trace("fig6", 3).unwrap();
        let b = run_trace("fig06", 3).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.chrome_json, b.chrome_json);
    }

    #[test]
    fn fig06_trace_contains_the_advertised_span_families() {
        let run = run_trace("fig06", 42).unwrap();
        for needle in [
            "\"request\"",
            "\"selection\"",
            "\"tasking\"",
            "\"envelope\"",
            "\"envelope.retry\"",
            "IDLE",
            "SHORT_DRX",
        ] {
            assert!(
                run.jsonl.contains(needle),
                "missing {needle} in fig06 trace"
            );
        }
        assert!(run.chrome_json.starts_with('{'));
        assert!(run.chrome_json.contains("\"traceEvents\""));
        assert!(run.chrome_json.contains("\"displayTimeUnit\""));
    }

    #[test]
    fn fig09_trace_has_selection_rounds_and_no_envelopes() {
        let run = run_trace("fig09", 11).unwrap();
        assert!(run.jsonl.contains("\"selection\""));
        assert!(run.jsonl.contains("\"upload.direct\""));
        assert!(!run.jsonl.contains("\"envelope\""));
    }
}
