//! Compatibility bridge from legacy `simcore::trace::TraceLog` streams.
//!
//! Several components predate this crate and still accumulate
//! `(SimTime, item)` trace entries (`SelectionEvent`, `RadioPhase`,
//! `FaultEvent`). [`bridge_entries`] replays such a stream into a
//! [`Telemetry`] recording as instants, so renderers that used to walk the
//! raw log can read the unified span stream instead — the migration path
//! for deprecating direct `TraceLog` consumption.

use senseaid_sim::SimTime;

use crate::span::{Attr, Lane, SpanId};
use crate::Telemetry;

/// Replays timestamped entries into `tel` as instants on `lane`, one per
/// entry in order, named and attributed by `describe`. Returns the
/// recorded ids (all [`SpanId::NONE`] when `tel` is inactive).
///
/// # Example
///
/// ```
/// use senseaid_sim::SimTime;
/// use senseaid_telemetry::{compat, Attr, Lane, Telemetry};
///
/// let tel = Telemetry::recording();
/// let log = [(SimTime::from_secs(1), "lost"), (SimTime::from_secs(2), "dup")];
/// compat::bridge_entries(&tel, Lane::control(0), log, |kind| {
///     (format!("fault.{kind}"), vec![Attr::str("kind", *kind)])
/// });
/// assert_eq!(tel.events().len(), 2);
/// ```
pub fn bridge_entries<T>(
    tel: &Telemetry,
    lane: Lane,
    entries: impl IntoIterator<Item = (SimTime, T)>,
    mut describe: impl FnMut(&T) -> (String, Vec<Attr>),
) -> Vec<SpanId> {
    entries
        .into_iter()
        .map(|(at, item)| {
            let (name, attrs) = describe(&item);
            tel.instant(&name, at, lane, SpanId::NONE, attrs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;

    #[test]
    fn bridges_in_order_with_names_and_attrs() {
        let tel = Telemetry::recording();
        let log = [
            (SimTime::from_secs(1), 10u64),
            (SimTime::from_secs(5), 20u64),
        ];
        let ids = bridge_entries(&tel, Lane::control(3), log, |v| {
            ("legacy".to_owned(), vec![Attr::u64("v", *v)])
        });
        assert_eq!(ids.len(), 2);
        let events = tel.events();
        match &events[1] {
            Event::Instant { at, name, lane, .. } => {
                assert_eq!(*at, SimTime::from_secs(5));
                assert_eq!(name, "legacy");
                assert_eq!(*lane, Lane::control(3));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(events[1].attr_u64("v"), Some(20));
    }

    #[test]
    fn inactive_handle_bridges_to_none() {
        let tel = Telemetry::off();
        let ids = bridge_entries(
            &tel,
            Lane::control(0),
            [(SimTime::from_secs(0), ())],
            |_| ("x".to_owned(), vec![]),
        );
        assert_eq!(ids, vec![SpanId::NONE]);
    }
}
