//! The live-chaos keystone: under every transport fault preset, the live
//! path driven to acknowledgement produces a `durable_digest`
//! byte-identical to the sim twin, with exactly-once assignment pushes
//! across every reconnect.

use senseaid_core::runtime::TransportFaultPlan;
use senseaid_serve::trace::{record_sample_trace, run_live, run_live_chaos, run_sim};

const TRACE_SEED: u64 = 2017;
const DEVICES: usize = 7;
const ROUNDS: usize = 5;

#[test]
fn every_fault_preset_preserves_sim_identity_across_shard_counts() {
    let trace = record_sample_trace(TRACE_SEED, DEVICES, ROUNDS);
    for shards in [1usize, 2, 8] {
        let expected = run_sim(&trace, shards);
        for &preset in TransportFaultPlan::preset_names() {
            for fault_seed in [11u64, 12, 13] {
                let plan = TransportFaultPlan::preset(preset, fault_seed)
                    .expect("every advertised preset parses");
                let report = run_live_chaos(&trace, shards, &plan);
                let ctx = format!("preset={preset} seed={fault_seed} shards={shards}");
                assert_eq!(
                    report.digest, expected,
                    "{ctx}: surviving-prefix digest diverged from the sim"
                );
                assert_eq!(report.ops, trace.events.len() as u64, "{ctx}");
                assert_eq!(
                    report.push_gaps, 0,
                    "{ctx}: a session observed a dropped assignment push"
                );
                assert_eq!(
                    report.unacked_pushes, 0,
                    "{ctx}: pushes left undelivered in the ledger"
                );
            }
        }
    }
}

#[test]
fn zero_fault_plan_matches_the_unwrapped_transport_byte_for_byte() {
    let trace = record_sample_trace(TRACE_SEED, DEVICES, ROUNDS);
    for shards in [1usize, 2, 8] {
        let clean = run_live(&trace, shards);
        let report = run_live_chaos(&trace, shards, &TransportFaultPlan::none(99));
        assert_eq!(report.digest, clean, "shards={shards}");
        assert_eq!(report.reconnects, 0, "shards={shards}");
        assert_eq!(report.faults.total(), 0, "shards={shards}");
        assert_eq!(report.push_duplicates, 0, "shards={shards}");
    }
}

#[test]
fn chaos_runs_replay_deterministically_from_the_plan_seed() {
    let trace = record_sample_trace(TRACE_SEED, DEVICES, ROUNDS);
    let plan = TransportFaultPlan::preset("mixed", 42).unwrap();
    let a = run_live_chaos(&trace, 2, &plan);
    let b = run_live_chaos(&trace, 2, &plan);
    assert_eq!(a, b, "same plan, same trace, different run");
}

#[test]
fn disconnect_presets_actually_exercise_resume_and_dedup() {
    let trace = record_sample_trace(TRACE_SEED, DEVICES, ROUNDS);
    let plan = TransportFaultPlan::preset("reconnect-storm", 7).unwrap();
    let report = run_live_chaos(&trace, 2, &plan);
    assert!(
        report.reconnects > 0,
        "a reconnect storm that never reconnects proves nothing"
    );
    assert!(report.faults.disconnects > 0);
    // Different fault seeds produce different fault timelines.
    let other = run_live_chaos(
        &trace,
        2,
        &TransportFaultPlan::preset("reconnect-storm", 8).unwrap(),
    );
    assert_eq!(
        other.digest, report.digest,
        "digests agree regardless of faults"
    );
    assert_ne!(
        (report.reconnects, report.faults.clone()),
        (other.reconnects, other.faults.clone()),
        "fault seeds 7 and 8 injected identical timelines — suspicious"
    );
}
