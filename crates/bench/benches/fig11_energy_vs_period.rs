//! Regenerates the paper's Figure 11 output. Run with
//! `cargo bench -p senseaid-bench --bench fig11_energy_vs_period`.

use senseaid_bench::experiments::{fig11, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", fig11::run(seed));
}
