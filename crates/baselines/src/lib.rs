//! The comparison frameworks the paper evaluates Sense-Aid against (§5.1).
//!
//! * **Periodic** — the state of practice: every participating device
//!   samples on the task's period and uploads immediately, paying an
//!   IDLE→CONNECTED promotion plus a full radio tail on almost every
//!   upload.
//! * **PCS** (Piggyback CrowdSensing, Lane et al., SenSys '13) — the prior
//!   state of the art: devices predict their own app usage and piggyback
//!   sensor uploads onto predicted app sessions; on a wrong prediction the
//!   upload happens cold at the deadline. The paper models PCS through its
//!   prediction accuracy (saturating at ~40 % for top-1 app prediction —
//!   Fig 14 sweeps it from 0 to 100 %).
//!
//! Neither framework orchestrates across devices: *all* qualified devices
//! in the task region sense and upload, which is the second half of
//! Sense-Aid's advantage (Figs 10/12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pcs;
pub mod periodic;
pub mod predictor;
pub mod selection;

pub use pcs::{PcsClient, PcsConfig, PcsUploadPlan};
pub use periodic::{PeriodicClient, PeriodicDuty};
pub use predictor::{AppUsagePredictor, PredictorReport};
pub use selection::SelectAllPolicy;
