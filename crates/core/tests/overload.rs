//! Behavioural tests for the overload-resilience layer: device leases,
//! admission control, load shedding, and degraded-mode scheduling —
//! exercised through the public `SenseAidServer` API only, so they hold
//! for any control-plane layout.

use senseaid_core::{
    DegradedConfig, RejectReason, RequestId, RequestStatus, SenseAidConfig, SenseAidServer,
    ShedPolicyKind, ShedReason, TaskSpec,
};
use senseaid_device::{ImeiHash, Sensor, SensorReading};
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_sim::{SimDuration, SimTime};

fn centre() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

fn spec(radius: f64, density: usize, period_min: u64, duration_min: u64) -> TaskSpec {
    TaskSpec::builder(Sensor::Barometer)
        .region(CircleRegion::new(centre(), radius))
        .spatial_density(density)
        .sampling_period(SimDuration::from_mins(period_min))
        .sampling_duration(SimDuration::from_mins(duration_min))
        .build()
        .unwrap()
}

fn server_with_devices_cfg(n: u64, config: SenseAidConfig) -> SenseAidServer {
    let mut server = SenseAidServer::new(config);
    for i in 1..=n {
        server
            .register_device(
                ImeiHash(i),
                495.0,
                15.0,
                100.0,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                SimTime::ZERO,
            )
            .unwrap();
        server
            .observe_device(ImeiHash(i), centre().offset_by_meters(i as f64, 0.0), None)
            .unwrap();
    }
    server
}

/// A config with leases on and a grace long enough that assigned devices
/// are never marked unresponsive mid-test.
fn lease_cfg(lease_min: u64) -> SenseAidConfig {
    SenseAidConfig {
        device_lease: Some(SimDuration::from_mins(lease_min)),
        unresponsive_grace: SimDuration::from_hours(10),
        ..SenseAidConfig::default()
    }
}

fn reading(at: SimTime) -> SensorReading {
    SensorReading {
        sensor: Sensor::Barometer,
        value: 1010.0,
        taken_at: at,
        position: centre(),
    }
}

fn statuses_with(server: &SenseAidServer, pred: impl Fn(&RequestStatus) -> bool) -> Vec<RequestId> {
    server
        .request_statuses()
        .filter(|(_, s)| pred(s))
        .map(|(id, _)| id)
        .collect()
}

// ---------------------------------------------------------------------
// Device leases
// ---------------------------------------------------------------------

#[test]
fn silent_devices_are_evicted_at_lease_expiry() {
    let mut server = server_with_devices_cfg(3, lease_cfg(10));
    assert_eq!(server.device_count(), 3);
    // One second shy of the lease: everyone still holds a record.
    server
        .poll(SimTime::from_mins(10) - SimDuration::from_secs(1))
        .unwrap();
    assert_eq!(server.device_count(), 3);
    assert_eq!(server.stats().leases_expired, 0);
    // The lease lapses: the sweep evicts all three.
    server.poll(SimTime::from_mins(10)).unwrap();
    assert_eq!(server.device_count(), 0);
    assert_eq!(server.stats().leases_expired, 3);
}

#[test]
fn radio_contact_renews_the_lease() {
    let mut server = server_with_devices_cfg(2, lease_cfg(10));
    // Device 1 speaks at t=8 (eNodeB-observed traffic); device 2 reports
    // state at t=9. Both renewal paths must push the expiry out.
    server
        .record_device_comm(ImeiHash(1), SimTime::from_mins(8))
        .unwrap();
    server
        .update_device_state(ImeiHash(2), 90.0, 1.0, SimTime::from_mins(9))
        .unwrap();
    server.poll(SimTime::from_mins(15)).unwrap();
    assert_eq!(server.device_count(), 2, "renewed leases outlive t=10");
    // Device 1's renewed lease (8+10) lapses first, device 2's at 19.
    server.poll(SimTime::from_mins(18)).unwrap();
    assert_eq!(server.device_count(), 1);
    server.poll(SimTime::from_mins(19)).unwrap();
    assert_eq!(server.device_count(), 0);
    assert_eq!(server.stats().leases_expired, 2);
}

#[test]
fn next_wakeup_arms_at_the_earliest_lease_expiry() {
    let mut server = server_with_devices_cfg(1, lease_cfg(10));
    // No tasks: the only reason to wake is the lease sweep.
    assert_eq!(
        server.next_wakeup(SimTime::ZERO),
        Some(SimTime::from_mins(10))
    );
    // Renewal re-arms the term.
    server
        .record_device_comm(ImeiHash(1), SimTime::from_mins(4))
        .unwrap();
    assert_eq!(
        server.next_wakeup(SimTime::from_mins(4)),
        Some(SimTime::from_mins(14))
    );
}

#[test]
fn lease_eviction_releases_in_flight_tasking() {
    let mut server = server_with_devices_cfg(3, lease_cfg(10));
    server
        .submit_task(spec(500.0, 3, 30, 30), SimTime::ZERO)
        .unwrap();
    let assignments = server.poll(SimTime::ZERO).unwrap();
    assert_eq!(assignments.len(), 1);
    assert_eq!(assignments[0].devices.len(), 3);
    let id = assignments[0].request;
    assert_eq!(server.request_status(id), Some(RequestStatus::Assigned));

    // All three assignees fall silent past the lease: the sweep evicts
    // them, the assignment can no longer reach density, and the request
    // is released — it re-parks because nobody is left to serve it.
    server.poll(SimTime::from_mins(10)).unwrap();
    assert_eq!(server.device_count(), 0);
    assert_eq!(server.stats().leases_expired, 3);
    assert_eq!(server.request_status(id), Some(RequestStatus::Waiting));

    // Past the deadline the released request expires truthfully instead
    // of parking forever.
    server.poll(SimTime::from_mins(31)).unwrap();
    assert_eq!(server.request_status(id), Some(RequestStatus::Expired));
    assert_eq!(server.unresolved_request_count(), 0);
}

#[test]
fn delivering_data_renews_the_assignees_lease() {
    let mut server = server_with_devices_cfg(1, lease_cfg(10));
    server
        .submit_task(spec(500.0, 1, 30, 30), SimTime::ZERO)
        .unwrap();
    let a = &server.poll(SimTime::ZERO).unwrap()[0];
    let (device, request) = (a.devices[0], a.request);
    // The upload at t=9 is radio contact: the lease slides to 19.
    let t = SimTime::from_mins(9);
    assert!(server
        .submit_sensed_data(device, request, &reading(t), t)
        .unwrap());
    server.poll(SimTime::from_mins(15)).unwrap();
    assert_eq!(server.device_count(), 1);
    server.poll(SimTime::from_mins(19)).unwrap();
    assert_eq!(server.device_count(), 0);
}

// ---------------------------------------------------------------------
// Admission control & load shedding
// ---------------------------------------------------------------------

#[test]
fn submissions_past_the_run_queue_bound_are_rejected() {
    let mut server = server_with_devices_cfg(
        3,
        SenseAidConfig {
            run_queue_bound: Some(2),
            ..SenseAidConfig::default()
        },
    );
    // Period 10 over 40 minutes expands to four requests; the bound
    // admits two and turns the rest away at submission time.
    server
        .submit_task(spec(500.0, 1, 10, 40), SimTime::ZERO)
        .unwrap();
    assert_eq!(server.run_queue_len(), 2);
    assert_eq!(server.stats().requests_rejected, 2);
    let rejected = statuses_with(&server, |s| {
        matches!(
            s,
            RequestStatus::Rejected {
                reason: RejectReason::QueueFull
            }
        )
    });
    assert_eq!(rejected.len(), 2);
    // Rejected is terminal: nothing left dangling once the admitted
    // requests run their course.
    for id in rejected {
        assert!(server.request_status(id).unwrap().is_terminal());
    }
}

/// Parks two one-request tasks against a wait queue bounded at 1 and
/// returns `(first_parked, second_incoming, server)` after the overflow.
/// `second_deadline_min` controls the incoming request's slack.
fn overflow_wait_queue(
    policy: ShedPolicyKind,
    densities: (usize, usize),
    second_deadline_min: u64,
) -> (RequestId, RequestId, SenseAidServer) {
    let mut server = server_with_devices_cfg(
        1,
        SenseAidConfig {
            wait_queue_bound: Some(1),
            unresponsive_grace: SimDuration::from_hours(10),
            ..SenseAidConfig::default()
        },
    );
    server.set_shed_policy(policy.boxed());
    // Both tasks expand to a single request due at t=0; with one device
    // against density > 1 neither can be served, so both try to park.
    let a = server
        .submit_task(spec(500.0, densities.0, 30, 30), SimTime::ZERO)
        .unwrap();
    let b = server
        .submit_task(
            spec(500.0, densities.1, second_deadline_min, second_deadline_min), // deadline = period
            SimTime::ZERO,
        )
        .unwrap();
    assert_ne!(a, b);
    let ids: Vec<RequestId> = server.request_statuses().map(|(id, _)| id).collect();
    assert_eq!(ids.len(), 2);
    let (first, second) = (*ids.iter().min().unwrap(), *ids.iter().max().unwrap());
    server.poll(SimTime::ZERO).unwrap();
    (first, second, server)
}

#[test]
fn drop_newest_sheds_the_incoming_request() {
    // Task A (deadline 30) pops first and parks; task B (deadline 35)
    // arrives at the full queue and, under tail-drop, is the victim.
    let (first, second, server) = overflow_wait_queue(ShedPolicyKind::DropNewest, (3, 3), 35);
    assert_eq!(server.request_status(first), Some(RequestStatus::Waiting));
    assert_eq!(
        server.request_status(second),
        Some(RequestStatus::Shed {
            reason: ShedReason::WaitQueueFull
        })
    );
    assert_eq!(server.stats().requests_shed, 1);
}

#[test]
fn deadline_aware_sheds_the_least_slack_request() {
    // The parked request (deadline 30) has less slack than the incoming
    // one (deadline 35): deadline-aware shedding evicts the parked one
    // and parks the newcomer in its place.
    let (first, second, server) = overflow_wait_queue(ShedPolicyKind::DeadlineAware, (3, 3), 35);
    assert_eq!(
        server.request_status(first),
        Some(RequestStatus::Shed {
            reason: ShedReason::WaitQueueFull
        })
    );
    assert_eq!(server.request_status(second), Some(RequestStatus::Waiting));
}

#[test]
fn drop_lowest_deficit_sheds_the_most_satisfiable_request() {
    // One device qualifies for both: the parked density-3 request is two
    // short, the incoming density-5 request four short. The low-deficit
    // policy keeps the under-covered request waiting and sheds the one
    // closest to being servable.
    let (first, second, server) =
        overflow_wait_queue(ShedPolicyKind::DropLowestDeficit, (3, 5), 35);
    assert_eq!(
        server.request_status(first),
        Some(RequestStatus::Shed {
            reason: ShedReason::WaitQueueFull
        })
    );
    assert_eq!(server.request_status(second), Some(RequestStatus::Waiting));
}

// ---------------------------------------------------------------------
// Degraded-mode scheduling
// ---------------------------------------------------------------------

#[test]
fn sustained_selection_stress_enters_degraded_mode_and_serves_partially() {
    // One device against density 3: full selection can never succeed.
    // After `enter_after` (2 min) of continuous stress the task flips to
    // degraded mode and the request is served best-effort by the one
    // device that exists.
    let mut server = server_with_devices_cfg(
        1,
        SenseAidConfig {
            degraded: Some(DegradedConfig::default()),
            ..SenseAidConfig::default()
        },
    );
    server
        .submit_task(spec(500.0, 3, 30, 30), SimTime::ZERO)
        .unwrap();
    let mut assignment = None;
    let mut t = SimTime::ZERO;
    while t < SimTime::from_mins(5) {
        let mut out = server.poll(t).unwrap();
        if let Some(a) = out.pop() {
            assignment = Some((a, t));
            break;
        }
        t += SimDuration::from_secs(30);
    }
    let (a, assigned_at) = assignment.expect("degraded mode must eventually field the request");
    assert!(
        assigned_at >= SimTime::from_mins(2),
        "partial service before the hysteresis window ({assigned_at}) would flap"
    );
    assert_eq!(a.devices.len(), 1, "best-effort below density");

    // The device delivers; density 3 is never met, so fulfilment does not
    // fire — but the deadline sweep finalises the truthful outcome.
    let t = assigned_at + SimDuration::from_secs(30);
    assert!(!server
        .submit_sensed_data(a.devices[0], a.request, &reading(t), t)
        .unwrap());
    server.poll(SimTime::from_mins(33)).unwrap();
    assert_eq!(
        server.request_status(a.request),
        Some(RequestStatus::Degraded {
            achieved_density: 1
        })
    );
    assert_eq!(server.stats().requests_degraded, 1);
    assert_eq!(server.unresolved_request_count(), 0);
    // The partial delivery really reached the CAS.
    assert_eq!(server.drain_outbox().len(), 1);
}

#[test]
fn degraded_requests_with_no_data_expire_not_degrade() {
    // Degraded mode with a device that never uploads: `Degraded` claims
    // the CAS got something, so a dataless assignment must expire.
    let mut server = server_with_devices_cfg(
        1,
        SenseAidConfig {
            degraded: Some(DegradedConfig::default()),
            ..SenseAidConfig::default()
        },
    );
    server
        .submit_task(spec(500.0, 3, 30, 30), SimTime::ZERO)
        .unwrap();
    let mut t = SimTime::ZERO;
    let mut request = None;
    while t < SimTime::from_mins(5) {
        if let Some(a) = server.poll(t).unwrap().pop() {
            request = Some(a.request);
            break;
        }
        t += SimDuration::from_secs(30);
    }
    let request = request.expect("degraded mode fields the request");
    server.poll(SimTime::from_mins(33)).unwrap();
    assert_eq!(server.request_status(request), Some(RequestStatus::Expired));
    assert_eq!(server.stats().requests_degraded, 0);
}

// ---------------------------------------------------------------------
// Satellite regressions
// ---------------------------------------------------------------------

/// Restore must re-arm leases from each record's last contact: a device
/// that went silent across a crash still expires on schedule instead of
/// becoming immortal.
#[test]
fn recovery_from_snapshot_rearms_lease_expiry() {
    let mut server = server_with_devices_cfg(1, lease_cfg(10));
    server.take_snapshot(SimTime::from_mins(1));
    server.crash();
    server.recover_at(SimTime::from_mins(3));
    // The restored record's last contact is t=0 (registration), so the
    // lease still runs out at t=10 — not 10 minutes after recovery.
    server.poll(SimTime::from_mins(9)).unwrap();
    assert_eq!(
        server.device_count(),
        1,
        "restore must not drop the lease early"
    );
    server.poll(SimTime::from_mins(10)).unwrap();
    assert_eq!(server.device_count(), 0);
    assert_eq!(server.stats().leases_expired, 1);
}

/// The no-snapshot recovery path keeps the in-memory lease book.
#[test]
fn recovery_without_snapshot_keeps_lease_expiry() {
    let mut server = server_with_devices_cfg(1, lease_cfg(10));
    server.crash();
    server.recover_at(SimTime::from_mins(3));
    server.poll(SimTime::from_mins(10)).unwrap();
    assert_eq!(server.device_count(), 0);
    assert_eq!(server.stats().leases_expired, 1);
}

/// `update_task_param` supersedes *queued* requests, but a request the
/// shed policy dropped (or admission rejected) is terminal and must not
/// be flipped to `Cancelled` — let alone resurrected.
#[test]
fn update_task_param_does_not_resurrect_shed_requests() {
    let mut server = server_with_devices_cfg(
        1,
        SenseAidConfig {
            wait_queue_bound: Some(1),
            unresponsive_grace: SimDuration::from_hours(10),
            ..SenseAidConfig::default()
        },
    );
    let _a = server
        .submit_task(spec(500.0, 3, 30, 30), SimTime::ZERO)
        .unwrap();
    let b = server
        .submit_task(spec(500.0, 3, 35, 35), SimTime::ZERO)
        .unwrap();
    server.poll(SimTime::ZERO).unwrap();
    let shed = statuses_with(&server, |s| matches!(s, RequestStatus::Shed { .. }));
    assert_eq!(shed.len(), 1, "tail-drop sheds task B's request");
    let shed = shed[0];

    // Re-planning the shed request's task must leave its status alone.
    server
        .update_task_param(b, Some(1), None, None, SimTime::from_mins(1))
        .unwrap();
    assert_eq!(
        server.request_status(shed),
        Some(RequestStatus::Shed {
            reason: ShedReason::WaitQueueFull
        })
    );
}

#[test]
fn update_task_param_does_not_resurrect_rejected_requests() {
    let mut server = server_with_devices_cfg(
        1,
        SenseAidConfig {
            run_queue_bound: Some(1),
            unresponsive_grace: SimDuration::from_hours(10),
            ..SenseAidConfig::default()
        },
    );
    let task = server
        .submit_task(spec(500.0, 1, 10, 20), SimTime::ZERO)
        .unwrap();
    let rejected = statuses_with(&server, |s| matches!(s, RequestStatus::Rejected { .. }));
    assert_eq!(rejected.len(), 1);
    let rejected = rejected[0];

    server
        .update_task_param(
            task,
            Some(1),
            Some(SimDuration::from_mins(5)),
            None,
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(
        server.request_status(rejected),
        Some(RequestStatus::Rejected {
            reason: RejectReason::QueueFull
        })
    );
}

// ---------------------------------------------------------------------
// Truthful termination under the full overload mix
// ---------------------------------------------------------------------

/// The acceptance invariant at the server level: with leases, bounded
/// queues, shedding, and degraded mode all engaged, half the population
/// going silent mid-run, and demand well past supply, every generated
/// request still reaches a terminal status — nothing parks forever.
#[test]
fn overload_mix_terminates_every_request() {
    let mut server = server_with_devices_cfg(
        4,
        SenseAidConfig {
            device_lease: Some(SimDuration::from_mins(10)),
            run_queue_bound: Some(12),
            wait_queue_bound: Some(2),
            degraded: Some(DegradedConfig::default()),
            ..SenseAidConfig::default()
        },
    );
    server.set_shed_policy(ShedPolicyKind::DeadlineAware.boxed());
    // 4 tasks of density 3 over 4 devices: heavy oversubscription, and
    // the 12-slot run queue truncates the joint schedule at admission.
    for _ in 0..4 {
        server
            .submit_task(spec(500.0, 3, 10, 40), SimTime::ZERO)
            .unwrap();
    }
    let total: usize = server.request_statuses().count();
    assert!(total > 12, "the sweep must actually overflow admission");

    // Devices 1 and 2 stay live (they renew by delivering); 3 and 4 go
    // silent at t=0 and are reclaimed by the lease sweep.
    let live = [ImeiHash(1), ImeiHash(2)];
    let mut t = SimTime::ZERO;
    let horizon = SimTime::from_mins(45);
    while t <= horizon {
        let assignments = server.poll(t).unwrap();
        for a in assignments {
            for d in a.devices {
                if live.contains(&d) {
                    let _ = server.submit_sensed_data(d, a.request, &reading(t), t);
                }
            }
        }
        for d in live {
            let _ = server.record_device_comm(d, t);
        }
        t += SimDuration::from_secs(30);
    }

    assert_eq!(
        server.stats().leases_expired,
        2,
        "the silent pair is reclaimed"
    );
    assert!(server.stats().requests_rejected > 0);
    assert_eq!(
        server.unresolved_request_count(),
        0,
        "every request must terminate truthfully under overload"
    );
    for (id, status) in server.request_statuses() {
        assert!(
            status.is_terminal(),
            "request {id:?} left non-terminal: {status:?}"
        );
    }
    // The books balance: every expansion landed in exactly one bucket.
    assert_eq!(server.request_statuses().count(), total);
}

/// The overload decisions are shard-layout invariant: the same stressed
/// run over 1 and 4 shards produces identical statuses and stats, because
/// the queue bounds are global and shedding uses the global key order.
#[test]
fn overload_decisions_are_shard_invariant() {
    let run = |shards: usize| {
        let mut server = server_with_devices_cfg(
            3,
            SenseAidConfig {
                shard_count: shards,
                device_lease: Some(SimDuration::from_mins(10)),
                run_queue_bound: Some(8),
                wait_queue_bound: Some(1),
                degraded: Some(DegradedConfig::default()),
                ..SenseAidConfig::default()
            },
        );
        server.set_shed_policy(ShedPolicyKind::DeadlineAware.boxed());
        for _ in 0..3 {
            server
                .submit_task(spec(500.0, 3, 10, 30), SimTime::ZERO)
                .unwrap();
        }
        let mut t = SimTime::ZERO;
        let mut log = Vec::new();
        while t <= SimTime::from_mins(45) {
            for a in server.poll(t).unwrap() {
                log.push((t, a.request, a.devices.clone()));
                if let Some(d) = a.devices.first().copied() {
                    let _ = server.submit_sensed_data(d, a.request, &reading(t), t);
                }
            }
            t += SimDuration::from_secs(30);
        }
        let statuses: Vec<(RequestId, RequestStatus)> = server.request_statuses().collect();
        (log, statuses, server.stats())
    };
    assert_eq!(run(1), run(4));
}
