//! The device battery.

use serde::{Deserialize, Serialize};

/// The study's nominal battery: 1800 mAh at 3.82 V ≈ 24 754 J.
///
/// The paper's "2 % tolerable budget" bar (Figs 11/13) is 2 % of this,
/// quoted as 496 J in §5.1.
pub const NOMINAL_CAPACITY_J: f64 = 1800.0 * 3.82 * 3.6; // mAh × V × 3.6 = J

/// A simple coulomb-counting battery.
///
/// # Example
///
/// ```
/// use senseaid_device::Battery;
///
/// let mut b = Battery::nominal();
/// assert_eq!(b.level_pct(), 100.0);
/// b.drain(b.capacity_j() / 2.0);
/// assert!((b.level_pct() - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A battery with the given capacity in Joules, fully charged.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive and finite.
    pub fn new(capacity_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "battery capacity {capacity_j} must be positive"
        );
        Battery {
            capacity_j,
            drained_j: 0.0,
        }
    }

    /// The study's nominal 1800 mAh / 3.82 V battery, fully charged.
    pub fn nominal() -> Self {
        Battery::new(NOMINAL_CAPACITY_J)
    }

    /// A nominal battery pre-drained to the given level percentage.
    ///
    /// # Panics
    ///
    /// Panics if `level_pct` is outside `[0, 100]`.
    pub fn nominal_at_level(level_pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&level_pct),
            "battery level {level_pct}% outside [0, 100]"
        );
        let mut b = Battery::nominal();
        b.drain(NOMINAL_CAPACITY_J * (100.0 - level_pct) / 100.0);
        b
    }

    /// Total capacity in Joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining charge in Joules.
    pub fn remaining_j(&self) -> f64 {
        self.capacity_j - self.drained_j
    }

    /// Cumulative energy drained in Joules.
    pub fn drained_j(&self) -> f64 {
        self.drained_j
    }

    /// Remaining charge as a percentage of capacity (0–100).
    pub fn level_pct(&self) -> f64 {
        // Divide before scaling so a full battery reads exactly 100.0.
        self.remaining_j() / self.capacity_j * 100.0
    }

    /// Whether the battery is empty.
    pub fn is_depleted(&self) -> bool {
        self.remaining_j() <= 0.0
    }

    /// Drains `joules` of charge, clamping at empty. Returns the energy
    /// actually drained.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    pub fn drain(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "cannot drain {joules} J"
        );
        let take = joules.min(self.remaining_j());
        self.drained_j += take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_paper_threshold() {
        let b = Battery::nominal();
        // 2 % of nominal should be the paper's 496 J bar (±1 J).
        let two_pct = b.capacity_j() * 0.02;
        assert!(
            (two_pct - 495.0).abs() < 1.5,
            "2% of nominal = {two_pct}, expected ≈495–496 J"
        );
    }

    #[test]
    fn drain_reduces_level() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.drain(30.0), 30.0);
        assert_eq!(b.remaining_j(), 70.0);
        assert_eq!(b.level_pct(), 70.0);
        assert_eq!(b.drained_j(), 30.0);
        assert!(!b.is_depleted());
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut b = Battery::new(10.0);
        assert_eq!(b.drain(25.0), 10.0);
        assert!(b.is_depleted());
        assert_eq!(b.level_pct(), 0.0);
        assert_eq!(b.drain(5.0), 0.0);
    }

    #[test]
    fn nominal_at_level() {
        let b = Battery::nominal_at_level(40.0);
        assert!((b.level_pct() - 40.0).abs() < 1e-6);
        let full = Battery::nominal_at_level(100.0);
        assert_eq!(full.level_pct(), 100.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_capacity() {
        let _ = Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn rejects_bad_level() {
        let _ = Battery::nominal_at_level(120.0);
    }

    #[test]
    #[should_panic(expected = "cannot drain")]
    fn rejects_negative_drain() {
        Battery::new(10.0).drain(-1.0);
    }
}
