//! Regenerates the paper's Figure 01 output. Run with
//! `cargo bench -p senseaid-bench --bench fig01_survey`.

use senseaid_bench::experiments::{fig01, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", fig01::run(seed));
}
