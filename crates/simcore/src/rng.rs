//! Seedable randomness with labelled stream derivation.
//!
//! Every stochastic component of the simulation (mobility, app traffic,
//! sensor noise, …) draws from its own [`SimRng`] stream derived from the
//! run's master seed and a stable label. Adding a draw in one component
//! therefore never shifts the random sequence seen by another, which keeps
//! experiments comparable across code changes.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A deterministic random stream.
///
/// # Example
///
/// ```
/// use senseaid_sim::SimRng;
///
/// let mut a = SimRng::from_seed_label(42, "mobility/device-3");
/// let mut b = SimRng::from_seed_label(42, "mobility/device-3");
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = SimRng::from_seed_label(42, "traffic/device-3");
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a stream for `label` under the master `seed`.
    ///
    /// The derivation is a 64-bit FNV-1a hash of the label folded into the
    /// seed, then diffused through splitmix64 — cheap, stable across
    /// platforms, and good enough to decorrelate streams.
    pub fn from_seed_label(seed: u64, label: &str) -> Self {
        Self::from_seed(derive_seed(seed, label))
    }

    /// Derives a child stream labelled `label` from this stream's own
    /// entropy, without consuming draws from `self`'s sequence beyond one.
    pub fn derive(&mut self, label: &str) -> SimRng {
        let base = self.inner.next_u64();
        Self::from_seed(derive_seed(base, label))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        self.inner.random_range(lo..hi)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random_bool(p)
        }
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in the app-traffic model.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "bad exponential mean {mean}"
        );
        // Inverse-CDF sampling; (1 - u) avoids ln(0).
        let u = self.inner.random::<f64>();
        -mean * (1.0f64 - u).ln()
    }

    /// A standard-normal value via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.inner.random::<f64>(); // (0, 1]
        let u2: f64 = self.inner.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal value with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "bad std dev {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Chooses a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(0, items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

/// Mixes a label into a seed: FNV-1a over the label bytes, XORed with the
/// seed, then splitmix64 finalisation.
fn derive_seed(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(seed ^ h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_decorrelate_streams() {
        let mut a = SimRng::from_seed_label(7, "alpha");
        let mut b = SimRng::from_seed_label(7, "beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic() {
        let mut parent1 = SimRng::from_seed(99);
        let mut parent2 = SimRng::from_seed(99);
        let mut c1 = parent1.derive("child");
        let mut c2 = parent2.derive("child");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::from_seed(1);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut r = SimRng::from_seed(2);
        for _ in 0..1000 {
            let v = r.uniform_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::from_seed(4);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::from_seed(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::from_seed(6);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn uniform_range_rejects_inverted_bounds() {
        SimRng::from_seed(0).uniform_range(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad exponential mean")]
    fn exponential_rejects_nonpositive_mean() {
        SimRng::from_seed(0).exponential(0.0);
    }
}
