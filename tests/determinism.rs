//! Reproducibility: identical seeds give bit-identical runs; different
//! seeds give different studies; frameworks see paired populations.

use senseaid::bench::{run_scenario, run_scenario_with, FrameworkKind, HarnessOptions};
use senseaid::cellnet::FaultPlan;
use senseaid::geo::NamedLocation;
use senseaid::sim::{SimDuration, SimTime};
use senseaid::workload::ScenarioConfig;

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(25),
        sampling_period: SimDuration::from_mins(5),
        spatial_density: 2,
        area_radius_m: 800.0,
        tasks: 2,
        location: NamedLocation::EeDepartment,
        group_size: 10,
    }
}

#[test]
fn identical_seeds_are_bit_identical() {
    for kind in FrameworkKind::study_set() {
        let a = run_scenario(kind, scenario(), 99);
        let b = run_scenario(kind, scenario(), 99);
        assert_eq!(a.per_device_cs_j, b.per_device_cs_j, "{kind}");
        assert_eq!(a.uploads, b.uploads, "{kind}");
        assert_eq!(a.rounds.len(), b.rounds.len(), "{kind}");
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.participating, rb.participating, "{kind}");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_scenario(FrameworkKind::SenseAidComplete, scenario(), 1);
    let b = run_scenario(FrameworkKind::SenseAidComplete, scenario(), 2);
    assert_ne!(
        a.per_device_cs_j, b.per_device_cs_j,
        "two studies with different seeds should not be identical"
    );
}

#[test]
fn shard_count_never_changes_the_study() {
    // The sharded control plane must be an implementation detail: for any
    // shard count the scheduler pops requests in the same global order and
    // sees candidates in the same merged order, so whole-study results are
    // bit-identical to the single-shard (paper prototype) layout.
    for seed in [5u64, 99] {
        let single = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            seed,
            HarnessOptions {
                shard_count: Some(1),
                ..HarnessOptions::default()
            },
        );
        for shards in [2usize, 8] {
            let sharded = run_scenario_with(
                FrameworkKind::SenseAidComplete,
                scenario(),
                seed,
                HarnessOptions {
                    shard_count: Some(shards),
                    ..HarnessOptions::default()
                },
            );
            assert_eq!(
                single.per_device_cs_j, sharded.per_device_cs_j,
                "seed {seed}: energy must match across {shards} shards"
            );
            assert_eq!(single.uploads, sharded.uploads, "seed {seed}/{shards}");
            assert_eq!(
                single.rounds.len(),
                sharded.rounds.len(),
                "seed {seed}/{shards}"
            );
            for (a, b) in single.rounds.iter().zip(&sharded.rounds) {
                assert_eq!(a.at, b.at, "seed {seed}/{shards}");
                assert_eq!(a.qualified, b.qualified, "seed {seed}/{shards}");
                assert_eq!(
                    a.participating, b.participating,
                    "seed {seed}/{shards}: selection must be shard-invariant"
                );
            }
        }
    }
}

/// The parallel experiment harness must be an implementation detail, like
/// sharding: for any worker count the assembled results are bit-identical
/// to the serial (one-worker) execution, because each cell is pure and
/// results are keyed by cell index, never by completion order.
#[test]
fn worker_count_never_changes_the_study() {
    use senseaid::bench::map_cells;
    for seed in [5u64, 33, 99] {
        let cells = || {
            FrameworkKind::study_set()
                .into_iter()
                .map(|kind| (kind, seed))
                .collect::<Vec<_>>()
        };
        let serial = map_cells(cells(), 1, |_, (kind, seed)| {
            run_scenario(kind, scenario(), seed)
        });
        for workers in [2usize, 8] {
            let parallel = map_cells(cells(), workers, |_, (kind, seed)| {
                run_scenario(kind, scenario(), seed)
            });
            assert_eq!(
                serial, parallel,
                "seed {seed}: reports must be identical at {workers} workers"
            );
        }
    }
}

fn chaos_plan(fault_seed: u64) -> FaultPlan {
    FaultPlan {
        seed: fault_seed,
        loss: 0.20,
        jitter_max: SimDuration::from_millis(300),
        duplicate: 0.02,
        reorder: 0.01,
        server_outages: vec![(SimTime::from_mins(10), SimTime::from_mins(13))],
        ..FaultPlan::none()
    }
}

/// Fault injection is part of the replayable state: the same (sim seed,
/// fault seed) pair yields a bit-identical chaotic study.
#[test]
fn same_fault_seed_replays_bit_identically() {
    let run = || {
        run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            33,
            HarnessOptions {
                fault_plan: Some(chaos_plan(4242)),
                ..HarnessOptions::default()
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.per_device_cs_j, b.per_device_cs_j);
    assert_eq!(a.uploads, b.uploads);
    assert_eq!(a.readings_delivered, b.readings_delivered);
    assert_eq!(a.readings_lost, b.readings_lost);
    assert_eq!(a.delivery_delays_s, b.delivery_delays_s);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.at, rb.at);
        assert_eq!(ra.participating, rb.participating);
    }
}

/// The fault streams are independent of the simulation streams: varying
/// only the fault seed against a fixed world changes the outcome.
#[test]
fn different_fault_seeds_perturb_the_study() {
    let run = |fault_seed: u64| {
        run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            33,
            HarnessOptions {
                fault_plan: Some(chaos_plan(fault_seed)),
                ..HarnessOptions::default()
            },
        )
    };
    let a = run(1);
    let b = run(2);
    let fingerprint = |r: &senseaid::bench::GroupReport| {
        (
            r.per_device_cs_j.clone(),
            r.uploads,
            r.readings_delivered,
            r.readings_lost,
            r.delivery_delays_s.clone(),
        )
    };
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different fault seeds must produce different loss patterns"
    );
}

#[test]
fn frameworks_share_the_same_population_per_seed() {
    // Paired comparison: Periodic and Sense-Aid see the same people in
    // the same places, so their per-round qualified counts line up.
    let periodic = run_scenario(FrameworkKind::Periodic, scenario(), 7);
    let senseaid = run_scenario(FrameworkKind::SenseAidComplete, scenario(), 7);
    assert!(!periodic.rounds.is_empty() && !senseaid.rounds.is_empty());
    // Compare rounds that fire at the same instants.
    let mut matched = 0;
    for pr in &periodic.rounds {
        if let Some(sr) = senseaid.rounds.iter().find(|r| r.at == pr.at) {
            // Qualified counts may differ by a device or two: Sense-Aid's
            // view refreshes on its 30 s position cadence, the baselines
            // check at the round instant.
            assert!(
                (pr.qualified as i64 - sr.qualified as i64).abs() <= 3,
                "at {}: periodic {} vs senseaid {}",
                pr.at,
                pr.qualified,
                sr.qualified
            );
            matched += 1;
        }
    }
    assert!(matched >= 3, "rounds should align across frameworks");
}
