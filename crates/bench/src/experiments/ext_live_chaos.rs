//! Extension: live-path chaos — the serving layer's digest identity
//! under injected transport faults.
//!
//! Where `ext_chaos` degrades the *simulated* sensing network, this study
//! attacks the *serving* path: every fault preset of the seeded
//! [`TransportFaultPlan`] (torn writes, stalls, byte-trickle receives,
//! abrupt cuts, a reconnect storm, and the mixed cocktail) is replayed
//! against the same recorded workload, with the chaos driver resuming
//! sessions and retransmitting through every cut. The claim under test is
//! binary and total: for every preset × fault seed, the durable digest at
//! the horizon is byte-identical to the fault-free sim twin, assignment
//! pushes arrive exactly once (zero sequence gaps), and the session
//! ledger drains to empty.

use senseaid_core::runtime::TransportFaultPlan;
use senseaid_serve::{record_sample_trace, run_live_chaos, run_sim, ChaosReport};

/// Fault seeds swept per preset — three distinct fault timelines each.
pub const FAULT_SEEDS: [u64; 3] = [11, 12, 13];

/// Engine shards for the sweep (the mid point of the keystone's 1/2/8).
pub const SHARDS: usize = 2;

/// Workload size: devices enrolled and activity rounds recorded.
pub const DEVICES: usize = 10;
/// Activity rounds in the recorded trace.
pub const ROUNDS: usize = 8;

/// One row of the sweep: a preset aggregated over its fault seeds.
pub struct PresetRow {
    /// Preset name (the matrix axis).
    pub preset: &'static str,
    /// Fault-seed runs whose digest matched the sim twin.
    pub digests_matched: usize,
    /// Fault-seed runs executed.
    pub runs: usize,
    /// Faults injected, summed over seeds and links.
    pub faults: u64,
    /// Link teardowns the driver recovered from, summed over seeds.
    pub reconnects: u64,
    /// Retransmissions answered from the engine's response cache.
    pub deduped: u64,
    /// Ledgered pushes the engine replayed across resumes.
    pub replayed: u64,
    /// Replayed push copies the client dropped by sequence number.
    pub dup_drops: u64,
    /// Push sequence gaps observed client-side (must stay zero).
    pub gaps: u64,
}

/// Runs the sweep and renders the table.
pub fn run(seed: u64) -> String {
    render(seed, DEVICES, ROUNDS)
}

/// Runs one preset across every fault seed and aggregates the evidence.
fn sweep(seed: u64, devices: usize, rounds: usize) -> Vec<PresetRow> {
    let trace = record_sample_trace(seed, devices, rounds);
    let expected = run_sim(&trace, SHARDS);
    let cells: Vec<(&'static str, u64)> = TransportFaultPlan::preset_names()
        .iter()
        .flat_map(|&preset| FAULT_SEEDS.into_iter().map(move |fs| (preset, fs)))
        .collect();
    let reports: Vec<(&'static str, ChaosReport)> =
        crate::parallel::map(cells, |_, (preset, fault_seed)| {
            let plan = TransportFaultPlan::preset(preset, fault_seed).expect("advertised preset");
            (preset, run_live_chaos(&trace, SHARDS, &plan))
        });
    TransportFaultPlan::preset_names()
        .iter()
        .map(|&preset| {
            let mut row = PresetRow {
                preset,
                digests_matched: 0,
                runs: 0,
                faults: 0,
                reconnects: 0,
                deduped: 0,
                replayed: 0,
                dup_drops: 0,
                gaps: 0,
            };
            for (name, r) in reports.iter().filter(|(name, _)| *name == preset) {
                let _ = name;
                row.runs += 1;
                row.digests_matched += usize::from(r.digest == expected);
                row.faults += r.faults.total();
                row.reconnects += r.reconnects;
                row.deduped += r.requests_deduped;
                row.replayed += r.pushes_replayed;
                row.dup_drops += r.push_duplicates;
                row.gaps += r.push_gaps;
            }
            row
        })
        .collect()
}

/// Renders the sweep for an arbitrary workload size.
pub fn render(seed: u64, devices: usize, rounds: usize) -> String {
    let rows = sweep(seed, devices, rounds);
    let mut out = String::from(
        "=== Extension: live chaos (transport fault presets vs the sim twin's digest) ===\n",
    );
    out.push_str(&format!(
        "{:<16} {:>7} {:>11} {:>8} {:>9} {:>6} {:>5} {:>7}\n",
        "preset", "faults", "reconnects", "deduped", "replayed", "dups", "gaps", "digest"
    ));
    for row in &rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>11} {:>8} {:>9} {:>6} {:>5} {:>7}\n",
            row.preset,
            row.faults,
            row.reconnects,
            row.deduped,
            row.replayed,
            row.dup_drops,
            row.gaps,
            if row.digests_matched == row.runs {
                "match"
            } else {
                "DIVERGED"
            },
        ));
    }
    out.push_str(&format!(
        "\nEvery preset ran {} fault timelines over {} shards; the session layer (resume +\n\
         retransmit + server-side dedup + push ledger) kept the durable digest byte-identical\n\
         to the fault-free sim and delivered every assignment push exactly once\n",
        FAULT_SEEDS.len(),
        SHARDS,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rows() -> Vec<PresetRow> {
        sweep(909, 5, 3)
    }

    /// The headline claim: every preset's digest matches the sim twin on
    /// every fault timeline, with zero push gaps anywhere.
    #[test]
    fn every_preset_matches_the_sim_digest() {
        for row in small_rows() {
            assert_eq!(row.runs, FAULT_SEEDS.len(), "{}", row.preset);
            assert_eq!(
                row.digests_matched, row.runs,
                "{}: a fault timeline diverged from the sim",
                row.preset
            );
            assert_eq!(row.gaps, 0, "{}: a push gap slipped through", row.preset);
        }
    }

    /// The faulty presets actually bite: the storm forces reconnects and
    /// session resumes do real work (replays or dedup), while the clean
    /// preset stays untouched.
    #[test]
    fn fault_presets_exercise_the_recovery_machinery() {
        let rows = small_rows();
        let none = rows.iter().find(|r| r.preset == "none").unwrap();
        assert_eq!(none.faults, 0);
        assert_eq!(none.reconnects, 0);
        let storm = rows.iter().find(|r| r.preset == "reconnect-storm").unwrap();
        assert!(storm.faults > 0, "storm injected nothing");
        assert!(storm.reconnects > 0, "storm never cut a link");
        assert!(
            storm.deduped + storm.replayed > 0,
            "resumes did no dedup or replay work"
        );
    }

    /// The rendered table carries one row per preset and the match verdict.
    #[test]
    fn render_has_one_row_per_preset() {
        let out = render(909, 5, 3);
        for &preset in TransportFaultPlan::preset_names() {
            assert!(out.contains(preset), "missing row for {preset}");
        }
        assert!(out.contains("match"));
        assert!(!out.contains("DIVERGED"));
    }
}
