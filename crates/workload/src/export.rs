//! Trace export for external analysis/plotting.
//!
//! The user study's raw artefacts — who was where, what each radio was
//! doing — are the things one plots when debugging a scheduler. These
//! helpers render them as plain CSV.

use senseaid_device::Device;
use senseaid_radio::PhaseTimeline;
use senseaid_sim::{SimDuration, SimTime};

/// One device's movement trace as CSV (`t_s,lat_deg,lon_deg`), sampled
/// every `step` from `from` to `to` inclusive.
///
/// # Panics
///
/// Panics if `step` is zero or `to < from`.
pub fn mobility_csv(device: &mut Device, from: SimTime, to: SimTime, step: SimDuration) -> String {
    assert!(!step.is_zero(), "step must be non-zero");
    assert!(to >= from, "to must not precede from");
    let mut out = String::from("t_s,lat_deg,lon_deg\n");
    let mut t = from;
    while t <= to {
        let p = device.position(t);
        out.push_str(&format!(
            "{:.1},{:.6},{:.6}\n",
            t.as_secs_f64(),
            p.lat_deg(),
            p.lon_deg()
        ));
        t += step;
    }
    out
}

/// A population snapshot as CSV (`device_id,lat_deg,lon_deg,battery_pct`).
pub fn positions_csv(devices: &mut [Device], at: SimTime) -> String {
    let mut out = String::from("device_id,lat_deg,lon_deg,battery_pct\n");
    for d in devices {
        let p = d.position(at);
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.1}\n",
            d.id().0,
            p.lat_deg(),
            p.lon_deg(),
            d.battery_level_pct()
        ));
    }
    out
}

/// A device's radio-phase timeline as CSV (`t_s,phase`), reconstructed up
/// to `horizon` — the Fig 6 artefact in machine-readable form.
pub fn radio_timeline_csv(device: &Device, horizon: SimTime) -> String {
    let timeline = PhaseTimeline::reconstruct(device.radio(), horizon);
    let mut out = String::from("t_s,phase\n");
    for e in timeline.entries() {
        out.push_str(&format!("{:.3},{}\n", e.at.as_secs_f64(), e.item));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationConfig, StudyPopulation};
    use senseaid_geo::CampusMap;
    use senseaid_radio::ResetPolicy;

    fn devices(n: usize) -> Vec<Device> {
        let map = CampusMap::standard();
        StudyPopulation::generate(5, &map, PopulationConfig::all_barometer(n)).into_devices()
    }

    #[test]
    fn mobility_csv_has_one_row_per_step() {
        let mut devs = devices(1);
        let csv = mobility_csv(
            &mut devs[0],
            SimTime::ZERO,
            SimTime::from_mins(10),
            SimDuration::from_mins(1),
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,lat_deg,lon_deg");
        assert_eq!(lines.len(), 12, "header + 11 samples (0..=10 min)");
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 3);
        }
    }

    #[test]
    fn positions_csv_lists_every_device() {
        let mut devs = devices(5);
        let csv = positions_csv(&mut devs, SimTime::from_mins(3));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.lines().nth(1).unwrap().starts_with("1,"));
    }

    #[test]
    fn radio_timeline_csv_tracks_activity() {
        let mut devs = devices(1);
        devs[0].upload_crowdsensing(SimTime::from_secs(10), 600, ResetPolicy::Reset);
        let csv = radio_timeline_csv(&devs[0], SimTime::from_secs(60));
        assert!(csv.contains("IDLE"));
        assert!(csv.contains("TRANSFER"));
        assert!(csv.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "step must be non-zero")]
    fn mobility_csv_rejects_zero_step() {
        let mut devs = devices(1);
        let _ = mobility_csv(
            &mut devs[0],
            SimTime::ZERO,
            SimTime::from_mins(1),
            SimDuration::ZERO,
        );
    }
}
