//! # Sense-Aid — energy-efficient crowdsensing middleware (reproduction)
//!
//! A from-scratch Rust reproduction of *Sense-Aid: A Framework for
//! Enabling Network as a Service for Participatory Sensing* (Zhang,
//! Theera-Ampornpunt, Wang, Bagchi, Panta — ACM Middleware 2017),
//! including every substrate the paper's evaluation depends on:
//!
//! | crate | what it provides |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine, time, seeded RNG, metrics, traces |
//! | [`geo`] | WGS-84 points, circular task regions, the study campus map |
//! | [`radio`] | LTE/3G RRC state machine, tail/DRX timing, energy model |
//! | [`cellnet`] | eNodeB topology, UE attachment, core-network routing with fail-safe |
//! | [`device`] | simulated handsets: battery, sensors, mobility, app traffic |
//! | [`core`] | **the paper's contribution**: the Sense-Aid server (datastores, deadline queues, device selector, privacy filter), client library, CAS library |
//! | [`telemetry`] | unified tracing + metrics: sim-time spans, registry snapshots, Perfetto export |
//! | [`baselines`] | the comparison frameworks: Periodic and PCS (with a trainable app-usage predictor) |
//! | [`workload`] | the 109-person survey (Fig 1), weather field, 60-student population, experiment grids |
//! | [`serve`] | live mode: length-prefixed TCP wire protocol, per-shard event loops, load generator, sim↔live byte-identity harness |
//! | [`bench`](mod@bench) | the experiment harness: one `cargo bench` target per paper table/figure |
//!
//! # Quickstart
//!
//! ```
//! use senseaid::bench::{run_scenario, FrameworkKind};
//! use senseaid::workload::ExperimentGrid;
//!
//! // One test point of the paper's Experiment 1 (500 m radius).
//! let scenario = ExperimentGrid::experiment1().points()[4];
//! let senseaid = run_scenario(FrameworkKind::SenseAidComplete, scenario, 42);
//! let pcs = run_scenario(FrameworkKind::pcs_default(), scenario, 42);
//! assert!(senseaid.total_cs_j() < pcs.total_cs_j());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` for
//! the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The comparison frameworks: Periodic and Piggyback CrowdSensing.
pub use senseaid_baselines as baselines;
/// The experiment harness and per-figure experiment modules.
pub use senseaid_bench as bench;
/// Cellular network substrate: towers, attachment, routing.
pub use senseaid_cellnet as cellnet;
/// The Sense-Aid middleware itself.
pub use senseaid_core as core;
/// Simulated mobile devices.
pub use senseaid_device as device;
/// Geographic primitives and the campus map.
pub use senseaid_geo as geo;
/// Radio (RRC) state machine and energy model.
pub use senseaid_radio as radio;
/// Live TCP serving layer: wire protocol, event loops, load generator.
pub use senseaid_serve as serve;
/// Discrete-event simulation engine.
pub use senseaid_sim as sim;
/// Unified tracing + metrics: sim-time spans, Perfetto export.
pub use senseaid_telemetry as telemetry;
/// Survey, weather, population and scenario workloads.
pub use senseaid_workload as workload;
