//! Binary framing primitives for the durability layer.
//!
//! Everything the control plane persists — snapshots, journal records,
//! the manifest — is wrapped in one frame format:
//!
//! ```text
//! magic(4) | version u16 | kind u8 | payload_len u32 | payload | crc32 u32
//! ```
//!
//! All integers are little-endian. The CRC covers the header *and* the
//! payload, so a flipped bit anywhere in the frame — including the length
//! field — fails verification. Decoders must treat every byte as hostile:
//! return [`CodecError`], never panic, never accept a frame whose checksum
//! does not match.

use std::fmt;

/// Frame magic: `"SAID"` (Sense-Aid Durability).
pub const MAGIC: [u8; 4] = *b"SAID";

/// Current on-disk format version.
pub const VERSION: u16 = 1;

/// Frame kind: a full control-plane snapshot.
pub const KIND_SNAPSHOT_FULL: u8 = 1;
/// Frame kind: a delta snapshot against an earlier generation.
pub const KIND_SNAPSHOT_DELTA: u8 = 2;
/// Frame kind: one write-ahead journal record.
pub const KIND_JOURNAL: u8 = 3;
/// Frame kind: the generation-chain manifest.
pub const KIND_MANIFEST: u8 = 4;

/// Why a decode was rejected. Every variant is a refusal, not a crash:
/// corrupt bytes must surface as `Err`, never as a panic or as silently
/// wrong state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's version is not one this build can read.
    BadVersion(u16),
    /// The frame kind differs from what the caller expected.
    BadKind(u8),
    /// The CRC32 over the frame does not match its trailer.
    BadChecksum,
    /// The payload decoded structurally but violated a semantic
    /// invariant (e.g. a deadline before its sampling instant).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unreadable format version {v}"),
            CodecError::BadKind(k) => write!(f, "unexpected frame kind {k}"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// Little-endian byte sink for payload encoding.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32` (sensor type codes).
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian cursor over untrusted payload bytes. Every accessor
/// bounds-checks and returns [`CodecError::Truncated`] instead of slicing
/// past the end.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a little-endian `i32`.
    pub fn take_i32(&mut self) -> Result<i32, CodecError> {
        let s = self.take(4)?;
        Ok(i32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a boolean; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("boolean byte out of range")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("invalid UTF-8"))
    }

    /// Reads a `u32` collection count, refusing counts that could not
    /// possibly fit in the remaining bytes (`min_item_bytes` each) — the
    /// guard that keeps a corrupt length from triggering a huge
    /// allocation.
    pub fn take_count(&mut self, min_item_bytes: usize) -> Result<usize, CodecError> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Frame overhead in bytes: magic + version + kind + length + CRC.
pub const FRAME_OVERHEAD: usize = 4 + 2 + 1 + 4 + 4;

/// Wraps `payload` in a checksummed frame of the given `kind`.
pub fn seal_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies and unwraps one frame that must span exactly `bytes`,
/// returning `(kind, payload)`. Trailing garbage is a checksum-level
/// refusal: a frame is either byte-exact or rejected.
pub fn open_frame(bytes: &[u8]) -> Result<(u8, &[u8]), CodecError> {
    let (kind, payload, consumed) = open_frame_prefix(bytes)?;
    if consumed != bytes.len() {
        return Err(CodecError::Malformed("trailing bytes after frame"));
    }
    Ok((kind, payload))
}

/// Verifies one frame at the *start* of `bytes`, returning
/// `(kind, payload, bytes_consumed)`. Used by the journal reader, where
/// frames are concatenated and a torn tail must not poison the prefix.
pub fn open_frame_prefix(bytes: &[u8]) -> Result<(u8, &[u8], usize), CodecError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(CodecError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = bytes[6];
    let len = u32::from_le_bytes([bytes[7], bytes[8], bytes[9], bytes[10]]) as usize;
    let total = FRAME_OVERHEAD
        .checked_add(len)
        .ok_or(CodecError::Truncated)?;
    if bytes.len() < total {
        return Err(CodecError::Truncated);
    }
    let body = &bytes[..total - 4];
    let want = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    if crc32(body) != want {
        return Err(CodecError::BadChecksum);
    }
    Ok((kind, &bytes[11..total - 4], total))
}

/// Like [`open_frame`] but also checks the kind byte.
pub fn open_frame_expecting(bytes: &[u8], expect: u8) -> Result<&[u8], CodecError> {
    let (kind, payload) = open_frame(bytes)?;
    if kind != expect {
        return Err(CodecError::BadKind(kind));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"control plane state".to_vec();
        let frame = seal_frame(KIND_SNAPSHOT_FULL, &payload);
        let (kind, got) = open_frame(&frame).unwrap();
        assert_eq!(kind, KIND_SNAPSHOT_FULL);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = seal_frame(KIND_JOURNAL, b"abcdefgh");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = seal_frame(KIND_MANIFEST, b"generations");
        for cut in 0..frame.len() {
            assert!(open_frame(&frame[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn prefix_open_reports_consumed_length() {
        let a = seal_frame(KIND_JOURNAL, b"first");
        let b = seal_frame(KIND_JOURNAL, b"second record");
        let mut file = a.clone();
        file.extend_from_slice(&b);
        let (_, p1, used) = open_frame_prefix(&file).unwrap();
        assert_eq!(p1, b"first");
        let (_, p2, used2) = open_frame_prefix(&file[used..]).unwrap();
        assert_eq!(p2, b"second record");
        assert_eq!(used + used2, file.len());
    }

    #[test]
    fn reader_refuses_hostile_counts() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_count(8), Err(CodecError::Truncated));
    }
}
