//! Closed-loop load generator for the live server.
//!
//! Each connection is a blocking TCP client thread running the same
//! device lifecycle the trace recorder uses: enrol (Hello, Register,
//! Observe), then a seeded weighted mix of state updates, comms,
//! observations and sensed-batch submissions. *Closed-loop* means every
//! client waits for its response before sending the next request, so the
//! measured latency distribution is honest — no coordinated-omission
//! artefacts from open-loop backlog.
//!
//! The client speaks the full session protocol: it binds a session with
//! `Hello`, wraps every op in a `Tracked` envelope with a piggybacked
//! push ack, and on any transport failure redials with seeded jittered
//! exponential backoff, resumes its session, and retransmits the pending
//! envelope — the engine's dedup makes the retry at-most-once. A bout
//! that cannot re-establish contact reports a *fatal* error instead of
//! dressing a partial histogram up as success.
//!
//! Latencies land in per-thread [`LatencyHistogram`]s merged at the end;
//! the report carries requests/sec plus p50/p99/p999 for the perf
//! harness and the CI smoke job.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use senseaid_device::Sensor;
use senseaid_geo::GeoPoint;
use senseaid_sim::SimRng;

use crate::conn::FrameAssembler;
use crate::hist::LatencyHistogram;
use crate::wire::{
    decode_frame, encode_request, WireFrame, WirePush, WireReading, WireRequest, WireResponse,
    WireTaskSpec, ERR_UNKNOWN_SESSION,
};

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests to issue across all connections (measured
    /// requests; enrolment is excluded).
    pub requests: u64,
    /// Optional wall-clock cap; whichever of `requests`/`duration`
    /// trips first ends the bout.
    pub duration: Option<Duration>,
    /// Seed for the request mix (and the reconnect jitter).
    pub seed: u64,
    /// Have connection 0 submit a sensing task so assignment pushes
    /// exercise the push path during the bout.
    pub submit_task: bool,
    /// Send a wire `Shutdown` when done (lets CI stop the server from
    /// the client side).
    pub stop_server: bool,
    /// Force-close the socket after every N measured requests, so the
    /// bout continuously exercises the redial + resume path (and the
    /// latency histogram honestly includes reconnect cost).
    pub drop_every: Option<u64>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:7411".to_owned(),
            connections: 4,
            requests: 10_000,
            duration: None,
            seed: 0x5EED,
            submit_task: true,
            stop_server: false,
            drop_every: None,
        }
    }
}

/// What a load bout measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Measured requests completed (responses received).
    pub requests: u64,
    /// Requests that ultimately failed after retries.
    pub errors: u64,
    /// Times a client redialed the server (deliberate drops included).
    pub reconnects: u64,
    /// Sessions successfully resumed after a redial.
    pub resumes: u64,
    /// Wall time of the measured bout.
    pub elapsed: Duration,
    /// Latency distribution over all measured requests.
    pub hist: LatencyHistogram,
    /// Why the bout is *not* a success, when it is not: a client
    /// exhausted its reconnect budget, or enrolment never completed.
    /// Callers must treat `Some` as failure regardless of the histogram.
    pub fatal: Option<String>,
    /// `--stop-server` was requested but the shutdown handshake failed.
    pub stop_server_error: Option<String>,
}

impl LoadReport {
    /// Requests per second over the bout.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// One-line operator rendering.
    pub fn render(&self) -> String {
        let mut line = format!(
            "loadgen: requests={} errors={} reconnects={} resumes={} elapsed_ms={:.1} rps={:.0} p50_ms={:.3} p99_ms={:.3} p999_ms={:.3} max_ms={:.3}",
            self.requests,
            self.errors,
            self.reconnects,
            self.resumes,
            self.elapsed.as_secs_f64() * 1e3,
            self.rps(),
            self.hist.quantile_ms(0.50),
            self.hist.quantile_ms(0.99),
            self.hist.quantile_ms(0.999),
            self.hist.max_ns() as f64 / 1e6,
        );
        if let Some(fatal) = &self.fatal {
            line.push_str(&format!(" FATAL: {fatal}"));
        }
        if let Some(err) = &self.stop_server_error {
            line.push_str(&format!(" stop_server_error: {err}"));
        }
        line
    }
}

/// Redials before a client declares the server gone. With the backoff
/// schedule below the budget spans roughly twenty seconds — wide enough
/// to ride out a supervised restart, narrow enough that a dead server
/// fails the bout promptly.
const MAX_REDIALS: u32 = 14;

/// One dialled socket with its reassembly state.
struct Dial {
    stream: TcpStream,
    assembler: FrameAssembler,
}

impl Dial {
    fn connect(addr: &str) -> std::io::Result<Dial> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Dial {
            stream,
            assembler: FrameAssembler::new(),
        })
    }
}

/// The client half of a live session.
struct Session {
    token: u64,
    /// Last envelope sequence the server acknowledged.
    req_seq: u64,
    /// Highest assignment push sequence seen (the cumulative ack).
    push_seen: u64,
}

/// A blocking session-speaking client: tracked envelopes, resume after
/// redial, seeded jittered backoff.
struct Client {
    addr: String,
    dial: Option<Dial>,
    session: Option<Session>,
    /// The session (if any) has not yet been resumed on the current
    /// socket.
    needs_resume: bool,
    rng: SimRng,
    scratch: Vec<u8>,
    reconnects: u64,
    resumes: u64,
    imei: u64,
}

impl Client {
    fn new(addr: String, seed: u64, imei: u64) -> Client {
        Client {
            addr,
            dial: None,
            session: None,
            needs_resume: false,
            rng: SimRng::from_seed_label(seed, "loadgen-backoff"),
            scratch: vec![0u8; 16 * 1024],
            reconnects: 0,
            resumes: 0,
            imei,
        }
    }

    /// Drops the socket (deliberately or after a failure); the next call
    /// redials and resumes.
    fn drop_socket(&mut self) {
        self.dial = None;
        if self.session.is_some() {
            self.needs_resume = true;
        }
    }

    /// Dials with seeded jittered exponential backoff until connected or
    /// the redial budget is spent.
    fn redial(&mut self) -> std::io::Result<()> {
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..MAX_REDIALS {
            if attempt > 0 || last_err.is_some() {
                let base = 50u64.saturating_mul(1 << attempt.min(5)).min(2_000);
                // ±50% jitter, seeded: storms from many clients decorrelate
                // deterministically per client.
                let jittered = base / 2 + self.rng.uniform_usize(0, base as usize) as u64;
                std::thread::sleep(Duration::from_millis(jittered));
            }
            match Dial::connect(&self.addr) {
                Ok(dial) => {
                    self.dial = Some(dial);
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("redial budget exhausted")))
    }

    /// One frame out, one response back, on the current socket. Pushes
    /// interleaved on the stream are consumed and acked via sequence
    /// tracking.
    fn roundtrip(&mut self, frame: &[u8]) -> std::io::Result<WireResponse> {
        let dial = self
            .dial
            .as_mut()
            .ok_or_else(|| std::io::Error::other("no socket"))?;
        dial.stream.write_all(frame)?;
        loop {
            loop {
                let next = match dial.assembler.next_frame() {
                    Ok(next) => next,
                    // Corrupt server bytes: the assembler resynced, but a
                    // server that garbles frames is not one to trust.
                    Err(e) => return Err(std::io::Error::other(format!("wire: {e}"))),
                };
                let Some((kind, payload)) = next else { break };
                match decode_frame(kind, &payload)
                    .map_err(|e| std::io::Error::other(format!("decode: {e}")))?
                {
                    WireFrame::Response(resp) => return Ok(resp),
                    WireFrame::Push(WirePush::Assignment { seq, device, .. }) => {
                        if device == self.imei {
                            if let Some(session) = self.session.as_mut() {
                                if seq > session.push_seen {
                                    session.push_seen = seq;
                                }
                            }
                        }
                    }
                    WireFrame::Push(WirePush::Disconnect { .. }) => {
                        // The server told us why it is about to hang up;
                        // the read error follows shortly.
                    }
                    WireFrame::Request(_) => {
                        return Err(std::io::Error::other("server sent a request frame"))
                    }
                }
            }
            let n = dial.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            dial.assembler.extend(&self.scratch[..n]);
        }
    }

    /// Makes the session live on the current socket: dial if needed,
    /// `Hello` on first contact, `Resume` after a redial, fresh `Hello`
    /// when the server no longer knows the token.
    fn ensure_session(&mut self) -> std::io::Result<()> {
        if self.dial.is_none() {
            self.redial()?;
        }
        if self.session.is_none() {
            let frame = encode_request(&WireRequest::Hello { imei: self.imei });
            match self.roundtrip(&frame)? {
                WireResponse::SessionBound { token } => {
                    self.session = Some(Session {
                        token,
                        req_seq: 0,
                        push_seen: 0,
                    });
                    self.needs_resume = false;
                    return Ok(());
                }
                other => return Err(std::io::Error::other(format!("hello answered {other:?}"))),
            }
        }
        if self.needs_resume {
            let session = self.session.as_ref().expect("needs_resume implies session");
            let frame = encode_request(&WireRequest::Resume {
                token: session.token,
                push_ack: session.push_seen,
            });
            match self.roundtrip(&frame)? {
                WireResponse::SessionResumed { .. } => {
                    self.needs_resume = false;
                    self.resumes += 1;
                }
                WireResponse::Error { code, .. } if code == ERR_UNKNOWN_SESSION => {
                    // Revoked (lease, overflow, or a restarted server):
                    // start a fresh session and sequence space.
                    self.session = None;
                    self.needs_resume = false;
                    return self.ensure_session();
                }
                other => return Err(std::io::Error::other(format!("resume answered {other:?}"))),
            }
        }
        Ok(())
    }

    /// Drives one op to acknowledgement through redials and resumes.
    /// The same envelope sequence number is retransmitted after every
    /// cut, so the server applies the op at most once.
    fn call(&mut self, req: &WireRequest) -> std::io::Result<WireResponse> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > MAX_REDIALS {
                return Err(std::io::Error::other(
                    "request could not be delivered within the reconnect budget",
                ));
            }
            if let Err(e) = self.ensure_session() {
                if self.dial.is_none() {
                    // Redial budget exhausted: the server is gone.
                    return Err(e);
                }
                self.drop_socket();
                continue;
            }
            let (token, pending, ack) = {
                let s = self.session.as_ref().expect("ensured above");
                (s.token, s.req_seq + 1, s.push_seen)
            };
            let frame = encode_request(&WireRequest::Tracked {
                token,
                req_seq: pending,
                push_ack: ack,
                inner: Box::new(req.clone()),
            });
            match self.roundtrip(&frame) {
                Ok(WireResponse::Error { code, .. }) if code == ERR_UNKNOWN_SESSION => {
                    self.session = None;
                    self.needs_resume = false;
                }
                Ok(resp) => {
                    self.session.as_mut().expect("ensured above").req_seq = pending;
                    return Ok(resp);
                }
                Err(_) => self.drop_socket(),
            }
        }
    }
}

fn enrolment(imei: u64, position: GeoPoint) -> Vec<WireRequest> {
    vec![
        WireRequest::Register {
            imei,
            energy_budget_j: 140.0,
            critical_battery_pct: 15.0,
            battery_pct: 90.0,
            device_type: "loadgen-phone".to_owned(),
            sensors: vec![Sensor::Barometer, Sensor::Light],
        },
        WireRequest::Observe {
            imei,
            lat_deg: position.lat_deg(),
            lon_deg: position.lon_deg(),
            cell: None,
        },
    ]
}

/// The seeded steady-state mix — the same weighting the trace recorder
/// uses, so live load resembles the replayed workload.
fn next_request(rng: &mut SimRng, imei: u64, seq: &mut u64, battery: &mut f64) -> WireRequest {
    let roll = rng.uniform();
    if roll < 0.35 {
        *battery = (*battery - rng.uniform_range(0.0, 0.4)).max(5.0);
        WireRequest::StateUpdate {
            imei,
            battery_pct: *battery,
            cs_energy_j: rng.uniform_range(0.0, 0.5),
        }
    } else if roll < 0.55 {
        WireRequest::Comm { imei }
    } else if roll < 0.80 {
        let centre = GeoPoint::new(40.4284, -86.9138);
        let position = centre.offset_by_meters(
            rng.uniform_range(-900.0, 900.0),
            rng.uniform_range(-900.0, 900.0),
        );
        WireRequest::Observe {
            imei,
            lat_deg: position.lat_deg(),
            lon_deg: position.lon_deg(),
            cell: None,
        }
    } else {
        *seq += 1;
        WireRequest::SubmitBatch {
            imei,
            seq: *seq,
            attempt: 1,
            readings: vec![WireReading {
                request: rng.uniform_usize(0, 8) as u64,
                sensor: Sensor::Barometer,
                value: rng.uniform_range(990.0, 1030.0),
                taken_at_us: *seq * 1_000,
                lat_deg: 40.4284,
                lon_deg: -86.9138,
            }],
        }
    }
}

/// What one worker thread hands back.
struct WorkerOutcome {
    hist: LatencyHistogram,
    completed: u64,
    errors: u64,
    reconnects: u64,
    resumes: u64,
    fatal: Option<String>,
}

/// Runs a closed-loop load bout against a live server.
///
/// # Errors
///
/// Connection-establishment failures (the server was unreachable before
/// the bout even started). Failures *during* the bout land in
/// [`LoadReport::errors`] and — when a client exhausts its reconnect
/// budget — [`LoadReport::fatal`], so callers can exit nonzero instead
/// of presenting a partial histogram as success.
pub fn run_loadgen(options: &LoadgenOptions) -> std::io::Result<LoadReport> {
    let connections = options.connections.max(1);
    // Fail fast if the server is unreachable, before spawning threads.
    drop(TcpStream::connect(&options.addr)?);

    let issued = Arc::new(AtomicU64::new(0));
    let deadline = options.duration.map(|d| Instant::now() + d);
    let started = Instant::now();
    let mut joins = Vec::with_capacity(connections);
    for worker in 0..connections {
        let addr = options.addr.clone();
        let issued = Arc::clone(&issued);
        let total = options.requests;
        let seed = options.seed;
        let submit_task = options.submit_task && worker == 0;
        let drop_every = options.drop_every;
        joins.push(std::thread::spawn(move || {
            let mut out = WorkerOutcome {
                hist: LatencyHistogram::new(),
                completed: 0,
                errors: 0,
                reconnects: 0,
                resumes: 0,
                fatal: None,
            };
            let imei = 0x10AD_0000 + worker as u64;
            let mut client = Client::new(addr, seed ^ worker as u64, imei);
            let mut rng = SimRng::from_seed_label(seed ^ worker as u64, "loadgen");
            let centre = GeoPoint::new(40.4284, -86.9138);
            let position = centre.offset_by_meters(
                rng.uniform_range(-800.0, 800.0),
                rng.uniform_range(-800.0, 800.0),
            );
            for req in enrolment(imei, position) {
                if let Err(e) = client.call(&req) {
                    out.errors += 1;
                    out.fatal = Some(format!("enrolment failed: {e}"));
                    out.reconnects = client.reconnects.saturating_sub(1);
                    out.resumes = client.resumes;
                    return out;
                }
            }
            if submit_task {
                let spec = WireTaskSpec {
                    sensor: Sensor::Barometer,
                    centre_lat: centre.lat_deg(),
                    centre_lon: centre.lon_deg(),
                    radius_m: 2_000.0,
                    spatial_density: 2,
                    one_shot: false,
                    period_us: 120_000_000,
                    duration_us: 1_200_000_000,
                };
                let _ = client.call(&WireRequest::SubmitTask { cas: 1, spec });
            }
            let mut seq = 0u64;
            let mut battery = 90.0f64;
            let mut since_drop = 0u64;
            loop {
                if issued.fetch_add(1, Ordering::Relaxed) >= total {
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
                let req = next_request(&mut rng, imei, &mut seq, &mut battery);
                let sent = Instant::now();
                match client.call(&req) {
                    Ok(_) => {
                        out.hist.record(sent.elapsed());
                        out.completed += 1;
                        since_drop += 1;
                        if drop_every.is_some_and(|n| since_drop >= n.max(1)) {
                            since_drop = 0;
                            client.drop_socket();
                        }
                    }
                    Err(e) => {
                        out.errors += 1;
                        if deadline.is_none_or(|d| Instant::now() < d) {
                            out.fatal = Some(format!("mid-bout request failed: {e}"));
                        }
                        break;
                    }
                }
            }
            // The first dial is establishment, not a *re*connect.
            out.reconnects = client.reconnects.saturating_sub(1);
            out.resumes = client.resumes;
            out
        }));
    }

    let mut hist = LatencyHistogram::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut reconnects = 0u64;
    let mut resumes = 0u64;
    let mut fatal: Option<String> = None;
    for join in joins {
        let out = join.join().expect("loadgen thread panicked");
        hist.merge(&out.hist);
        requests += out.completed;
        errors += out.errors;
        reconnects += out.reconnects;
        resumes += out.resumes;
        if fatal.is_none() {
            fatal = out.fatal;
        }
    }
    let elapsed = started.elapsed();

    let mut stop_server_error = None;
    if options.stop_server {
        let outcome = Client::new(options.addr.clone(), options.seed, 0).roundtrip_shutdown();
        if let Err(e) = outcome {
            stop_server_error = Some(e.to_string());
        }
    }

    Ok(LoadReport {
        requests,
        errors,
        reconnects,
        resumes,
        elapsed,
        hist,
        fatal,
        stop_server_error,
    })
}

impl Client {
    /// Dials once and performs the shutdown handshake; no session, no
    /// retries — a failure is *reported*, because "stop the server"
    /// silently not happening is how CI hangs.
    fn roundtrip_shutdown(mut self) -> std::io::Result<()> {
        self.dial = Some(Dial::connect(&self.addr)?);
        match self.roundtrip(&encode_request(&WireRequest::Shutdown))? {
            WireResponse::ShuttingDown => Ok(()),
            other => Err(std::io::Error::other(format!(
                "shutdown answered {other:?}"
            ))),
        }
    }
}
