//! Regenerates the paper's Figure 06 output. Run with
//! `cargo bench -p senseaid-bench --bench fig06_tail_timeline`.

use senseaid_bench::experiments::{fig06, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", fig06::run(seed));
}
