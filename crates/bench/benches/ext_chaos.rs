//! Chaos extension study (loss sweep + crash/recover). Run with
//! `cargo bench -p senseaid-bench --bench ext_chaos`.

use senseaid_bench::experiments::{ext_chaos, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", ext_chaos::run(seed));
}
