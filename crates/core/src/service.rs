//! A shareable, thread-safe front end to the Sense-Aid server.
//!
//! The paper's server runs as a long-lived network service with a
//! request-selection thread and a wait-check thread (Algorithm 1), while
//! client traffic arrives concurrently from every eNodeB. [`SharedServer`]
//! packages that deployment shape: a cheaply clonable handle wrapping the
//! single-threaded [`SenseAidServer`] in a lock, plus an
//! assignment-subscription channel so schedulers and dispatchers can live
//! on different threads.
//!
//! # Example
//!
//! ```
//! use senseaid_core::service::SharedServer;
//! use senseaid_core::{SenseAidConfig, TaskSpec};
//! use senseaid_device::{ImeiHash, Sensor};
//! use senseaid_geo::{CircleRegion, GeoPoint};
//! use senseaid_sim::{SimDuration, SimTime};
//!
//! let service = SharedServer::new(SenseAidConfig::default());
//! let assignments = service.subscribe();
//!
//! let centre = GeoPoint::new(40.4284, -86.9138);
//! service.with(|s| {
//!     s.register_device(ImeiHash(1), 495.0, 15.0, 90.0,
//!                       vec![Sensor::Barometer], "GalaxyS4".into(), SimTime::ZERO)?;
//!     s.observe_device(ImeiHash(1), centre, None)
//! })?;
//! let spec = TaskSpec::builder(Sensor::Barometer)
//!     .region(CircleRegion::new(centre, 500.0))
//!     .sampling_period(SimDuration::from_mins(5))
//!     .sampling_duration(SimDuration::from_mins(10))
//!     .build()?;
//! service.with(|s| s.submit_task(spec, SimTime::ZERO))?;
//!
//! service.poll(SimTime::ZERO)?;
//! let a = assignments.try_recv().expect("one assignment scheduled");
//! assert_eq!(a.devices, vec![ImeiHash(1)]);
//! # Ok::<(), senseaid_core::SenseAidError>(())
//! ```

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use senseaid_sim::SimTime;

use senseaid_device::{ImeiHash, SensorReading};
use senseaid_sim::SimDuration;

use crate::config::SenseAidConfig;
use crate::coordinator::BatchReceipt;
use crate::error::SenseAidError;
use crate::request::RequestId;
use crate::server::{Assignment, SenseAidServer};

/// A clonable, thread-safe handle to one Sense-Aid server instance.
#[derive(Debug, Clone)]
pub struct SharedServer {
    inner: Arc<Mutex<SenseAidServer>>,
    subscribers: Arc<Mutex<Vec<Sender<Assignment>>>>,
}

impl SharedServer {
    /// Wraps a fresh server.
    pub fn new(config: SenseAidConfig) -> Self {
        Self::from_server(SenseAidServer::new(config))
    }

    /// Wraps an existing server (e.g. one with state already loaded).
    pub fn from_server(server: SenseAidServer) -> Self {
        SharedServer {
            inner: Arc::new(Mutex::new(server)),
            subscribers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Runs `f` with exclusive access to the underlying server. Keep the
    /// closure short — it holds the service lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut SenseAidServer) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Subscribes to future assignments. Every assignment produced by
    /// [`poll`](Self::poll) is fanned out to all live subscribers;
    /// subscribers that dropped their receiver are pruned automatically.
    pub fn subscribe(&self) -> Receiver<Assignment> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Number of live subscribers (for tests/monitoring).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// The earliest instant a [`poll`](Self::poll) could change state, or
    /// `None` when the server is quiescent (see
    /// [`SenseAidServer::next_wakeup`]). Event-driven drivers sleep until
    /// this instant instead of polling on a period.
    pub fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        self.inner.lock().next_wakeup(now)
    }

    /// Runs one scheduling round and fans the assignments out to
    /// subscribers. Returns them to the caller as well.
    ///
    /// # Errors
    ///
    /// Propagates [`SenseAidError::ServerUnavailable`] when the server is
    /// crash-injected.
    pub fn poll(&self, now: SimTime) -> Result<Vec<Assignment>, SenseAidError> {
        let assignments = self.inner.lock().poll(now)?;
        if !assignments.is_empty() {
            let mut subs = self.subscribers.lock();
            subs.retain(|tx| assignments.iter().all(|a| tx.send(a.clone()).is_ok()));
        }
        Ok(assignments)
    }

    // --- Fault-tolerance passthroughs (see `SenseAidServer`) ---

    /// Enables periodic control-plane snapshots; see
    /// [`SenseAidServer::enable_snapshots`].
    pub fn enable_snapshots(&self, interval: SimDuration) {
        self.inner.lock().enable_snapshots(interval);
    }

    /// Takes a periodic snapshot if one is due; see
    /// [`SenseAidServer::tick_snapshot`].
    pub fn tick_snapshot(&self, now: SimTime) -> bool {
        self.inner.lock().tick_snapshot(now)
    }

    /// Restarts a crashed server from its last snapshot, reconciled
    /// against `now`; see [`SenseAidServer::recover_at`].
    pub fn recover_at(&self, now: SimTime) {
        self.inner.lock().recover_at(now);
    }

    /// Ingests a sequenced envelope batch; see
    /// [`SenseAidServer::submit_sensed_batch`].
    ///
    /// # Errors
    ///
    /// [`SenseAidError::ServerUnavailable`] when crash-injected.
    pub fn submit_sensed_batch(
        &self,
        imei: ImeiHash,
        seq: u64,
        attempt: u32,
        readings: &[(RequestId, SensorReading)],
        now: SimTime,
    ) -> Result<BatchReceipt, SenseAidError> {
        self.inner
            .lock()
            .submit_sensed_batch(imei, seq, attempt, readings, now)
    }

    /// Folds client-reported drops into server stats; see
    /// [`SenseAidServer::note_client_drops`].
    pub fn note_client_drops(&self, dropped: u64) {
        self.inner.lock().note_client_drops(dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use senseaid_device::{ImeiHash, Sensor};
    use senseaid_geo::{CircleRegion, GeoPoint};
    use senseaid_sim::SimDuration;

    fn centre() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    fn populated_service(devices: u64) -> SharedServer {
        let service = SharedServer::new(SenseAidConfig::default());
        service.with(|s| {
            for i in 1..=devices {
                s.register_device(
                    ImeiHash(i),
                    495.0,
                    15.0,
                    90.0,
                    vec![Sensor::Barometer],
                    "GalaxyS4".to_owned(),
                    SimTime::ZERO,
                )
                .unwrap();
                s.observe_device(ImeiHash(i), centre(), None).unwrap();
            }
        });
        service
    }

    fn task() -> TaskSpec {
        TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(centre(), 500.0))
            .spatial_density(2)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(15))
            .build()
            .unwrap()
    }

    #[test]
    fn assignments_fan_out_to_all_subscribers() {
        let service = populated_service(4);
        let rx1 = service.subscribe();
        let rx2 = service.subscribe();
        service
            .with(|s| s.submit_task(task(), SimTime::ZERO))
            .unwrap();
        let direct = service.poll(SimTime::ZERO).unwrap();
        assert_eq!(direct.len(), 1);
        assert_eq!(rx1.try_recv().unwrap(), direct[0]);
        assert_eq!(rx2.try_recv().unwrap(), direct[0]);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let service = populated_service(4);
        let rx1 = service.subscribe();
        let rx2 = service.subscribe();
        drop(rx2);
        assert_eq!(service.subscriber_count(), 2, "pruning happens lazily");
        service
            .with(|s| s.submit_task(task(), SimTime::ZERO))
            .unwrap();
        service.poll(SimTime::ZERO).unwrap();
        assert_eq!(service.subscriber_count(), 1);
        assert!(rx1.try_recv().is_ok());
    }

    #[test]
    fn handles_share_one_server() {
        let service = populated_service(2);
        let other = service.clone();
        other.with(|s| {
            s.register_device(
                ImeiHash(99),
                495.0,
                15.0,
                50.0,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                SimTime::ZERO,
            )
            .unwrap();
        });
        assert_eq!(service.with(|s| s.device_count()), 3);
    }

    #[test]
    fn scheduler_and_dispatcher_threads_cooperate() {
        let service = populated_service(6);
        let rx = service.subscribe();
        service
            .with(|s| s.submit_task(task(), SimTime::ZERO))
            .unwrap();

        let scheduler = {
            let service = service.clone();
            std::thread::spawn(move || {
                for min in 0..=15u64 {
                    service.poll(SimTime::from_mins(min)).unwrap();
                }
            })
        };
        let dispatcher = std::thread::spawn(move || {
            let mut seen = 0;
            while let Ok(a) = rx.recv() {
                assert_eq!(a.devices.len(), 2);
                seen += 1;
            }
            seen
        });
        scheduler.join().unwrap();
        // Dropping the service's senders requires dropping the service's
        // subscriber list; dropping our handles closes the channel.
        drop(service);
        let seen = dispatcher.join().unwrap();
        assert_eq!(seen, 3, "15 min / 5 min period = 3 assignments");
    }

    #[test]
    fn batch_path_and_snapshot_recovery_work_through_the_handle() {
        use senseaid_device::SensorReading;

        let service = populated_service(4);
        service.enable_snapshots(SimDuration::from_mins(1));
        service
            .with(|s| s.submit_task(task(), SimTime::ZERO))
            .unwrap();
        let assignments = service.poll(SimTime::ZERO).unwrap();
        let request_id = assignments[0].request;
        let imei = assignments[0].devices[0];
        assert!(service.tick_snapshot(SimTime::ZERO));

        let reading = SensorReading {
            sensor: Sensor::Barometer,
            value: 1000.0,
            taken_at: SimTime::ZERO,
            position: centre(),
        };
        let batch = [(request_id, reading)];
        let receipt = service
            .submit_sensed_batch(imei, 1, 1, &batch, SimTime::ZERO)
            .unwrap();
        assert_eq!(receipt.ack, 1);

        // A retransmit of the same envelope is a no-op with the same ack.
        let replay = service
            .submit_sensed_batch(imei, 1, 2, &batch, SimTime::ZERO)
            .unwrap();
        assert_eq!(replay.ack, 1);
        assert!(replay.outcomes.is_empty());

        // Crash and recover from the snapshot: registrations survive.
        service.with(SenseAidServer::crash);
        assert!(service
            .submit_sensed_batch(imei, 2, 1, &batch, SimTime::ZERO)
            .is_err());
        service.recover_at(SimTime::from_mins(1));
        assert_eq!(service.with(|s| s.device_count()), 4);
        service.note_client_drops(3);
        assert_eq!(service.with(|s| s.stats()).client_readings_dropped, 3);
    }

    #[test]
    fn crash_propagates_through_the_handle() {
        let service = populated_service(1);
        service.with(SenseAidServer::crash);
        assert_eq!(
            service.poll(SimTime::ZERO),
            Err(SenseAidError::ServerUnavailable)
        );
        service.with(SenseAidServer::recover);
        assert!(service.poll(SimTime::ZERO).is_ok());
    }
}
