//! Circular areas of interest.
//!
//! A crowdsensing task (paper Table 1) names a centre location and an
//! `area_radius`; a device is *qualified* only while it is inside that
//! circle.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::{GeoPoint, Meters};

/// A circular region: centre plus radius in metres.
///
/// # Example
///
/// ```
/// use senseaid_geo::{CircleRegion, GeoPoint};
///
/// let centre = GeoPoint::new(40.4284, -86.9138);
/// let region = CircleRegion::new(centre, 500.0);
/// assert!(region.contains(centre));
/// assert_eq!(region.radius_m(), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleRegion {
    centre: GeoPoint,
    radius_m: f64,
}

impl CircleRegion {
    /// Creates a region with the given centre and radius in metres.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` is not positive and finite.
    pub fn new(centre: GeoPoint, radius_m: f64) -> Self {
        assert!(
            radius_m.is_finite() && radius_m > 0.0,
            "region radius {radius_m} must be positive"
        );
        CircleRegion { centre, radius_m }
    }

    /// The region's centre.
    pub fn centre(&self) -> GeoPoint {
        self.centre
    }

    /// The region's radius in metres.
    pub fn radius_m(&self) -> f64 {
        self.radius_m
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: GeoPoint) -> bool {
        self.centre.distance_to(p).value() <= self.radius_m
    }

    /// Signed distance from `p` to the boundary: negative inside, positive
    /// outside.
    pub fn boundary_distance(&self, p: GeoPoint) -> Meters {
        Meters(self.centre.distance_to(p).value() - self.radius_m)
    }

    /// Returns a region with the same centre and a different radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` is not positive and finite.
    pub fn with_radius(&self, radius_m: f64) -> CircleRegion {
        CircleRegion::new(self.centre, radius_m)
    }

    /// Whether two regions overlap (including touching).
    pub fn intersects(&self, other: &CircleRegion) -> bool {
        self.centre.distance_to(other.centre).value() <= self.radius_m + other.radius_m
    }
}

impl fmt::Display for CircleRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle({}, r={})", self.centre, Meters(self.radius_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn centre() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    #[test]
    fn contains_centre_and_respects_radius() {
        let r = CircleRegion::new(centre(), 300.0);
        assert!(r.contains(centre()));
        assert!(r.contains(centre().offset_by_meters(299.0, 0.0)));
        assert!(!r.contains(centre().offset_by_meters(0.0, 301.5)));
    }

    #[test]
    fn boundary_distance_signs() {
        let r = CircleRegion::new(centre(), 300.0);
        assert!(r.boundary_distance(centre()).value() < 0.0);
        assert!(
            r.boundary_distance(centre().offset_by_meters(400.0, 0.0))
                .value()
                > 0.0
        );
    }

    #[test]
    fn with_radius_preserves_centre() {
        let r = CircleRegion::new(centre(), 100.0).with_radius(1000.0);
        assert_eq!(r.centre(), centre());
        assert_eq!(r.radius_m(), 1000.0);
    }

    #[test]
    fn intersects_cases() {
        let a = CircleRegion::new(centre(), 300.0);
        let b = CircleRegion::new(centre().offset_by_meters(500.0, 0.0), 300.0);
        let c = CircleRegion::new(centre().offset_by_meters(1000.0, 0.0), 300.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&a));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_radius() {
        let _ = CircleRegion::new(centre(), 0.0);
    }

    #[test]
    fn display_mentions_radius() {
        let r = CircleRegion::new(centre(), 500.0);
        assert!(r.to_string().contains("r=500.0m"));
    }

    proptest! {
        #[test]
        fn contains_agrees_with_boundary_distance(
            n in -1500.0..1500.0f64,
            e in -1500.0..1500.0f64,
            radius in 1.0..2000.0f64,
        ) {
            let region = CircleRegion::new(centre(), radius);
            let p = centre().offset_by_meters(n, e);
            prop_assert_eq!(
                region.contains(p),
                region.boundary_distance(p).value() <= 0.0
            );
        }

        #[test]
        fn growing_radius_never_loses_points(
            n in -1500.0..1500.0f64,
            e in -1500.0..1500.0f64,
            r1 in 1.0..1000.0f64,
            extra in 0.0..1000.0f64,
        ) {
            let small = CircleRegion::new(centre(), r1);
            let big = small.with_radius(r1 + extra + f64::EPSILON);
            let p = centre().offset_by_meters(n, e);
            if small.contains(p) {
                prop_assert!(big.contains(p));
            }
        }
    }
}
