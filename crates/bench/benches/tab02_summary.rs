//! Regenerates the paper's tab02 output. Run with
//! `cargo bench -p senseaid-bench --bench tab02_summary`.

use senseaid_bench::experiments::{tab02, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", tab02::run(seed));
}
