//! A reusable scoped worker pool for determinism-preserving fan-out.
//!
//! Two layers of the workspace fan independent work units out to threads:
//! the bench harness runs experiment *cells* in parallel (PR 3), and the
//! coordinator's two-phase poll runs per-request *phase-1* work in
//! parallel (DESIGN.md §14). Both need the same contract — results
//! assembled by input index, byte-identical at any worker count — so the
//! pool lives here in core and the bench harness delegates to it.
//!
//! [`map_indexed`] is the contract in code: a `std::thread::scope` worker
//! pool pulls item indices from an atomic cursor, runs each item exactly
//! once, and files the result into the slot matching its input index.
//! Which *thread* runs an item varies between runs; which *slot* its
//! result lands in depends only on the index, so the assembled vector is
//! identical at any worker count, including the serial inline path.
//!
//! [`ShardPool`] wraps the worker-count policy around it: an explicit
//! count, the `SENSEAID_SHARD_WORKERS` environment variable, or the
//! machine's available parallelism — plus a spawn threshold so a handful
//! of items never pays thread start-up latency for nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Below this many items per worker a parallel run would spend comparable
/// time spawning threads (tens of microseconds each) as doing the work, so
/// [`ShardPool::map`] stays inline. Purely a latency knob: the output is
/// identical either way.
const MIN_ITEMS_PER_WORKER: usize = 2;

/// Worker threads for intra-run shard execution: the
/// `SENSEAID_SHARD_WORKERS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism (1 if that
/// cannot be determined).
///
/// # Panics
///
/// Panics when the variable is set but malformed, naming the variable
/// and the offending value — a typo'd override must not silently run a
/// different worker count than the one asked for (see [`crate::env`]).
pub fn configured_shard_workers() -> usize {
    let configured =
        crate::env::positive_env("SENSEAID_SHARD_WORKERS").unwrap_or_else(|err| panic!("{err}"));
    workers_from(configured)
}

fn workers_from(configured: Option<usize>) -> usize {
    configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f(index, item)` for every item on up to `workers` threads,
/// returning results in input order regardless of completion order.
///
/// `workers <= 1` (or fewer than two items) short-circuits to a plain
/// serial loop on the calling thread. A panic inside `f` propagates out
/// of the scope and fails the caller, matching the serial behaviour.
pub fn map_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Items move into per-index mailboxes; each worker claims the next
    // unclaimed index, takes the item, and files the result under the
    // same index. The mutexes are uncontended by construction (an index
    // is claimed exactly once) — they exist to make the hand-off safe
    // without unsafe code.
    let source: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = source[i]
                    .lock()
                    .expect("no worker panicked holding this lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(i, item);
                *slots[i]
                    .lock()
                    .expect("no worker panicked holding this lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers joined cleanly")
                .expect("every claimed index filed a result")
        })
        .collect()
}

/// The coordinator's owned worker pool for phase-1 poll work.
///
/// Scoped threads are spawned per [`map`](Self::map) call and joined
/// before it returns, so the pool holds no threads between polls — it is
/// a worker-count policy plus a spawn threshold, cheap to construct and
/// `Copy`. One worker (or a sub-threshold batch) runs inline on the
/// calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPool {
    workers: usize,
}

impl ShardPool {
    /// A pool with exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ShardPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized by `override_workers` when given, else by
    /// [`configured_shard_workers`] (environment variable, then available
    /// parallelism).
    pub fn from_config(override_workers: Option<usize>) -> Self {
        ShardPool::new(override_workers.unwrap_or_else(configured_shard_workers))
    }

    /// The worker count this pool runs at.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether [`map`](Self::map) always runs inline.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// Runs `f(index, item)` over the items, results in input order.
    /// Spawns threads only when every worker would get at least
    /// [`MIN_ITEMS_PER_WORKER`] items; otherwise runs inline. Output is
    /// byte-identical either way.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let workers = if items.len() >= self.workers * MIN_ITEMS_PER_WORKER {
            self.workers
        } else {
            1
        };
        map_indexed(items, workers, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 2, 8, 64] {
            let out = map_indexed(items.clone(), workers, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            let expected: Vec<usize> = (0..40).map(|x| x * 3).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert_eq!(map_indexed(none, 8, |_, x| x), Vec::<u8>::new());
        assert_eq!(map_indexed(vec![7u8], 8, |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn pool_clamps_and_reports_workers() {
        assert_eq!(ShardPool::new(0).workers(), 1);
        assert!(ShardPool::new(0).is_serial());
        assert_eq!(ShardPool::new(8).workers(), 8);
        assert!(!ShardPool::new(8).is_serial());
        assert_eq!(ShardPool::from_config(Some(3)).workers(), 3);
    }

    #[test]
    fn pool_map_matches_serial_at_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let reference: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for workers in [1, 2, 8] {
            let pool = ShardPool::new(workers);
            assert_eq!(
                pool.map(items.clone(), |_, x| x * x + 1),
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn sub_threshold_batches_run_inline() {
        // 3 items with 8 workers is below the spawn threshold; the result
        // must still be correct (and identical to the parallel answer).
        let pool = ShardPool::new(8);
        assert_eq!(
            pool.map(vec![1u32, 2, 3], |i, x| (i, x * 2)),
            vec![(0, 2), (1, 4), (2, 6)]
        );
    }

    #[test]
    fn env_parsing_rules() {
        use crate::env::parse_positive_value;
        let from = |raw| workers_from(parse_positive_value("SENSEAID_SHARD_WORKERS", raw).unwrap());
        assert_eq!(from(Some("4")), 4);
        assert_eq!(from(Some("1")), 1);
        assert!(from(None) >= 1);
        // Zero and garbage are *errors* naming the variable, not silent
        // fallbacks to the serial path (DESIGN.md §15 satellite).
        for bad in ["0", "not-a-number", "-2", "1.5"] {
            let err = parse_positive_value("SENSEAID_SHARD_WORKERS", Some(bad)).unwrap_err();
            assert_eq!(err.name, "SENSEAID_SHARD_WORKERS");
            assert!(err.to_string().contains("SENSEAID_SHARD_WORKERS"));
        }
    }
}
