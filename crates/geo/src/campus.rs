//! The user-study campus map.
//!
//! The paper's user study placed crowdsensing tasks at four named campus
//! locations (Student Union, EE department, CS department, University Gym)
//! and relied on the cellular network to locate devices at *cell-tower
//! granularity*. [`CampusMap`] models both: the named locations, and a small
//! grid of tower sites that covers the campus.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;
use crate::region::CircleRegion;

/// The four task locations from the paper's user study (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedLocation {
    /// The Student Union building.
    StudentUnion,
    /// The Electrical Engineering department.
    EeDepartment,
    /// The Computer Science department (the location Figs 7–9 report).
    CsDepartment,
    /// The University Gym.
    UniversityGym,
}

impl NamedLocation {
    /// All four study locations, in the paper's order.
    pub const ALL: [NamedLocation; 4] = [
        NamedLocation::StudentUnion,
        NamedLocation::EeDepartment,
        NamedLocation::CsDepartment,
        NamedLocation::UniversityGym,
    ];
}

impl fmt::Display for NamedLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NamedLocation::StudentUnion => "Student Union",
            NamedLocation::EeDepartment => "EE department",
            NamedLocation::CsDepartment => "CS department",
            NamedLocation::UniversityGym => "University Gym",
        };
        f.write_str(name)
    }
}

/// A cell-tower site on the campus map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowerSite {
    /// Index of the tower within the map (stable across runs).
    pub index: usize,
    /// Tower position.
    pub position: GeoPoint,
    /// Nominal coverage radius in metres.
    pub coverage_m: f64,
}

impl TowerSite {
    /// The tower's coverage circle.
    pub fn coverage(&self) -> CircleRegion {
        CircleRegion::new(self.position, self.coverage_m)
    }
}

/// A campus: an anchor point, four named locations laid out around it, and
/// a tower grid that covers the whole area.
///
/// # Example
///
/// ```
/// use senseaid_geo::{CampusMap, NamedLocation};
///
/// let map = CampusMap::standard();
/// let cs = map.location(NamedLocation::CsDepartment);
/// let tower = map.nearest_tower(cs);
/// assert!(tower.position.distance_to(cs).value() <= tower.coverage_m);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusMap {
    anchor: GeoPoint,
    locations: [(NamedLocation, GeoPoint); 4],
    towers: Vec<TowerSite>,
    bounds_half_extent_m: f64,
}

impl CampusMap {
    /// The standard study campus: a Purdue-like anchor, the four study
    /// locations spread 400–900 m apart, and a 3×3 tower grid with 800 m
    /// coverage each.
    pub fn standard() -> Self {
        let anchor = GeoPoint::new(40.4284, -86.9138);
        Self::with_anchor(anchor)
    }

    /// Builds the standard layout around an arbitrary anchor point.
    pub fn with_anchor(anchor: GeoPoint) -> Self {
        // Layout (metres north/east of anchor), loosely mirroring the real
        // campus: union central, EE/CS adjacent to its north-east, gym far
        // north-west.
        let locations = [
            (
                NamedLocation::StudentUnion,
                anchor.offset_by_meters(0.0, 0.0),
            ),
            (
                NamedLocation::EeDepartment,
                anchor.offset_by_meters(250.0, 300.0),
            ),
            (
                NamedLocation::CsDepartment,
                anchor.offset_by_meters(450.0, 150.0),
            ),
            (
                NamedLocation::UniversityGym,
                anchor.offset_by_meters(700.0, -600.0),
            ),
        ];
        let mut towers = Vec::new();
        let spacing = 900.0;
        let mut index = 0;
        for row in -1..=1 {
            for col in -1..=1 {
                towers.push(TowerSite {
                    index,
                    position: anchor
                        .offset_by_meters(f64::from(row) * spacing, f64::from(col) * spacing),
                    coverage_m: 800.0,
                });
                index += 1;
            }
        }
        CampusMap {
            anchor,
            locations,
            towers,
            bounds_half_extent_m: 1_500.0,
        }
    }

    /// The campus anchor (centre of the map).
    pub fn anchor(&self) -> GeoPoint {
        self.anchor
    }

    /// The position of a named study location.
    pub fn location(&self, which: NamedLocation) -> GeoPoint {
        self.locations
            .iter()
            .find(|(name, _)| *name == which)
            .map(|(_, p)| *p)
            .expect("all four locations are always present")
    }

    /// All named locations with their positions.
    pub fn locations(&self) -> &[(NamedLocation, GeoPoint)] {
        &self.locations
    }

    /// The tower sites.
    pub fn towers(&self) -> &[TowerSite] {
        &self.towers
    }

    /// The tower closest to `p`.
    ///
    /// # Panics
    ///
    /// Panics if the map has no towers (the standard map always has nine).
    pub fn nearest_tower(&self, p: GeoPoint) -> &TowerSite {
        self.towers
            .iter()
            .min_by(|a, b| {
                a.position
                    .distance_to(p)
                    .value()
                    .partial_cmp(&b.position.distance_to(p).value())
                    .expect("distances are finite")
            })
            .expect("campus map has at least one tower")
    }

    /// Whether `p` is inside the square mobility bounds of the campus.
    ///
    /// A millimetre of tolerance absorbs the lat/lon ↔ metre projection
    /// round-trip error, so `clamp_to_bounds` output always tests in-bounds.
    pub fn in_bounds(&self, p: GeoPoint) -> bool {
        const TOL_M: f64 = 1e-3;
        let (n, e) = self.anchor.displacement_to(p);
        n.abs() <= self.bounds_half_extent_m + TOL_M && e.abs() <= self.bounds_half_extent_m + TOL_M
    }

    /// Clamps `p` to the campus mobility bounds.
    pub fn clamp_to_bounds(&self, p: GeoPoint) -> GeoPoint {
        let (n, e) = self.anchor.displacement_to(p);
        let h = self.bounds_half_extent_m;
        self.anchor.offset_by_meters(n.clamp(-h, h), e.clamp(-h, h))
    }

    /// Half the side length of the square mobility bounds, in metres.
    pub fn bounds_half_extent_m(&self) -> f64 {
        self.bounds_half_extent_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_map_has_four_locations_and_nine_towers() {
        let map = CampusMap::standard();
        assert_eq!(map.locations().len(), 4);
        assert_eq!(map.towers().len(), 9);
        for loc in NamedLocation::ALL {
            // Every named location resolves and is in bounds.
            assert!(map.in_bounds(map.location(loc)), "{loc} out of bounds");
        }
    }

    #[test]
    fn every_location_is_covered_by_some_tower() {
        let map = CampusMap::standard();
        for loc in NamedLocation::ALL {
            let p = map.location(loc);
            let t = map.nearest_tower(p);
            assert!(
                t.coverage().contains(p),
                "{loc} not covered by nearest tower {}",
                t.index
            );
        }
    }

    #[test]
    fn nearest_tower_is_actually_nearest() {
        let map = CampusMap::standard();
        let p = map.anchor().offset_by_meters(123.0, -456.0);
        let nearest = map.nearest_tower(p);
        let d_near = nearest.position.distance_to(p).value();
        for t in map.towers() {
            assert!(t.position.distance_to(p).value() >= d_near - 1e-9);
        }
    }

    #[test]
    fn named_locations_are_distinct() {
        let map = CampusMap::standard();
        for (i, (_, a)) in map.locations().iter().enumerate() {
            for (_, b) in map.locations().iter().skip(i + 1) {
                assert!(a.distance_to(*b).value() > 100.0);
            }
        }
    }

    #[test]
    fn clamp_to_bounds_is_idempotent_and_in_bounds() {
        let map = CampusMap::standard();
        let far = map.anchor().offset_by_meters(9_000.0, -9_000.0);
        let clamped = map.clamp_to_bounds(far);
        assert!(map.in_bounds(clamped));
        let again = map.clamp_to_bounds(clamped);
        assert!(clamped.distance_to(again).value() < 0.5);
        // An in-bounds point clamps to itself.
        let inside = map.anchor().offset_by_meters(10.0, 10.0);
        // Projection round-trip is not exact; centimetre accuracy suffices.
        assert!(map.clamp_to_bounds(inside).distance_to(inside).value() < 0.01);
    }

    #[test]
    fn display_names() {
        assert_eq!(NamedLocation::CsDepartment.to_string(), "CS department");
        assert_eq!(NamedLocation::StudentUnion.to_string(), "Student Union");
    }

    #[test]
    fn with_anchor_relocates_everything() {
        let other = CampusMap::with_anchor(GeoPoint::new(51.5, -0.1));
        let std = CampusMap::standard();
        // Relative geometry is preserved even though the anchor moved.
        let d_other = other
            .location(NamedLocation::CsDepartment)
            .distance_to(other.location(NamedLocation::UniversityGym))
            .value();
        let d_std = std
            .location(NamedLocation::CsDepartment)
            .distance_to(std.location(NamedLocation::UniversityGym))
            .value();
        assert!((d_other - d_std).abs() < 5.0);
    }
}
