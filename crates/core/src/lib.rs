//! The Sense-Aid middleware — the paper's primary contribution.
//!
//! Sense-Aid (Middleware '17) is a network-resident service for
//! energy-efficient participatory sensing. This crate implements all three
//! of its components (paper §3):
//!
//! * **[`SenseAidServer`]** — deployed at the cellular edge. Keeps the task
//!   datastore and device datastore, runs the deadline-sorted run/wait
//!   queues, and executes the **device selector**
//!   (`Score(i) = α·E + β·U + γ·(100 − CBL) + φ·TTL`, lower wins, with
//!   hard cutoffs) to pick the *minimum* set of devices satisfying each
//!   request's spatial density.
//! * **[`SenseAidClient`]** — the client-side library
//!   (`register` / `deregister` / `update_preferences` / `start_sensing` /
//!   `send_sense_data`): samples when told to and uploads inside radio
//!   tails, avoiding IDLE→CONNECTED promotions.
//! * **[`AppServer`]** — the server-side library a crowdsensing
//!   application links against (`task` / `update_task_param` /
//!   `delete_task` / `receive_sensed_data`).
//!
//! The two deployment variants are selected by [`Variant`]: *Basic* (tail
//! uploads reset the RRC tail timer — stock protocol) and *Complete*
//! (carrier-cooperative: no reset).
//!
//! # Example
//!
//! ```
//! use senseaid_core::{SenseAidConfig, SenseAidServer, TaskSpec};
//! use senseaid_device::Sensor;
//! use senseaid_geo::{CircleRegion, GeoPoint};
//! use senseaid_sim::{SimDuration, SimTime};
//!
//! let mut server = SenseAidServer::new(SenseAidConfig::default());
//! let task = TaskSpec::builder(Sensor::Barometer)
//!     .region(CircleRegion::new(GeoPoint::new(40.4284, -86.9138), 500.0))
//!     .sampling_period(SimDuration::from_mins(5))
//!     .sampling_duration(SimDuration::from_mins(90))
//!     .spatial_density(2)
//!     .build()?;
//! let task_id = server.submit_task(task, SimTime::ZERO)?;
//! assert_eq!(server.task_count(), 1);
//! # Ok::<(), senseaid_core::SenseAidError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod breaker;
pub mod cas;
pub mod client;
pub mod config;
mod coordinator;
pub mod env;
pub mod error;
pub mod persist;
pub mod policy;
pub mod pool;
pub mod privacy;
pub mod queues;
pub mod request;
pub mod runtime;
pub mod scheduler;
pub mod selector;
pub mod server;
pub mod service;
mod shard;
pub mod store;
pub mod task;
pub mod validation;

pub use adaptive::{AdaptiveConfig, AdaptiveController};
pub use breaker::{BreakerConfig, BreakerState, DeliveryBreaker};
pub use cas::{AppServer, DeliveredReading};
pub use client::{
    ClientError, ClientState, ClientStats, OutboundBatch, SenseAidClient, UploadDecision,
};
pub use config::{DegradedConfig, SenseAidConfig, Variant};
pub use env::EnvVarError;
pub use error::SenseAidError;
pub use persist::{
    CodecError, DirStorage, FaultTally, FaultingStorage, MemStorage, PersistConfig, PersistError,
    PersistStats, RecoveryReport, StorageBackend, StorageError, StorageFaultPlan,
};
pub use policy::{
    DeadlineAware, DropLowestDeficit, DropNewest, ScoredPolicy, SelectionPolicy, ShedCandidate,
    ShedPolicy, ShedPolicyKind,
};
pub use pool::ShardPool;
pub use queues::{QueueEntry, RequestQueue};
pub use request::{RejectReason, Request, RequestId, RequestSlot, RequestStatus, ShedReason};
pub use runtime::{
    loopback_pair, Clock, LoopbackTransport, SimClock, Transport, TransportError, WallClock,
};
pub use scheduler::WakeupDriver;
pub use selector::{DeviceSelector, HardCutoffs, InsufficientDevices, SelectorWeights};
pub use server::{
    Assignment, BatchReceipt, ControlSnapshot, DeliveryOutcome, SelectionEvent, SenseAidServer,
    ServerStats,
};
pub use service::SharedServer;
pub use store::device_store::{DeviceRecord, DeviceStore};
pub use store::soa_store::{DeviceSlot, SoaDeviceStore};
pub use store::task_store::{RequestArena, TaskState, TaskStatus, TaskStore};
pub use store::{CandidateRow, DeviceIndex, QualificationProbe};
pub use task::{TaskId, TaskSchedule, TaskSpec, TaskSpecBuilder};
pub use validation::ReadingValidator;
