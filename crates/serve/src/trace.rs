//! Recorded device-event traces and the sim↔live byte-identity harness.
//!
//! A trace is a time-sorted list of wire requests. The same trace can be
//! driven two ways:
//!
//! - [`run_sim`] — the sim harness path: ops applied *directly* to a
//!   `SenseAidServer` with explicit timestamps, polls advanced by the
//!   same `next_wakeup` loop every sim driver in this workspace uses.
//!   This is the executable spec.
//! - [`run_live`] — the serving path: every op is *encoded to bytes*,
//!   pushed through a loopback [`Transport`] pair, reassembled by
//!   [`FrameAssembler`](crate::conn::FrameAssembler), decoded, and
//!   applied by the [`ServeEngine`] under a shared [`SimClock`] that the
//!   driver advances to each event's timestamp before sending.
//!
//! Both return `durable_digest` at the trace horizon. Equality means the
//! wire codec, the stream reassembly, the session layer and the engine's
//! receive-time stamping add **zero semantics** over the spec: a live
//! deployment is the sim with real time and real sockets plugged in.
//!
//! The sim side deliberately re-states the engine's serving semantics
//! (lease renewal on device-originated ops, advance-then-apply) in
//! straight-line code instead of calling into the engine — sharing that
//! code would make the comparison vacuous. If you change the rules in
//! [`crate::engine`], change [`apply_sim`] to match.

use std::collections::HashMap;
use std::sync::Arc;

use senseaid_cellnet::{CellId, CellularNetwork};
use senseaid_core::cas::CasId;
use senseaid_core::runtime::{
    loopback_pair, FaultingTransport, LoopbackTransport, SimClock, TransportFaultPlan,
    TransportFaultTally,
};
use senseaid_core::{SenseAidConfig, SenseAidServer};
use senseaid_device::{ImeiHash, Sensor};
use senseaid_geo::{GeoPoint, TowerSite};
use senseaid_sim::{SimDuration, SimRng, SimTime};

use crate::conn::Connection;
use crate::engine::{build_task_spec, decode_readings, ConnId, ServeEngine};
use crate::wire::{
    decode_frame, encode_request, WireFrame, WirePush, WireReading, WireRequest, WireResponse,
    WireTaskSpec, ERR_BAD_SEQUENCE, ERR_UNKNOWN_SESSION,
};

/// One timestamped operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the server receives the op (its clock reads this instant).
    pub at: SimTime,
    /// The operation, in wire form.
    pub req: WireRequest,
}

/// Alias kept for readability at call sites: trace ops *are* wire
/// requests — that is what makes replaying them through the live path a
/// faithful comparison.
pub type TraceOp = WireRequest;

/// A recorded device-event trace plus the instant to digest at.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// Time-sorted events.
    pub events: Vec<TraceEvent>,
    /// The digest horizon; both runners advance the scheduler here.
    pub horizon: SimTime,
}

fn campus_centre() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

/// The fixed radio topology both runners share: a centre tower plus a
/// ring of three, all overlapping — enough cells to make multi-shard
/// homing non-trivial.
pub fn trace_network() -> CellularNetwork {
    let centre = campus_centre();
    let sites: Vec<TowerSite> = (0..4)
        .map(|i| {
            let position = if i == 0 {
                centre
            } else {
                let angle = (i as f64) * std::f64::consts::TAU / 3.0;
                centre.offset_by_meters(1200.0 * angle.cos(), 1200.0 * angle.sin())
            };
            TowerSite {
                index: i,
                position,
                coverage_m: 1500.0,
            }
        })
        .collect();
    CellularNetwork::new(sites)
}

/// A fresh server configured for `shards` shards over [`trace_network`].
pub fn trace_server(shards: usize) -> SenseAidServer {
    let config = SenseAidConfig {
        shard_count: shards,
        ..SenseAidConfig::default()
    };
    let mut server = SenseAidServer::new(config);
    server.set_topology(trace_network());
    server
}

/// Records a deterministic sample trace: `devices` devices register,
/// observe in around the campus, a periodic barometer task arrives, then
/// `rounds` rounds of state updates, mobility, radio contact and
/// sequenced reading batches, with occasional CAS drains.
pub fn record_sample_trace(seed: u64, devices: usize, rounds: usize) -> EventTrace {
    let mut rng = SimRng::from_seed_label(seed, "serve-trace");
    let network = trace_network();
    let centre = campus_centre();
    let mut events = Vec::new();
    let mut t = SimTime::ZERO;
    let step = |rng: &mut SimRng, t: &mut SimTime, lo_ms: u64, hi_ms: u64| {
        *t = t.saturating_add(SimDuration::from_millis(
            lo_ms + rng.uniform_usize(0, (hi_ms - lo_ms) as usize) as u64,
        ));
        *t
    };

    let device_position = |rng: &mut SimRng| {
        let dx = rng.uniform_range(-900.0, 900.0);
        let dy = rng.uniform_range(-900.0, 900.0);
        centre.offset_by_meters(dx, dy)
    };

    // Enrolment wave.
    let mut positions = Vec::with_capacity(devices);
    for i in 0..devices {
        let imei = i as u64 + 1;
        let at = step(&mut rng, &mut t, 20, 250);
        events.push(TraceEvent {
            at,
            req: WireRequest::Register {
                imei,
                energy_budget_j: 400.0 + rng.uniform_range(0.0, 200.0),
                critical_battery_pct: 10.0 + rng.uniform_range(0.0, 10.0),
                battery_pct: 55.0 + rng.uniform_range(0.0, 45.0),
                device_type: (*rng
                    .choose(&["GalaxyS4", "iPhone6"])
                    .expect("non-empty choices"))
                .to_owned(),
                sensors: vec![Sensor::Barometer, Sensor::Light],
            },
        });
        let p = device_position(&mut rng);
        positions.push(p);
        events.push(TraceEvent {
            at,
            req: WireRequest::Observe {
                imei,
                lat_deg: p.lat_deg(),
                lon_deg: p.lon_deg(),
                cell: network.serving_cell(p).map(|c: CellId| c.0 as u64),
            },
        });
    }

    // One periodic barometer study over the whole campus.
    let at = step(&mut rng, &mut t, 500, 1500);
    events.push(TraceEvent {
        at,
        req: WireRequest::SubmitTask {
            cas: 1,
            spec: WireTaskSpec {
                sensor: Sensor::Barometer,
                centre_lat: centre.lat_deg(),
                centre_lon: centre.lon_deg(),
                radius_m: 2000.0,
                spatial_density: devices.clamp(1, 3) as u32,
                one_shot: false,
                period_us: SimDuration::from_mins(2).as_micros(),
                duration_us: SimDuration::from_mins(20).as_micros(),
            },
        },
    });

    // Activity rounds.
    let mut seqs = vec![0u64; devices];
    let mut batteries: Vec<f64> = (0..devices)
        .map(|_| 55.0 + rng.uniform_range(0.0, 45.0))
        .collect();
    for round in 0..rounds {
        for i in 0..devices {
            let imei = i as u64 + 1;
            let at = step(&mut rng, &mut t, 200, 4000);
            let roll = rng.uniform();
            let req = if roll < 0.35 {
                batteries[i] = (batteries[i] - rng.uniform_range(0.0, 1.5)).max(1.0);
                WireRequest::StateUpdate {
                    imei,
                    battery_pct: batteries[i],
                    cs_energy_j: rng.uniform_range(0.0, 2.0),
                }
            } else if roll < 0.55 {
                WireRequest::Comm { imei }
            } else if roll < 0.8 {
                let p = device_position(&mut rng);
                positions[i] = p;
                WireRequest::Observe {
                    imei,
                    lat_deg: p.lat_deg(),
                    lon_deg: p.lon_deg(),
                    cell: network.serving_cell(p).map(|c: CellId| c.0 as u64),
                }
            } else {
                seqs[i] += 1;
                // Low request ids round-robin: some hit live requests and
                // are accepted, some draw typed rejections — both paths
                // must be byte-identical, so both are worth recording.
                let request = (round as u64 * 3 + i as u64) % 8;
                WireRequest::SubmitBatch {
                    imei,
                    seq: seqs[i],
                    attempt: 1,
                    readings: vec![WireReading {
                        request,
                        sensor: Sensor::Barometer,
                        value: 990.0 + rng.uniform_range(0.0, 40.0),
                        taken_at_us: at.as_micros(),
                        lat_deg: positions[i].lat_deg(),
                        lon_deg: positions[i].lon_deg(),
                    }],
                }
            };
            events.push(TraceEvent { at, req });
        }
        let at = step(&mut rng, &mut t, 100, 500);
        events.push(TraceEvent {
            at,
            req: WireRequest::DrainOutbox,
        });
    }

    let horizon = t.saturating_add(SimDuration::from_mins(5));
    EventTrace { events, horizon }
}

/// Advances the scheduler through every wakeup due at or before `t` —
/// the sim-side mirror of `ServeEngine::advance_to` (rule 1).
fn advance(server: &mut SenseAidServer, cursor: &mut SimTime, t: SimTime) {
    while let Some(wakeup) = server.next_wakeup(*cursor) {
        if wakeup > t {
            break;
        }
        let at = wakeup.max(*cursor);
        let _ = server.poll(at);
        *cursor = at;
    }
    if t > *cursor {
        *cursor = t;
    }
}

/// Applies one trace op directly, restating the engine's serving
/// semantics (see module docs): lease renewal first on device-originated
/// ops, then the op itself, all at the event's timestamp.
fn apply_sim(server: &mut SenseAidServer, req: &WireRequest, now: SimTime) {
    let renew = |server: &mut SenseAidServer, imei: u64| {
        let _ = server.record_device_comm(ImeiHash(imei), now);
    };
    match req {
        // Session-layer traffic (hello/resume/ack) never mutates durable
        // state; a tracked envelope is exactly its inner op.
        WireRequest::Hello { .. }
        | WireRequest::Stats
        | WireRequest::Shutdown
        | WireRequest::Resume { .. }
        | WireRequest::PushAck { .. } => {}
        WireRequest::Tracked { inner, .. } => apply_sim(server, inner, now),
        WireRequest::Register {
            imei,
            energy_budget_j,
            critical_battery_pct,
            battery_pct,
            device_type,
            sensors,
        } => {
            let _ = server.register_device(
                ImeiHash(*imei),
                *energy_budget_j,
                *critical_battery_pct,
                *battery_pct,
                sensors.clone(),
                device_type.clone(),
                now,
            );
        }
        WireRequest::Deregister { imei } => {
            let _ = server.deregister_device(ImeiHash(*imei));
        }
        WireRequest::UpdatePreferences {
            imei,
            energy_budget_j,
            critical_battery_pct,
        } => {
            renew(server, *imei);
            let _ =
                server.update_preferences(ImeiHash(*imei), *energy_budget_j, *critical_battery_pct);
        }
        WireRequest::StateUpdate {
            imei,
            battery_pct,
            cs_energy_j,
        } => {
            renew(server, *imei);
            let _ = server.update_device_state(ImeiHash(*imei), *battery_pct, *cs_energy_j, now);
        }
        WireRequest::Observe {
            imei,
            lat_deg,
            lon_deg,
            cell,
        } => {
            renew(server, *imei);
            let _ = server.observe_device(
                ImeiHash(*imei),
                GeoPoint::new(*lat_deg, *lon_deg),
                cell.map(|c| CellId(c as usize)),
            );
        }
        WireRequest::Comm { imei } => {
            let _ = server.record_device_comm(ImeiHash(*imei), now);
        }
        WireRequest::SubmitBatch {
            imei,
            seq,
            attempt,
            readings,
        } => {
            renew(server, *imei);
            let decoded = decode_readings(readings);
            let _ = server.submit_sensed_batch(ImeiHash(*imei), *seq, *attempt, &decoded, now);
        }
        WireRequest::SubmitTask { cas, spec } => {
            if let Ok(built) = build_task_spec(spec) {
                let _ = server.submit_task_for(CasId(*cas), built, now);
            }
        }
        WireRequest::DrainOutbox => {
            let _ = server.drain_outbox();
        }
    }
}

/// Runs the trace through the sim harness path and digests at the
/// horizon. This is the spec side of the byte-identity comparison.
pub fn run_sim(trace: &EventTrace, shards: usize) -> Vec<u8> {
    let mut server = trace_server(shards);
    let mut cursor = SimTime::ZERO;
    for event in &trace.events {
        advance(&mut server, &mut cursor, event.at);
        apply_sim(&mut server, &event.req, event.at);
    }
    advance(&mut server, &mut cursor, trace.horizon);
    server.durable_digest(trace.horizon)
}

/// Runs the trace through the live serving path — encoded to bytes,
/// carried by a loopback transport, reassembled, decoded and applied by
/// the [`ServeEngine`] under a driver-advanced [`SimClock`] — and
/// digests at the horizon.
///
/// # Panics
///
/// Panics if any leg of the pipeline rejects a frame: the trace is
/// well-formed by construction, so a decode failure here is a protocol
/// bug, which is exactly what the keystone test exists to catch.
pub fn run_live(trace: &EventTrace, shards: usize) -> Vec<u8> {
    let clock = SimClock::new();
    let mut engine = ServeEngine::new(trace_server(shards), Arc::new(clock.clone()));
    let (driver_side, engine_side) = loopback_pair();
    let mut driver = Connection::new(driver_side);
    let mut serving = Connection::new(engine_side);
    let mut scratch = vec![0u8; 16 * 1024];
    const CONN: u64 = 1;

    for event in &trace.events {
        // The driver owns time: the engine's clock reads the event's
        // timestamp when the bytes "arrive", exactly as a wall clock
        // would read the receive instant in live mode.
        clock.advance_to(event.at);
        driver.queue(&encode_request(&event.req));
        driver.flush().expect("loopback accepts whole frames");

        for (kind, payload) in serving
            .pump_reads(&mut scratch)
            .expect("driver bytes reassemble")
        {
            let request = match decode_frame(kind, &payload).expect("driver frames decode") {
                WireFrame::Request(request) => request,
                other => panic!("client sent a non-request frame: {other:?}"),
            };
            let output = engine.handle(CONN, request);
            for (_conn, frame) in output.frames {
                serving.queue(&frame);
            }
            serving.flush().expect("loopback accepts responses");
        }

        // The driver decodes everything the server sent back (responses
        // and assignment pushes); undecodable server output fails the
        // replay.
        for (kind, payload) in driver
            .pump_reads(&mut scratch)
            .expect("server bytes reassemble")
        {
            decode_frame(kind, &payload).expect("server frames decode");
        }
    }

    clock.advance_to(trace.horizon);
    for (_conn, frame) in engine.advance_to(trace.horizon) {
        serving.queue(&frame);
    }
    serving.flush().expect("loopback accepts trailing pushes");
    let _ = driver
        .pump_reads(&mut scratch)
        .expect("trailing pushes reassemble");
    engine.server().durable_digest(trace.horizon)
}

/// The session identity the chaos driver uses for CAS-originated ops
/// (task submission, outbox drains, stats) — traffic that belongs to the
/// application server, not to any device IMEI.
pub const CAS_DRIVER_IDENTITY: u64 = 0xCA50_0000_0000_0001;

/// Everything [`run_live_chaos`] can attest about a run, beyond the
/// digest itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// `durable_digest` at the trace horizon, with every trace op
    /// acknowledged — the value that must equal [`run_sim`]'s.
    pub digest: Vec<u8>,
    /// Trace ops driven to acknowledgement.
    pub ops: u64,
    /// Times the driver had to tear the link down and redial.
    pub reconnects: u64,
    /// Retransmitted envelopes the engine answered from its response
    /// cache instead of re-applying (the at-most-once receipts).
    pub requests_deduped: u64,
    /// Ledgered pushes the engine replayed across resumes.
    pub pushes_replayed: u64,
    /// Assignment pushes the client accepted exactly once.
    pub pushes_delivered: u64,
    /// Replayed copies the client recognised and dropped by sequence
    /// number (≥ what the engine replayed minus redeliveries lost to
    /// later faults).
    pub push_duplicates: u64,
    /// Sequence gaps observed client-side; the exactly-once claim is
    /// precisely that this stays zero.
    pub push_gaps: u64,
    /// Ledger entries still unacked after the final drain; must be zero.
    pub unacked_pushes: u64,
    /// Truthful `Disconnect` pushes the client saw (lease teardown,
    /// ledger overflow).
    pub disconnect_notices: u64,
    /// Faults the plan actually injected, summed over every link.
    pub faults: TransportFaultTally,
}

/// The client half of a session, as the chaos driver tracks it.
struct ClientSession {
    token: u64,
    /// Which link the session was last bound on; a new link means the
    /// next op must `Resume` first.
    bound_conn: ConnId,
    /// Last envelope sequence the server acknowledged.
    req_seq: u64,
    /// Highest contiguous push sequence received (the cumulative ack).
    push_seen: u64,
    delivered: u64,
    dups: u64,
    gaps: u64,
}

/// One dial: a faulted driver-side connection and its clean server-side
/// twin over a loopback pipe.
struct ChaosLink {
    conn: ConnId,
    driver: Connection<FaultingTransport<LoopbackTransport>>,
    serving: Connection<LoopbackTransport>,
}

/// A client that keeps its promises under fire: every trace op is driven
/// to acknowledgement through whatever the fault plan does to the link,
/// using the session layer exactly as a real device-side SDK would —
/// `Hello` once, `Tracked` envelopes with piggybacked push acks, and
/// `Resume` + retransmit after every cut.
struct ChaosDriver {
    clock: SimClock,
    engine: ServeEngine,
    plan: TransportFaultPlan,
    link: Option<ChaosLink>,
    conn_seq: ConnId,
    links_made: u64,
    sessions: HashMap<u64, ClientSession>,
    faults: TransportFaultTally,
    disconnect_notices: u64,
    scratch: Vec<u8>,
}

/// Which session identity an op travels under.
fn op_identity(req: &WireRequest) -> u64 {
    match req {
        WireRequest::Hello { imei }
        | WireRequest::Register { imei, .. }
        | WireRequest::Deregister { imei }
        | WireRequest::UpdatePreferences { imei, .. }
        | WireRequest::StateUpdate { imei, .. }
        | WireRequest::Observe { imei, .. }
        | WireRequest::Comm { imei }
        | WireRequest::SubmitBatch { imei, .. } => *imei,
        WireRequest::SubmitTask { .. }
        | WireRequest::DrainOutbox
        | WireRequest::Stats
        | WireRequest::Shutdown => CAS_DRIVER_IDENTITY,
        WireRequest::Resume { .. } | WireRequest::PushAck { .. } | WireRequest::Tracked { .. } => {
            unreachable!("session-layer requests are not trace ops")
        }
    }
}

/// A link attempt failed; the link has already been torn down.
struct LinkDied;

impl ChaosDriver {
    /// Ensures a link exists (dialing a fresh one if the last was cut)
    /// and returns its conn id.
    fn dial(&mut self) -> ConnId {
        if self.link.is_none() {
            self.conn_seq += 1;
            self.links_made += 1;
            let (driver_side, engine_side) = loopback_pair();
            self.link = Some(ChaosLink {
                conn: self.conn_seq,
                driver: Connection::new(FaultingTransport::new(
                    driver_side,
                    &self.plan,
                    self.conn_seq,
                )),
                serving: Connection::new(engine_side),
            });
        }
        self.link.as_ref().unwrap().conn
    }

    /// Tears the current link down the way a real cut would: tally the
    /// faults, close the pipe, tell the engine the socket died.
    fn drop_link(&mut self) {
        if let Some(mut link) = self.link.take() {
            self.faults.absorb(link.driver.transport_mut().tally());
            link.driver.transport_mut().inner_mut().close();
            self.engine.on_disconnect(link.conn);
        }
    }

    /// Classifies and counts one push. Assignment pushes dedup by
    /// sequence number; anything at or below the cumulative ack is a
    /// replay the client has already consumed.
    fn note_push(&mut self, push: WirePush) {
        match push {
            WirePush::Assignment { seq, device, .. } => {
                let session = self
                    .sessions
                    .get_mut(&device)
                    .expect("assignment pushed to an identity the client never bound");
                if seq <= session.push_seen {
                    session.dups += 1;
                } else {
                    if seq != session.push_seen + 1 {
                        session.gaps += 1;
                    }
                    session.push_seen = seq;
                    session.delivered += 1;
                }
            }
            WirePush::Disconnect { .. } => self.disconnect_notices += 1,
        }
    }

    /// One request/response round trip over the current link, absorbing
    /// stalls, torn writes and delayed reads. Pushes encountered along
    /// the way are consumed. `Err(LinkDied)` means a disconnect fault
    /// latched mid-exchange — the caller decides how to re-establish.
    fn attempt(&mut self, frame: &[u8]) -> Result<WireResponse, LinkDied> {
        self.dial();
        self.link.as_mut().unwrap().driver.queue(frame);
        let mut spins = 0u32;
        loop {
            match self.link.as_mut().unwrap().driver.flush() {
                Ok(true) => break,
                Ok(false) => {
                    spins += 1;
                    assert!(spins < 100_000, "fault plan wedged the send path");
                }
                Err(_) => {
                    self.drop_link();
                    return Err(LinkDied);
                }
            }
        }

        // The server side of the pipe is clean: reassembly and handling
        // cannot fail, only the faulted driver side can.
        let inbound = {
            let link = self.link.as_mut().unwrap();
            link.serving
                .pump_reads(&mut self.scratch)
                .expect("loopback server side never fails")
        };
        for (kind, payload) in inbound {
            let request = match decode_frame(kind, &payload).expect("driver frames decode") {
                WireFrame::Request(request) => request,
                other => panic!("client sent a non-request frame: {other:?}"),
            };
            let conn = self.link.as_ref().unwrap().conn;
            let output = self.engine.handle(conn, request);
            let link = self.link.as_mut().unwrap();
            for (to, frame) in output.frames {
                // Frames addressed to previous incarnations of the link
                // are dropped, exactly as their failed TCP writes would
                // be; the ledger is what makes that loss survivable.
                if to == link.conn {
                    link.serving.queue(&frame);
                }
            }
            link.serving
                .flush()
                .expect("loopback accepts server output");
        }

        let mut spins = 0u32;
        loop {
            let frames = {
                let link = self.link.as_mut().unwrap();
                match link.driver.pump_reads(&mut self.scratch) {
                    Ok(frames) => frames,
                    Err(_) => {
                        self.drop_link();
                        return Err(LinkDied);
                    }
                }
            };
            let mut response = None;
            for (kind, payload) in frames {
                match decode_frame(kind, &payload).expect("server frames decode") {
                    WireFrame::Push(push) => self.note_push(push),
                    WireFrame::Response(resp) => response = Some(resp),
                    WireFrame::Request(_) => panic!("server sent a request frame"),
                }
            }
            if let Some(response) = response {
                return Ok(response);
            }
            // A cut that latched mid-frame surfaces as endless empty
            // pumps (the assembler still holds the torn prefix); the
            // openness check turns that into an honest link death.
            if !self.link.as_ref().unwrap().driver.is_open() {
                self.drop_link();
                return Err(LinkDied);
            }
            spins += 1;
            assert!(
                spins < 100_000,
                "response never surfaced through the faults"
            );
        }
    }

    /// Makes `identity`'s session live on the *current* link: first
    /// contact mints it with `Hello`, a rebuilt link resumes it (and
    /// consumes the replayed backlog), a token the server no longer
    /// recognises (lease teardown) starts over from `Hello`.
    fn ensure_bound(&mut self, identity: u64) {
        loop {
            let current = self.dial();
            match self.sessions.get(&identity) {
                Some(s) if s.bound_conn == current => return,
                None => {
                    let hello = encode_request(&WireRequest::Hello { imei: identity });
                    match self.attempt(&hello) {
                        Ok(WireResponse::SessionBound { token }) => {
                            let conn = self.link.as_ref().unwrap().conn;
                            self.sessions.insert(
                                identity,
                                ClientSession {
                                    token,
                                    bound_conn: conn,
                                    req_seq: 0,
                                    push_seen: 0,
                                    delivered: 0,
                                    dups: 0,
                                    gaps: 0,
                                },
                            );
                            return;
                        }
                        Ok(other) => panic!("hello answered {other:?}"),
                        Err(LinkDied) => continue,
                    }
                }
                Some(s) => {
                    let resume = encode_request(&WireRequest::Resume {
                        token: s.token,
                        push_ack: s.push_seen,
                    });
                    match self.attempt(&resume) {
                        Ok(WireResponse::SessionResumed { .. }) => {
                            let conn = self.link.as_ref().unwrap().conn;
                            self.sessions.get_mut(&identity).unwrap().bound_conn = conn;
                            return;
                        }
                        Ok(WireResponse::Error { code, .. }) if code == ERR_UNKNOWN_SESSION => {
                            self.sessions.remove(&identity);
                            continue;
                        }
                        Ok(other) => panic!("resume answered {other:?}"),
                        Err(LinkDied) => continue,
                    }
                }
            }
        }
    }

    /// Drives one trace op to acknowledgement: bind, envelope, send,
    /// and on every cut — reconnect, resume, retransmit the *same*
    /// sequence number, letting the engine's dedup make it at-most-once.
    fn drive_op(&mut self, req: &WireRequest) -> WireResponse {
        let identity = op_identity(req);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            assert!(attempts < 10_000, "op never reached acknowledgement");
            self.ensure_bound(identity);
            let (token, pending, ack) = {
                let s = &self.sessions[&identity];
                (s.token, s.req_seq + 1, s.push_seen)
            };
            let envelope = encode_request(&WireRequest::Tracked {
                token,
                req_seq: pending,
                push_ack: ack,
                inner: Box::new(req.clone()),
            });
            match self.attempt(&envelope) {
                Ok(WireResponse::Error { code, detail }) if code == ERR_UNKNOWN_SESSION => {
                    let _ = detail;
                    self.sessions.remove(&identity);
                }
                Ok(WireResponse::Error { code, detail }) if code == ERR_BAD_SEQUENCE => {
                    panic!("sequence discipline broke: {detail}")
                }
                Ok(response) => {
                    self.sessions.get_mut(&identity).unwrap().req_seq = pending;
                    return response;
                }
                Err(LinkDied) => {}
            }
        }
    }

    /// Reads the link until it goes quiet, consuming stray pushes (e.g.
    /// a resume's replayed backlog that trailed the last response).
    fn pump_quiet(&mut self) {
        if self.link.is_none() {
            return;
        }
        let mut quiet = 0u32;
        while quiet < 16 {
            let frames = {
                let link = self.link.as_mut().unwrap();
                match link.driver.pump_reads(&mut self.scratch) {
                    Ok(frames) => frames,
                    Err(_) => {
                        self.drop_link();
                        return;
                    }
                }
            };
            if frames.is_empty() {
                if !self.link.as_ref().unwrap().driver.is_open() {
                    self.drop_link();
                    return;
                }
                quiet += 1;
                continue;
            }
            quiet = 0;
            for (kind, payload) in frames {
                match decode_frame(kind, &payload).expect("server frames decode") {
                    WireFrame::Push(push) => self.note_push(push),
                    other => panic!("unsolicited non-push frame: {other:?}"),
                }
            }
        }
    }

    /// Advances to the horizon, then resumes and acks every session
    /// until the engine holds no unacked pushes — the client-side proof
    /// that nothing was dropped.
    fn drain_and_ack(&mut self, horizon: SimTime) {
        self.clock.advance_to(horizon);
        let frames = self.engine.advance_to(horizon);
        if let Some(link) = self.link.as_mut() {
            let mut any = false;
            for (to, frame) in frames {
                if to == link.conn {
                    link.serving.queue(&frame);
                    any = true;
                }
            }
            if any {
                let _ = link.serving.flush();
            }
        }
        let mut passes = 0u32;
        loop {
            self.pump_quiet();
            let identities: Vec<u64> = self.sessions.keys().copied().collect();
            for identity in identities {
                loop {
                    self.ensure_bound(identity);
                    self.pump_quiet();
                    let Some(s) = self.sessions.get(&identity) else {
                        break; // torn down while draining; nothing to ack
                    };
                    let ack = encode_request(&WireRequest::PushAck {
                        token: s.token,
                        push_ack: s.push_seen,
                    });
                    match self.attempt(&ack) {
                        Ok(WireResponse::Ok) => break,
                        Ok(WireResponse::Error { code, .. }) if code == ERR_UNKNOWN_SESSION => {
                            self.sessions.remove(&identity);
                            break;
                        }
                        Ok(other) => panic!("push-ack answered {other:?}"),
                        Err(LinkDied) => continue,
                    }
                }
            }
            if self.engine.unacked_pushes() == 0 {
                break;
            }
            passes += 1;
            assert!(passes < 100, "final drain failed to converge");
        }
    }
}

/// Runs the trace through the live path with `plan`'s faults injected on
/// the client side of the wire, driving every op to acknowledgement
/// through reconnects, resumes and retransmits.
///
/// Because every trace op is acknowledged, the "surviving prefix" here
/// is the *whole trace*: the returned digest must be byte-identical to
/// [`run_sim`]'s. With [`TransportFaultPlan::none`] the exchange
/// degenerates to PR 9's clean single-connection replay (plus the
/// session envelopes, which add zero durable semantics).
///
/// # Panics
///
/// Panics when the protocol breaks its own promises — a sequence gap, an
/// unexpected response shape, or an op that cannot reach
/// acknowledgement — which is exactly what the keystone test exists to
/// catch.
pub fn run_live_chaos(trace: &EventTrace, shards: usize, plan: &TransportFaultPlan) -> ChaosReport {
    let clock = SimClock::new();
    let engine = ServeEngine::new(trace_server(shards), Arc::new(clock.clone()));
    let mut driver = ChaosDriver {
        clock,
        engine,
        plan: plan.clone(),
        link: None,
        conn_seq: 0,
        links_made: 0,
        sessions: HashMap::new(),
        faults: TransportFaultTally::default(),
        disconnect_notices: 0,
        scratch: vec![0u8; 16 * 1024],
    };

    let mut ops = 0u64;
    for event in &trace.events {
        driver.clock.advance_to(event.at);
        driver.drive_op(&event.req);
        ops += 1;
    }
    driver.drain_and_ack(trace.horizon);

    let mut pushes_delivered = 0u64;
    let mut push_duplicates = 0u64;
    let mut push_gaps = 0u64;
    for session in driver.sessions.values() {
        pushes_delivered += session.delivered;
        push_duplicates += session.dups;
        push_gaps += session.gaps;
    }
    if let Some(link) = driver.link.as_mut() {
        let tally = link.driver.transport_mut().tally().clone();
        driver.faults.absorb(&tally);
    }
    let stats = driver.engine.stats();
    ChaosReport {
        digest: driver.engine.server().durable_digest(trace.horizon),
        ops,
        reconnects: driver.links_made.saturating_sub(1),
        requests_deduped: stats.requests_deduped,
        pushes_replayed: stats.pushes_replayed,
        pushes_delivered,
        push_duplicates,
        push_gaps,
        unacked_pushes: driver.engine.unacked_pushes(),
        disconnect_notices: driver.disconnect_notices,
        faults: driver.faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_trace_is_deterministic_and_sorted() {
        let a = record_sample_trace(7, 6, 3);
        let b = record_sample_trace(7, 6, 3);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.horizon >= a.events.last().unwrap().at);
        // Different seeds give different traces.
        assert_ne!(a, record_sample_trace(8, 6, 3));
    }

    #[test]
    fn sim_runner_is_reproducible() {
        let trace = record_sample_trace(11, 5, 2);
        assert_eq!(run_sim(&trace, 2), run_sim(&trace, 2));
    }
}
