//! Figure 10 — number of selected devices per test (Experiment 2).
//!
//! Paper: every framework finds enough participants (≥3), but Sense-Aid
//! selects *exactly* the spatial-density requirement regardless of the
//! sampling period, while Periodic and PCS task every qualified device.

use senseaid_workload::ExperimentGrid;

use crate::chart::series_table;
use crate::framework::FrameworkKind;
use crate::report::SweepTable;

/// Runs the Experiment 2 sweep for all four frameworks.
pub fn sweep(grid: &ExperimentGrid, seed: u64) -> SweepTable {
    SweepTable::run(
        &FrameworkKind::study_set(),
        &grid.points(),
        grid.point_labels(),
        seed,
    )
}

/// Renders Fig 10 on the paper's Experiment 2 grid.
pub fn run(seed: u64) -> String {
    render(&ExperimentGrid::experiment2(), seed)
}

/// Renders Fig 10 on an arbitrary grid.
pub fn render(grid: &ExperimentGrid, seed: u64) -> String {
    let table = sweep(grid, seed);
    let series: Vec<(String, Vec<f64>)> = table
        .frameworks
        .iter()
        .map(|f| {
            (
                f.label(),
                table
                    .reports
                    .iter()
                    .zip(&table.frameworks)
                    .find(|(_, fk)| *fk == f)
                    .map(|(row, _)| row.iter().map(|r| r.avg_participants()).collect())
                    .expect("framework in sweep"),
            )
        })
        .collect();
    let mut out = String::from(
        "=== Figure 10: devices selected per round vs sampling period (density 3) ===\n",
    );
    out.push_str(&series_table(
        "period",
        &table.point_labels,
        &series,
        "devices/round",
    ));
    out.push_str(
        "\nshape check: Sense-Aid rows sit at exactly 3.0; baselines at the full qualified count\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_sim::SimDuration;
    use senseaid_workload::ScenarioConfig;

    fn small_grid() -> ExperimentGrid {
        let base = match ExperimentGrid::experiment2() {
            ExperimentGrid::SamplingPeriod { base, .. } => ScenarioConfig {
                test_duration: SimDuration::from_mins(30),
                group_size: 14,
                ..base
            },
            _ => unreachable!(),
        };
        ExperimentGrid::SamplingPeriod {
            base,
            periods: vec![SimDuration::from_mins(5), SimDuration::from_mins(10)],
        }
    }

    #[test]
    fn senseaid_selects_exactly_density_baselines_select_all() {
        let table = sweep(&small_grid(), 8);
        for point in 0..2 {
            let sa = table.report(FrameworkKind::SenseAidComplete, point);
            assert!(
                (sa.avg_participants() - 3.0).abs() < 1e-9,
                "SA must select exactly 3, got {}",
                sa.avg_participants()
            );
            let periodic = table.report(FrameworkKind::Periodic, point);
            assert!(
                periodic.avg_participants() > 3.5,
                "Periodic tasks all qualified devices, got {}",
                periodic.avg_participants()
            );
            assert!(
                (periodic.avg_participants() - periodic.avg_qualified()).abs() < 1e-9,
                "baselines select everyone qualified"
            );
        }
    }

    #[test]
    fn every_framework_meets_the_density() {
        let table = sweep(&small_grid(), 8);
        for f in FrameworkKind::study_set() {
            for point in 0..2 {
                let r = table.report(f, point);
                assert!(
                    r.rounds_fulfilled > 0,
                    "{f} fulfilled no rounds at point {point}"
                );
            }
        }
    }
}
