//! Offline stand-in for `crossbeam`, covering the `channel` subset the
//! workspace uses: unbounded multi-producer multi-consumer channels with
//! disconnect detection on both ends.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> std::error::Error for SendError<T> where T: fmt::Debug {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty and at
        /// least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Dequeues a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..250u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }
    }
}
