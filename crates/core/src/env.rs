//! One parser for every `SENSEAID_*` environment override.
//!
//! The workspace grew three scattered env lookups — `SENSEAID_WORKERS`
//! (bench cell fan-out), `SENSEAID_SHARD_WORKERS` (intra-run poll pool)
//! and `SENSEAID_FAULT_SEED` (chaos suite) — each with its own ad-hoc
//! `parse().ok().unwrap_or(default)`. Silent fallback is the worst
//! failure mode for an override: a typo (`SENSEAID_SHARD_WORKERS=eight`)
//! quietly runs the serial path and the CI matrix stops testing what its
//! name says it tests. This module replaces all of them: a malformed
//! value is an error that names the variable and the offending value;
//! only an *unset* variable means "use the default".

use std::fmt;
use std::str::FromStr;

/// A set environment variable whose value does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvVarError {
    /// The environment variable at fault.
    pub name: &'static str,
    /// The value it was set to.
    pub value: String,
    /// What a well-formed value looks like.
    pub expected: &'static str,
}

impl fmt::Display for EnvVarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: invalid value {:?} (expected {}); unset the variable to use the default",
            self.name, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvVarError {}

/// Parses an explicit value for `name`, `None` meaning unset.
///
/// This is the pure core of [`parsed_env`], split out so callers (and
/// tests) can exercise the rules without mutating process environment —
/// `std::env::set_var` races against parallel tests.
///
/// # Errors
///
/// [`EnvVarError`] naming the variable when `value` is set but does not
/// parse as `T`.
pub fn parse_env_value<T: FromStr>(
    name: &'static str,
    value: Option<&str>,
    expected: &'static str,
) -> Result<Option<T>, EnvVarError> {
    match value {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| EnvVarError {
            name,
            value: raw.to_owned(),
            expected,
        }),
    }
}

/// Reads and parses the environment variable `name`.
///
/// Returns `Ok(None)` when unset (callers apply their default), the
/// parsed value when set and well-formed.
///
/// # Errors
///
/// [`EnvVarError`] when set but malformed — including set to a value
/// that is not valid Unicode.
pub fn parsed_env<T: FromStr>(
    name: &'static str,
    expected: &'static str,
) -> Result<Option<T>, EnvVarError> {
    match std::env::var(name) {
        Ok(raw) => parse_env_value(name, Some(&raw), expected),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(EnvVarError {
            name,
            value: raw.to_string_lossy().into_owned(),
            expected,
        }),
    }
}

/// Parses an explicit value for `name` as a positive (non-zero) count.
///
/// # Errors
///
/// [`EnvVarError`] when set to anything but a positive integer — zero is
/// rejected too: every consumer is a worker count where `0` is a typo'd
/// request for "no workers", not a meaningful configuration.
pub fn parse_positive_value(
    name: &'static str,
    value: Option<&str>,
) -> Result<Option<usize>, EnvVarError> {
    match parse_env_value::<usize>(name, value, "a positive integer")? {
        Some(0) => Err(EnvVarError {
            name,
            value: "0".to_owned(),
            expected: "a positive integer",
        }),
        other => Ok(other),
    }
}

/// Reads the environment variable `name` as a positive (non-zero) count.
///
/// # Errors
///
/// [`EnvVarError`] when set but not a positive integer.
pub fn positive_env(name: &'static str) -> Result<Option<usize>, EnvVarError> {
    match std::env::var(name) {
        Ok(raw) => parse_positive_value(name, Some(&raw)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(EnvVarError {
            name,
            value: raw.to_string_lossy().into_owned(),
            expected: "a positive integer",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_means_default() {
        assert_eq!(
            parse_env_value::<u64>("SENSEAID_TEST", None, "a seed"),
            Ok(None)
        );
        assert_eq!(parse_positive_value("SENSEAID_TEST", None), Ok(None));
    }

    #[test]
    fn well_formed_values_parse() {
        assert_eq!(
            parse_env_value::<u64>("SENSEAID_TEST", Some("42"), "a seed"),
            Ok(Some(42))
        );
        assert_eq!(
            parse_positive_value("SENSEAID_TEST", Some("8")),
            Ok(Some(8))
        );
    }

    #[test]
    fn malformed_values_error_and_name_the_variable() {
        let err = parse_env_value::<u64>("SENSEAID_FAULT_SEED", Some("not-a-number"), "a seed")
            .unwrap_err();
        assert_eq!(err.name, "SENSEAID_FAULT_SEED");
        let rendered = err.to_string();
        assert!(rendered.contains("SENSEAID_FAULT_SEED"), "{rendered}");
        assert!(rendered.contains("not-a-number"), "{rendered}");
    }

    #[test]
    fn zero_is_rejected_as_a_worker_count() {
        let err = parse_positive_value("SENSEAID_SHARD_WORKERS", Some("0")).unwrap_err();
        assert_eq!(err.name, "SENSEAID_SHARD_WORKERS");
        assert!(err.to_string().contains("positive integer"));
        // Negative numbers do not parse as usize at all.
        assert!(parse_positive_value("SENSEAID_SHARD_WORKERS", Some("-3")).is_err());
    }
}
