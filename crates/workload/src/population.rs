//! The synthetic 60-student study population.
//!
//! The paper ran 3 experiments with 3 device sets of 20 students each, all
//! moving around the same campus (§5.1). [`StudyPopulation::generate`]
//! reproduces that: heterogeneous handset models, starting battery levels,
//! app-usage intensities, campus mobility, and per-user energy budgets
//! drawn from the Fig 1 survey.

use serde::{Deserialize, Serialize};

use senseaid_device::{Device, DeviceId, DeviceProfile, TrafficConfig, UserPreferences};
use senseaid_geo::CampusMap;
use senseaid_sim::SimRng;

use crate::survey::SurveyDistribution;

/// Knobs for population generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of participants.
    pub size: usize,
    /// Starting battery level range, percent.
    pub battery_range_pct: (f64, f64),
    /// Fraction of devices that are the full-sensor study handset.
    pub galaxy_s4_share: f64,
    /// Fraction that are iPhone 6-likes (barometer, fewer env sensors).
    pub iphone6_share: f64,
    /// Fraction that are LG G2-likes (no barometer).
    pub lg_g2_share: f64,
    // Remainder: budget phones (no barometer).
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 60,
            battery_range_pct: (35.0, 100.0),
            galaxy_s4_share: 0.70,
            iphone6_share: 0.15,
            lg_g2_share: 0.10,
        }
    }
}

impl PopulationConfig {
    /// A population where every handset carries a barometer (used when an
    /// experiment needs all N devices to be qualifiable).
    pub fn all_barometer(size: usize) -> Self {
        PopulationConfig {
            size,
            galaxy_s4_share: 0.85,
            iphone6_share: 0.15,
            lg_g2_share: 0.0,
            ..PopulationConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if shares are negative or sum above 1, or the battery range
    /// is inverted.
    pub fn validate(&self) {
        let sum = self.galaxy_s4_share + self.iphone6_share + self.lg_g2_share;
        assert!(
            self.galaxy_s4_share >= 0.0
                && self.iphone6_share >= 0.0
                && self.lg_g2_share >= 0.0
                && sum <= 1.0 + 1e-9,
            "device shares must be non-negative and sum to at most 1 (got {sum})"
        );
        assert!(
            self.battery_range_pct.0 <= self.battery_range_pct.1
                && self.battery_range_pct.0 >= 0.0
                && self.battery_range_pct.1 <= 100.0,
            "bad battery range {:?}",
            self.battery_range_pct
        );
        assert!(self.size > 0, "population must be non-empty");
    }
}

/// A generated population of devices.
#[derive(Debug)]
pub struct StudyPopulation {
    devices: Vec<Device>,
}

impl StudyPopulation {
    /// Generates the population deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PopulationConfig::validate`].
    pub fn generate(seed: u64, map: &CampusMap, config: PopulationConfig) -> Self {
        config.validate();
        let survey = SurveyDistribution::paper();
        let mut master = SimRng::from_seed_label(seed, "population");
        let mut devices = Vec::with_capacity(config.size);
        for i in 0..config.size {
            let mut rng = master.derive(&format!("user-{i}"));
            let roll = rng.uniform();
            let profile = if roll < config.galaxy_s4_share {
                DeviceProfile::galaxy_s4()
            } else if roll < config.galaxy_s4_share + config.iphone6_share {
                DeviceProfile::iphone6()
            } else if roll < config.galaxy_s4_share + config.iphone6_share + config.lg_g2_share {
                DeviceProfile::lg_g2()
            } else {
                DeviceProfile::budget_phone()
            };
            let battery = rng.uniform_range(
                config.battery_range_pct.0,
                config.battery_range_pct.1 + f64::EPSILON,
            );
            let budget_pct = survey.sample_budget_pct(&mut rng);
            let battery_capacity = profile.battery_capacity_j;
            let traffic = match rng.uniform_usize(0, 3) {
                0 => TrafficConfig::light(),
                1 => TrafficConfig::default(),
                _ => TrafficConfig::heavy(),
            };
            let prefs = UserPreferences {
                energy_budget_j: battery_capacity * budget_pct / 100.0,
                critical_battery_pct: rng.uniform_range(5.0, 20.0),
                participating: true,
            };
            let device = Device::builder(DeviceId(i as u32 + 1), profile)
                .campus_mobility(map)
                .battery_level(battery)
                .prefs(prefs)
                .traffic(traffic)
                .build(rng);
            devices.push(device);
        }
        StudyPopulation { devices }
    }

    /// The devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable access to the devices.
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Consumes the population, returning the devices.
    pub fn into_devices(self) -> Vec<Device> {
        self.devices
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the population is empty (never, post-generation).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_device::Sensor;
    use senseaid_sim::SimTime;

    #[test]
    fn generates_requested_size_with_unique_ids() {
        let map = CampusMap::standard();
        let pop = StudyPopulation::generate(1, &map, PopulationConfig::default());
        assert_eq!(pop.len(), 60);
        let ids: std::collections::BTreeSet<_> = pop.devices().iter().map(|d| d.id()).collect();
        assert_eq!(ids.len(), 60, "ids must be unique");
        let imeis: std::collections::BTreeSet<_> =
            pop.devices().iter().map(|d| d.imei_hash()).collect();
        assert_eq!(imeis.len(), 60, "IMEI hashes must be unique");
    }

    #[test]
    fn population_is_heterogeneous() {
        let map = CampusMap::standard();
        let pop = StudyPopulation::generate(2, &map, PopulationConfig::default());
        let types: std::collections::BTreeSet<String> = pop
            .devices()
            .iter()
            .map(|d| d.profile().device_type.clone())
            .collect();
        assert!(types.len() >= 3, "expect several device models: {types:?}");
        let batteries: Vec<f64> = pop
            .devices()
            .iter()
            .map(|d| d.battery_level_pct())
            .collect();
        let min = batteries.iter().copied().fold(f64::MAX, f64::min);
        let max = batteries.iter().copied().fold(f64::MIN, f64::max);
        assert!(max - min > 20.0, "battery levels must vary ({min}..{max})");
        let budgets: std::collections::BTreeSet<u64> = pop
            .devices()
            .iter()
            .map(|d| d.prefs().energy_budget_j as u64)
            .collect();
        assert!(budgets.len() >= 3, "budgets drawn from the survey vary");
    }

    #[test]
    fn most_devices_carry_a_barometer() {
        let map = CampusMap::standard();
        let pop = StudyPopulation::generate(3, &map, PopulationConfig::default());
        let with_baro = pop
            .devices()
            .iter()
            .filter(|d| d.profile().has_sensor(Sensor::Barometer))
            .count();
        assert!(
            (40..60).contains(&with_baro),
            "~85 % of 60 should have barometers, got {with_baro}"
        );
        let all = StudyPopulation::generate(3, &map, PopulationConfig::all_barometer(20));
        assert!(all
            .devices()
            .iter()
            .all(|d| d.profile().has_sensor(Sensor::Barometer)));
    }

    #[test]
    fn generation_is_deterministic() {
        let map = CampusMap::standard();
        let a = StudyPopulation::generate(9, &map, PopulationConfig::default());
        let b = StudyPopulation::generate(9, &map, PopulationConfig::default());
        for (da, db) in a.devices().iter().zip(b.devices()) {
            assert_eq!(da.imei_hash(), db.imei_hash());
            assert_eq!(da.battery_level_pct(), db.battery_level_pct());
            assert_eq!(da.profile().device_type, db.profile().device_type);
        }
        // And different seeds give different populations.
        let c = StudyPopulation::generate(10, &map, PopulationConfig::default());
        let same = a
            .devices()
            .iter()
            .zip(c.devices())
            .filter(|(x, y)| x.battery_level_pct() == y.battery_level_pct())
            .count();
        assert!(
            same < 10,
            "different seeds should differ (got {same} identical)"
        );
    }

    #[test]
    fn devices_start_on_campus() {
        let map = CampusMap::standard();
        let mut pop = StudyPopulation::generate(4, &map, PopulationConfig::default());
        for d in pop.devices_mut() {
            assert!(map.in_bounds(d.position(SimTime::ZERO)));
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn rejects_overfull_shares() {
        let map = CampusMap::standard();
        let _ = StudyPopulation::generate(
            1,
            &map,
            PopulationConfig {
                galaxy_s4_share: 0.9,
                iphone6_share: 0.3,
                ..PopulationConfig::default()
            },
        );
    }
}
