//! The unified metrics registry: one snapshotable, serializable view over
//! the counters and histograms scattered across the stack.
//!
//! [`RegistrySnapshot`] absorbs `simcore`'s [`MetricsRegistry`] wholesale,
//! plus any `(name, value)` counter source (`ServerStats`, per-client drop
//! stats) and raw sample sets. Keys are namespaced by the caller
//! (`server.`, `client.`, `harness.`); iteration order is the `BTreeMap`
//! order, so [`RegistrySnapshot::to_json`] is deterministic.

use std::collections::BTreeMap;

use senseaid_sim::{Histogram, MetricsRegistry};

use crate::export::{esc, fmt_f64};

/// A fixed summary of one distribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum sample (0 when empty).
    pub min: f64,
    /// Maximum sample (0 when empty).
    pub max: f64,
    /// Median by nearest rank (0 when empty).
    pub p50: f64,
    /// 95th percentile by nearest rank (0 when empty).
    pub p95: f64,
}

impl HistogramSummary {
    /// Summarizes a `simcore` histogram.
    pub fn from_histogram(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count() as u64,
            sum: h.sum(),
            mean: h.mean().unwrap_or(0.0),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            p50: h.percentile(0.5).unwrap_or(0.0),
            p95: h.percentile(0.95).unwrap_or(0.0),
        }
    }

    /// Summarizes a raw sample set (non-finite samples ignored, matching
    /// [`Histogram::record`]).
    pub fn from_samples(samples: &[f64]) -> HistogramSummary {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        HistogramSummary::from_histogram(&h)
    }
}

/// A point-in-time view of every metric the run produced.
///
/// # Example
///
/// ```
/// use senseaid_sim::MetricsRegistry;
/// use senseaid_telemetry::RegistrySnapshot;
///
/// let mut m = MetricsRegistry::new();
/// m.counter("uploads").add(3);
/// m.histogram("delay_s").record(1.5);
///
/// let mut snap = RegistrySnapshot::new();
/// snap.absorb_metrics("harness.", &m);
/// snap.absorb_counters("server.", [("requests_assigned", 7u64)]);
/// assert_eq!(snap.counter("harness.uploads"), Some(3));
/// assert_eq!(snap.counter("server.requests_assigned"), Some(7));
/// assert!(snap.to_json().contains("\"harness.delay_s\""));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl RegistrySnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> RegistrySnapshot {
        RegistrySnapshot::default()
    }

    /// Sets (or overwrites) one counter.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Adds to one counter, creating it at zero first.
    pub fn add_counter(&mut self, name: impl Into<String>, value: u64) {
        *self.counters.entry(name.into()).or_default() += value;
    }

    /// Sets (or overwrites) one histogram summary.
    pub fn set_histogram(&mut self, name: impl Into<String>, summary: HistogramSummary) {
        self.histograms.insert(name.into(), summary);
    }

    /// Absorbs a whole `simcore` registry under `prefix`.
    pub fn absorb_metrics(&mut self, prefix: &str, registry: &MetricsRegistry) {
        for (name, c) in registry.counters() {
            self.set_counter(format!("{prefix}{name}"), c.value());
        }
        for (name, h) in registry.histograms() {
            self.set_histogram(
                format!("{prefix}{name}"),
                HistogramSummary::from_histogram(h),
            );
        }
    }

    /// Absorbs `(name, value)` counter pairs under `prefix`; repeated names
    /// accumulate, so per-client stats can be folded in directly.
    pub fn absorb_counters<'a>(
        &mut self,
        prefix: &str,
        counters: impl IntoIterator<Item = (&'a str, u64)>,
    ) {
        for (name, value) in counters {
            self.add_counter(format!("{prefix}{name}"), value);
        }
    }

    /// Reads one counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads one histogram summary.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// `(name, value)` counter pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// `(name, summary)` histogram pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", esc(name), value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                esc(name),
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.mean),
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(h.p50),
                fmt_f64(h.p95),
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_metrics_registry_under_prefix() {
        let mut m = MetricsRegistry::new();
        m.counter("uploads").add(2);
        m.histogram("delay").record(1.0);
        m.histogram("delay").record(3.0);
        let mut snap = RegistrySnapshot::new();
        snap.absorb_metrics("h.", &m);
        assert_eq!(snap.counter("h.uploads"), Some(2));
        let d = snap.histogram("h.delay").unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 4.0);
        assert_eq!(d.p95, 3.0);
    }

    #[test]
    fn repeated_counter_names_accumulate() {
        let mut snap = RegistrySnapshot::new();
        snap.absorb_counters("client.", [("dropped", 2u64)]);
        snap.absorb_counters("client.", [("dropped", 3u64)]);
        assert_eq!(snap.counter("client.dropped"), Some(5));
    }

    #[test]
    fn json_is_name_ordered_and_stable() {
        let mut snap = RegistrySnapshot::new();
        snap.set_counter("z", 1);
        snap.set_counter("a", 2);
        snap.set_histogram("d", HistogramSummary::from_samples(&[2.0]));
        let json = snap.to_json();
        assert!(json.find("\"a\":2").unwrap() < json.find("\"z\":1").unwrap());
        assert_eq!(json, snap.clone().to_json());
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = HistogramSummary::from_samples(&[]);
        assert_eq!(s, HistogramSummary::default());
    }
}
