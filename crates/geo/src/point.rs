//! WGS-84 points and metre distances.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A distance in metres.
///
/// A bare `f64` newtype: the workspace passes distances across crate
/// boundaries often enough that the unit deserves a type.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Meters(pub f64);

impl Meters {
    /// The distance as a raw `f64` of metres.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2}km", self.0 / 1000.0)
        } else {
            write!(f, "{:.1}m", self.0)
        }
    }
}

/// A WGS-84 latitude/longitude pair in degrees.
///
/// # Example
///
/// ```
/// use senseaid_geo::GeoPoint;
///
/// let a = GeoPoint::new(40.4284, -86.9138); // Purdue bell tower-ish
/// let b = a.offset_by_meters(1000.0, 0.0);
/// let d = a.distance_to(b);
/// assert!((d.value() - 1000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside `[-90, 90]`, longitude is outside
    /// `[-180, 180]`, or either is non-finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            lat_deg.is_finite() && (-90.0..=90.0).contains(&lat_deg),
            "latitude {lat_deg} outside [-90, 90]"
        );
        assert!(
            lon_deg.is_finite() && (-180.0..=180.0).contains(&lon_deg),
            "longitude {lon_deg} outside [-180, 180]"
        );
        GeoPoint { lat_deg, lon_deg }
    }

    /// Latitude in degrees.
    pub fn lat_deg(self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon_deg(self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance via the haversine formula.
    ///
    /// Exact enough for any campus- or city-scale region; used as the
    /// reference implementation in tests.
    pub fn haversine_distance_to(self, other: GeoPoint) -> Meters {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        Meters(EARTH_RADIUS_M * c)
    }

    /// Fast equirectangular-projection distance.
    ///
    /// Within ~0.1 % of haversine for spans under ~50 km, which covers every
    /// region in the paper's evaluation (max radius 1 km). This is the
    /// distance the rest of the workspace uses.
    pub fn distance_to(self, other: GeoPoint) -> Meters {
        let mean_lat = ((self.lat_deg + other.lat_deg) / 2.0).to_radians();
        let dx = (other.lon_deg - self.lon_deg).to_radians() * mean_lat.cos();
        let dy = (other.lat_deg - self.lat_deg).to_radians();
        Meters(EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt())
    }

    /// Returns the point `north_m` metres north and `east_m` metres east of
    /// `self` (negative values go south/west), using the local tangent
    /// plane. Accurate at campus scale.
    ///
    /// # Panics
    ///
    /// Panics if the offset would push latitude off the pole.
    pub fn offset_by_meters(self, north_m: f64, east_m: f64) -> GeoPoint {
        let dlat = (north_m / EARTH_RADIUS_M).to_degrees();
        let dlon = (east_m / (EARTH_RADIUS_M * self.lat_deg.to_radians().cos())).to_degrees();
        GeoPoint::new(self.lat_deg + dlat, self.lon_deg + dlon)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1) in
    /// the local tangent plane. `t` outside `[0, 1]` extrapolates.
    pub fn lerp(self, other: GeoPoint, t: f64) -> GeoPoint {
        GeoPoint::new(
            self.lat_deg + (other.lat_deg - self.lat_deg) * t,
            self.lon_deg + (other.lon_deg - self.lon_deg) * t,
        )
    }

    /// The local-plane bearing-free displacement from `self` to `other` as
    /// `(north_m, east_m)`.
    pub fn displacement_to(self, other: GeoPoint) -> (f64, f64) {
        let mean_lat = ((self.lat_deg + other.lat_deg) / 2.0).to_radians();
        let north = (other.lat_deg - self.lat_deg).to_radians() * EARTH_RADIUS_M;
        let east = (other.lon_deg - self.lon_deg).to_radians() * EARTH_RADIUS_M * mean_lat.cos();
        (north, east)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PURDUE: GeoPoint = GeoPoint {
        lat_deg: 40.4284,
        lon_deg: -86.9138,
    };

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(PURDUE.distance_to(PURDUE).value(), 0.0);
        assert_eq!(PURDUE.haversine_distance_to(PURDUE).value(), 0.0);
    }

    #[test]
    fn offset_round_trips_distance() {
        for (n, e) in [
            (100.0, 0.0),
            (0.0, 250.0),
            (-300.0, 400.0),
            (1000.0, -1000.0),
        ] {
            let p = PURDUE.offset_by_meters(n, e);
            let expect = (n * n + e * e).sqrt();
            let got = PURDUE.distance_to(p).value();
            assert!(
                (got - expect).abs() < expect.max(1.0) * 0.002,
                "offset ({n},{e}): got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn equirectangular_matches_haversine_at_campus_scale() {
        let b = PURDUE.offset_by_meters(900.0, -1200.0);
        let fast = PURDUE.distance_to(b).value();
        let exact = PURDUE.haversine_distance_to(b).value();
        assert!((fast - exact).abs() / exact < 1e-3);
    }

    #[test]
    fn displacement_inverts_offset() {
        let p = PURDUE.offset_by_meters(321.0, -654.0);
        let (n, e) = PURDUE.displacement_to(p);
        assert!((n - 321.0).abs() < 0.5, "north {n}");
        assert!((e + 654.0).abs() < 0.5, "east {e}");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let b = PURDUE.offset_by_meters(1000.0, 0.0);
        assert_eq!(PURDUE.lerp(b, 0.0), PURDUE);
        assert_eq!(PURDUE.lerp(b, 1.0), b);
        let mid = PURDUE.lerp(b, 0.5);
        let d = PURDUE.distance_to(mid).value();
        assert!((d - 500.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_bad_latitude() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_bad_longitude() {
        let _ = GeoPoint::new(0.0, 181.0);
    }

    #[test]
    fn meters_display() {
        assert_eq!(Meters(43.21).to_string(), "43.2m");
        assert_eq!(Meters(1500.0).to_string(), "1.50km");
    }

    #[test]
    fn known_distance_sanity() {
        // Chicago to Indianapolis is roughly 265 km great-circle.
        let chi = GeoPoint::new(41.8781, -87.6298);
        let ind = GeoPoint::new(39.7684, -86.1581);
        let d = chi.haversine_distance_to(ind).value();
        assert!((d - 265_000.0).abs() < 10_000.0, "got {d}");
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            n1 in -2000.0..2000.0f64, e1 in -2000.0..2000.0f64,
            n2 in -2000.0..2000.0f64, e2 in -2000.0..2000.0f64,
        ) {
            let a = PURDUE.offset_by_meters(n1, e1);
            let b = PURDUE.offset_by_meters(n2, e2);
            let ab = a.distance_to(b).value();
            let ba = b.distance_to(a).value();
            prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab));
        }

        #[test]
        fn triangle_inequality_holds(
            n1 in -2000.0..2000.0f64, e1 in -2000.0..2000.0f64,
            n2 in -2000.0..2000.0f64, e2 in -2000.0..2000.0f64,
            n3 in -2000.0..2000.0f64, e3 in -2000.0..2000.0f64,
        ) {
            let a = PURDUE.offset_by_meters(n1, e1);
            let b = PURDUE.offset_by_meters(n2, e2);
            let c = PURDUE.offset_by_meters(n3, e3);
            let ab = a.distance_to(b).value();
            let bc = b.distance_to(c).value();
            let ac = a.distance_to(c).value();
            // Allow a hair of slack for the projection approximation.
            prop_assert!(ac <= ab + bc + 0.01);
        }

        #[test]
        fn haversine_close_to_fast_path(
            n in -5000.0..5000.0f64, e in -5000.0..5000.0f64,
        ) {
            let b = PURDUE.offset_by_meters(n, e);
            let fast = PURDUE.distance_to(b).value();
            let exact = PURDUE.haversine_distance_to(b).value();
            prop_assert!((fast - exact).abs() <= exact.max(1.0) * 2e-3);
        }
    }
}
