//! Telemetry guarantees: recording never perturbs the simulation, the
//! span stream is balanced and causally linked, and the JSONL export is
//! byte-identical for a fixed seed at any worker count.

use senseaid::bench::{
    map_cells, run_scenario, run_scenario_with, run_trace, FrameworkKind, HarnessOptions,
};
use senseaid::cellnet::FaultPlan;
use senseaid::geo::NamedLocation;
use senseaid::sim::SimDuration;
use senseaid::telemetry::{check_balanced, Event, SpanId, Telemetry};
use senseaid::workload::ScenarioConfig;

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(30),
        sampling_period: SimDuration::from_mins(10),
        spatial_density: 2,
        area_radius_m: 800.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 10,
    }
}

fn lossy_options(tel: Telemetry) -> HarnessOptions {
    HarnessOptions {
        fault_plan: Some(FaultPlan::lossy(7, 0.25)),
        telemetry: tel,
        ..HarnessOptions::default()
    }
}

/// Recording telemetry must not change a single byte of the result — the
/// instrumentation draws no randomness and takes no different branches.
#[test]
fn recording_never_changes_the_study() {
    for seed in [3u64, 42] {
        let silent = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            seed,
            lossy_options(Telemetry::off()),
        );
        let traced = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            seed,
            lossy_options(Telemetry::recording()),
        );
        assert_eq!(silent, traced, "seed {seed}");
        // And the fault-free path, including the plain entry point.
        let plain = run_scenario(FrameworkKind::SenseAidComplete, scenario(), seed);
        let traced = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario(),
            seed,
            HarnessOptions {
                telemetry: Telemetry::recording(),
                ..HarnessOptions::default()
            },
        );
        assert_eq!(plain, traced, "fault-free, seed {seed}");
    }
}

/// A full chaos run produces a balanced stream (every span closed, every
/// parent open for its children's lifetime) carrying all the advertised
/// span families.
#[test]
fn chaos_run_stream_is_balanced_and_complete() {
    let tel = Telemetry::recording();
    run_scenario_with(
        FrameworkKind::SenseAidComplete,
        scenario(),
        42,
        lossy_options(tel.clone()),
    );
    let events = tel.events();
    assert_eq!(check_balanced(&events), Ok(()));
    for family in [
        "request",
        "selection",
        "tasking",
        "selector.select",
        "envelope",
        "envelope.retry",
        "envelope.ack",
        "poll",
        "wakeup.armed",
        "IDLE",
        "SHORT_DRX",
        "TRANSFER",
        "fault.lost",
    ] {
        assert!(
            events.iter().any(|e| e.name() == Some(family)),
            "missing span family {family:?}"
        );
    }
    // Causality: every selection instant is parented to a request span,
    // and at least one envelope hangs off a tasking instant.
    let parent_name = |id: SpanId| {
        events
            .iter()
            .find(|e| match e {
                Event::Enter { id: eid, .. } | Event::Instant { id: eid, .. } => *eid == id,
                _ => false,
            })
            .and_then(|e| e.name().map(str::to_owned))
    };
    for ev in &events {
        if let Event::Instant { name, parent, .. } = ev {
            if name == "selection" {
                assert_eq!(parent_name(*parent).as_deref(), Some("request"));
            }
        }
    }
    let linked_envelope = events.iter().any(|e| match e {
        Event::Enter { name, parent, .. } if name == "envelope" => {
            parent_name(*parent).as_deref() == Some("tasking")
        }
        _ => false,
    });
    assert!(linked_envelope, "no envelope span parented to a tasking");
    // The final registry snapshot is present and carries all three books.
    let snapshot = events
        .iter()
        .rev()
        .find_map(|e| match e {
            Event::Stats { snapshot, .. } => Some(snapshot),
            _ => None,
        })
        .expect("end-of-run registry snapshot");
    for counter in [
        "server.requests_assigned",
        "client.batches_sent",
        "harness.uploads",
    ] {
        assert!(
            snapshot.counter(counter).is_some(),
            "snapshot missing {counter}"
        );
    }
    assert!(snapshot.histogram("harness.delivery_delay_s").is_some());
}

/// The deterministic export: for a fixed seed the JSONL is byte-identical
/// no matter how many workers the surrounding harness uses, and across
/// repeated runs. Worker counts 1/2/8 cover serial, contended, and
/// over-subscribed pools.
#[test]
fn trace_jsonl_is_byte_identical_across_worker_counts() {
    let run = |workers: usize| {
        map_cells(
            vec![("fig06", 42u64), ("fig09", 42)],
            workers,
            |_, (n, s)| {
                let t = run_trace(n, s).expect("traceable");
                (t.jsonl, t.chrome_json)
            },
        )
    };
    let reference = run(1);
    assert!(!reference[0].0.is_empty());
    for workers in [2usize, 8] {
        assert_eq!(run(workers), reference, "workers={workers}");
    }
}
