//! A uniform spatial grid index.
//!
//! `qualified_for` is the middleware's hottest query: *which registered
//! devices are inside this circle right now?* A linear scan is fine for
//! the study's 20 devices; a city-scale deployment (the paper's §8
//! scalability goal) wants an index. [`GridIndex`] buckets positions into
//! fixed-size cells keyed by latitude/longitude and answers circle
//! queries by scanning only the cells the circle's bounding box touches.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;
use crate::region::CircleRegion;

/// Metres per degree of latitude (WGS-84 mean).
const M_PER_DEG_LAT: f64 = 111_320.0;

/// A uniform-grid spatial index over keys of type `K`.
///
/// Keys are unique: inserting a key again moves it. Query results are
/// sorted by key so iteration order is deterministic.
///
/// # Example
///
/// ```
/// use senseaid_geo::{CircleRegion, GeoPoint, GridIndex};
///
/// let mut idx = GridIndex::new(250.0);
/// let campus = GeoPoint::new(40.4284, -86.9138);
/// idx.insert(1u32, campus);
/// idx.insert(2u32, campus.offset_by_meters(2_000.0, 0.0));
/// let near = idx.query_circle(&CircleRegion::new(campus, 500.0));
/// assert_eq!(near, vec![1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex<K: Copy + Eq + Ord + std::hash::Hash> {
    /// Cell edge length in degrees of latitude (longitude cells use the
    /// same degree size; the contains-filter restores exactness).
    cell_deg: f64,
    cells: HashMap<(i32, i32), Vec<K>>,
    positions: BTreeMap<K, GeoPoint>,
}

impl<K: Copy + Eq + Ord + std::hash::Hash> GridIndex<K> {
    /// Creates an index with roughly `cell_m`-sized cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite.
    pub fn new(cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "cell size {cell_m} must be positive"
        );
        GridIndex {
            cell_deg: cell_m / M_PER_DEG_LAT,
            cells: HashMap::new(),
            positions: BTreeMap::new(),
        }
    }

    fn cell_of(&self, p: GeoPoint) -> (i32, i32) {
        (
            (p.lat_deg() / self.cell_deg).floor() as i32,
            (p.lon_deg() / self.cell_deg).floor() as i32,
        )
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The indexed position of `key`, if present.
    pub fn position(&self, key: K) -> Option<GeoPoint> {
        self.positions.get(&key).copied()
    }

    /// Inserts `key` at `position`, moving it if already present.
    ///
    /// Re-inserting a key at its current position is a no-op: the hot
    /// per-sample update path re-reports unchanged positions constantly,
    /// and rebucketing would churn the cell vectors for nothing.
    pub fn insert(&mut self, key: K, position: GeoPoint) {
        if self.positions.get(&key) == Some(&position) {
            return;
        }
        self.remove(key);
        let cell = self.cell_of(position);
        self.cells.entry(cell).or_default().push(key);
        self.positions.insert(key, position);
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let Some(old) = self.positions.remove(&key) else {
            return false;
        };
        let cell = self.cell_of(old);
        if let Some(bucket) = self.cells.get_mut(&cell) {
            bucket.retain(|k| *k != key);
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
        true
    }

    /// All keys whose position lies inside `region`, sorted.
    pub fn query_circle(&self, region: &CircleRegion) -> Vec<K> {
        let mut out = Vec::new();
        self.for_each_in_circle(region, |key| out.push(key));
        out.sort_unstable();
        out
    }

    /// Calls `f` for every key inside `region`, in grid-bucket order
    /// (*not* key order). The allocation-free primitive behind
    /// [`query_circle`](Self::query_circle); counting callers use it
    /// directly and skip the sort.
    pub fn for_each_in_circle(&self, region: &CircleRegion, mut f: impl FnMut(K)) {
        let centre = region.centre();
        let r = region.radius_m();
        let dlat = r / M_PER_DEG_LAT;
        let dlon = r / (M_PER_DEG_LAT * centre.lat_deg().to_radians().cos().abs().max(1e-9));
        let lat_lo = ((centre.lat_deg() - dlat) / self.cell_deg).floor() as i32;
        let lat_hi = ((centre.lat_deg() + dlat) / self.cell_deg).floor() as i32;
        let lon_lo = ((centre.lon_deg() - dlon) / self.cell_deg).floor() as i32;
        let lon_hi = ((centre.lon_deg() + dlon) / self.cell_deg).floor() as i32;
        for lat_c in lat_lo..=lat_hi {
            for lon_c in lon_lo..=lon_hi {
                if let Some(bucket) = self.cells.get(&(lat_c, lon_c)) {
                    for key in bucket {
                        if region.contains(self.positions[key]) {
                            f(*key);
                        }
                    }
                }
            }
        }
    }

    /// How many keys lie inside `region`, without allocating.
    pub fn count_in_circle(&self, region: &CircleRegion) -> usize {
        let mut n = 0;
        self.for_each_in_circle(region, |_| n += 1);
        n
    }

    /// Iterates over `(key, position)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, GeoPoint)> + '_ {
        self.positions.iter().map(|(k, p)| (*k, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn campus() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    #[test]
    fn insert_query_remove_round_trip() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(7u32, campus());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.position(7), Some(campus()));
        let region = CircleRegion::new(campus(), 100.0);
        assert_eq!(idx.query_circle(&region), vec![7]);
        assert!(idx.remove(7));
        assert!(!idx.remove(7));
        assert!(idx.is_empty());
        assert!(idx.query_circle(&region).is_empty());
    }

    #[test]
    fn reinsert_moves_the_key() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(1u32, campus());
        idx.insert(1u32, campus().offset_by_meters(5_000.0, 0.0));
        assert_eq!(idx.len(), 1);
        assert!(idx
            .query_circle(&CircleRegion::new(campus(), 1_000.0))
            .is_empty());
        let far = CircleRegion::new(campus().offset_by_meters(5_000.0, 0.0), 100.0);
        assert_eq!(idx.query_circle(&far), vec![1]);
    }

    #[test]
    fn reinsert_at_same_position_is_a_noop() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(1u32, campus());
        idx.insert(2u32, campus());
        // Re-report device 1 at its unchanged position: it must neither
        // disappear nor change its bucket ordering relative to device 2.
        idx.insert(1u32, campus());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), Some(campus()));
        let region = CircleRegion::new(campus(), 100.0);
        assert_eq!(idx.query_circle(&region), vec![1, 2]);
    }

    #[test]
    fn count_matches_query_len() {
        let mut idx = GridIndex::new(150.0);
        for i in 0..30u32 {
            idx.insert(i, campus().offset_by_meters(f64::from(i) * 40.0, 0.0));
        }
        for radius in [50.0, 300.0, 700.0, 2000.0] {
            let region = CircleRegion::new(campus(), radius);
            assert_eq!(
                idx.count_in_circle(&region),
                idx.query_circle(&region).len()
            );
        }
    }

    #[test]
    fn results_are_sorted_and_exact_at_boundaries() {
        let mut idx = GridIndex::new(100.0);
        for i in 0..20u32 {
            idx.insert(i, campus().offset_by_meters(0.0, 50.0 * f64::from(i)));
        }
        // Radius 500 captures offsets 0..=500 → keys 0..=10.
        let got = idx.query_circle(&CircleRegion::new(campus(), 501.0));
        assert_eq!(got, (0..=10).collect::<Vec<_>>());
    }

    proptest! {
        /// The index answers every circle query exactly like a brute-force
        /// scan.
        #[test]
        fn matches_brute_force(
            offsets in prop::collection::vec((-3000.0f64..3000.0, -3000.0f64..3000.0), 1..60),
            q_north in -2500.0f64..2500.0,
            q_east in -2500.0f64..2500.0,
            radius in 10.0f64..2500.0,
            cell_m in 50.0f64..1500.0,
        ) {
            let mut idx = GridIndex::new(cell_m);
            let points: Vec<GeoPoint> = offsets
                .iter()
                .map(|(n, e)| campus().offset_by_meters(*n, *e))
                .collect();
            for (i, p) in points.iter().enumerate() {
                idx.insert(i as u32, *p);
            }
            let region = CircleRegion::new(campus().offset_by_meters(q_north, q_east), radius);
            let mut brute: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| region.contains(**p))
                .map(|(i, _)| i as u32)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(idx.query_circle(&region), brute);
        }
    }
}
