//! Recorded device-event traces and the sim↔live byte-identity harness.
//!
//! A trace is a time-sorted list of wire requests. The same trace can be
//! driven two ways:
//!
//! - [`run_sim`] — the sim harness path: ops applied *directly* to a
//!   `SenseAidServer` with explicit timestamps, polls advanced by the
//!   same `next_wakeup` loop every sim driver in this workspace uses.
//!   This is the executable spec.
//! - [`run_live`] — the serving path: every op is *encoded to bytes*,
//!   pushed through a loopback [`Transport`] pair, reassembled by
//!   [`FrameAssembler`](crate::conn::FrameAssembler), decoded, and
//!   applied by the [`ServeEngine`] under a shared [`SimClock`] that the
//!   driver advances to each event's timestamp before sending.
//!
//! Both return `durable_digest` at the trace horizon. Equality means the
//! wire codec, the stream reassembly, the session layer and the engine's
//! receive-time stamping add **zero semantics** over the spec: a live
//! deployment is the sim with real time and real sockets plugged in.
//!
//! The sim side deliberately re-states the engine's serving semantics
//! (lease renewal on device-originated ops, advance-then-apply) in
//! straight-line code instead of calling into the engine — sharing that
//! code would make the comparison vacuous. If you change the rules in
//! [`crate::engine`], change [`apply_sim`] to match.

use std::sync::Arc;

use senseaid_cellnet::{CellId, CellularNetwork};
use senseaid_core::cas::CasId;
use senseaid_core::runtime::{loopback_pair, SimClock};
use senseaid_core::{SenseAidConfig, SenseAidServer};
use senseaid_device::{ImeiHash, Sensor};
use senseaid_geo::{GeoPoint, TowerSite};
use senseaid_sim::{SimDuration, SimRng, SimTime};

use crate::conn::Connection;
use crate::engine::{build_task_spec, decode_readings, ServeEngine};
use crate::wire::{
    decode_frame, encode_request, WireFrame, WireReading, WireRequest, WireTaskSpec,
};

/// One timestamped operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the server receives the op (its clock reads this instant).
    pub at: SimTime,
    /// The operation, in wire form.
    pub req: WireRequest,
}

/// Alias kept for readability at call sites: trace ops *are* wire
/// requests — that is what makes replaying them through the live path a
/// faithful comparison.
pub type TraceOp = WireRequest;

/// A recorded device-event trace plus the instant to digest at.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// Time-sorted events.
    pub events: Vec<TraceEvent>,
    /// The digest horizon; both runners advance the scheduler here.
    pub horizon: SimTime,
}

fn campus_centre() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

/// The fixed radio topology both runners share: a centre tower plus a
/// ring of three, all overlapping — enough cells to make multi-shard
/// homing non-trivial.
pub fn trace_network() -> CellularNetwork {
    let centre = campus_centre();
    let sites: Vec<TowerSite> = (0..4)
        .map(|i| {
            let position = if i == 0 {
                centre
            } else {
                let angle = (i as f64) * std::f64::consts::TAU / 3.0;
                centre.offset_by_meters(1200.0 * angle.cos(), 1200.0 * angle.sin())
            };
            TowerSite {
                index: i,
                position,
                coverage_m: 1500.0,
            }
        })
        .collect();
    CellularNetwork::new(sites)
}

/// A fresh server configured for `shards` shards over [`trace_network`].
pub fn trace_server(shards: usize) -> SenseAidServer {
    let config = SenseAidConfig {
        shard_count: shards,
        ..SenseAidConfig::default()
    };
    let mut server = SenseAidServer::new(config);
    server.set_topology(trace_network());
    server
}

/// Records a deterministic sample trace: `devices` devices register,
/// observe in around the campus, a periodic barometer task arrives, then
/// `rounds` rounds of state updates, mobility, radio contact and
/// sequenced reading batches, with occasional CAS drains.
pub fn record_sample_trace(seed: u64, devices: usize, rounds: usize) -> EventTrace {
    let mut rng = SimRng::from_seed_label(seed, "serve-trace");
    let network = trace_network();
    let centre = campus_centre();
    let mut events = Vec::new();
    let mut t = SimTime::ZERO;
    let step = |rng: &mut SimRng, t: &mut SimTime, lo_ms: u64, hi_ms: u64| {
        *t = t.saturating_add(SimDuration::from_millis(
            lo_ms + rng.uniform_usize(0, (hi_ms - lo_ms) as usize) as u64,
        ));
        *t
    };

    let device_position = |rng: &mut SimRng| {
        let dx = rng.uniform_range(-900.0, 900.0);
        let dy = rng.uniform_range(-900.0, 900.0);
        centre.offset_by_meters(dx, dy)
    };

    // Enrolment wave.
    let mut positions = Vec::with_capacity(devices);
    for i in 0..devices {
        let imei = i as u64 + 1;
        let at = step(&mut rng, &mut t, 20, 250);
        events.push(TraceEvent {
            at,
            req: WireRequest::Register {
                imei,
                energy_budget_j: 400.0 + rng.uniform_range(0.0, 200.0),
                critical_battery_pct: 10.0 + rng.uniform_range(0.0, 10.0),
                battery_pct: 55.0 + rng.uniform_range(0.0, 45.0),
                device_type: (*rng
                    .choose(&["GalaxyS4", "iPhone6"])
                    .expect("non-empty choices"))
                .to_owned(),
                sensors: vec![Sensor::Barometer, Sensor::Light],
            },
        });
        let p = device_position(&mut rng);
        positions.push(p);
        events.push(TraceEvent {
            at,
            req: WireRequest::Observe {
                imei,
                lat_deg: p.lat_deg(),
                lon_deg: p.lon_deg(),
                cell: network.serving_cell(p).map(|c: CellId| c.0 as u64),
            },
        });
    }

    // One periodic barometer study over the whole campus.
    let at = step(&mut rng, &mut t, 500, 1500);
    events.push(TraceEvent {
        at,
        req: WireRequest::SubmitTask {
            cas: 1,
            spec: WireTaskSpec {
                sensor: Sensor::Barometer,
                centre_lat: centre.lat_deg(),
                centre_lon: centre.lon_deg(),
                radius_m: 2000.0,
                spatial_density: devices.clamp(1, 3) as u32,
                one_shot: false,
                period_us: SimDuration::from_mins(2).as_micros(),
                duration_us: SimDuration::from_mins(20).as_micros(),
            },
        },
    });

    // Activity rounds.
    let mut seqs = vec![0u64; devices];
    let mut batteries: Vec<f64> = (0..devices)
        .map(|_| 55.0 + rng.uniform_range(0.0, 45.0))
        .collect();
    for round in 0..rounds {
        for i in 0..devices {
            let imei = i as u64 + 1;
            let at = step(&mut rng, &mut t, 200, 4000);
            let roll = rng.uniform();
            let req = if roll < 0.35 {
                batteries[i] = (batteries[i] - rng.uniform_range(0.0, 1.5)).max(1.0);
                WireRequest::StateUpdate {
                    imei,
                    battery_pct: batteries[i],
                    cs_energy_j: rng.uniform_range(0.0, 2.0),
                }
            } else if roll < 0.55 {
                WireRequest::Comm { imei }
            } else if roll < 0.8 {
                let p = device_position(&mut rng);
                positions[i] = p;
                WireRequest::Observe {
                    imei,
                    lat_deg: p.lat_deg(),
                    lon_deg: p.lon_deg(),
                    cell: network.serving_cell(p).map(|c: CellId| c.0 as u64),
                }
            } else {
                seqs[i] += 1;
                // Low request ids round-robin: some hit live requests and
                // are accepted, some draw typed rejections — both paths
                // must be byte-identical, so both are worth recording.
                let request = (round as u64 * 3 + i as u64) % 8;
                WireRequest::SubmitBatch {
                    imei,
                    seq: seqs[i],
                    attempt: 1,
                    readings: vec![WireReading {
                        request,
                        sensor: Sensor::Barometer,
                        value: 990.0 + rng.uniform_range(0.0, 40.0),
                        taken_at_us: at.as_micros(),
                        lat_deg: positions[i].lat_deg(),
                        lon_deg: positions[i].lon_deg(),
                    }],
                }
            };
            events.push(TraceEvent { at, req });
        }
        let at = step(&mut rng, &mut t, 100, 500);
        events.push(TraceEvent {
            at,
            req: WireRequest::DrainOutbox,
        });
    }

    let horizon = t.saturating_add(SimDuration::from_mins(5));
    EventTrace { events, horizon }
}

/// Advances the scheduler through every wakeup due at or before `t` —
/// the sim-side mirror of `ServeEngine::advance_to` (rule 1).
fn advance(server: &mut SenseAidServer, cursor: &mut SimTime, t: SimTime) {
    while let Some(wakeup) = server.next_wakeup(*cursor) {
        if wakeup > t {
            break;
        }
        let at = wakeup.max(*cursor);
        let _ = server.poll(at);
        *cursor = at;
    }
    if t > *cursor {
        *cursor = t;
    }
}

/// Applies one trace op directly, restating the engine's serving
/// semantics (see module docs): lease renewal first on device-originated
/// ops, then the op itself, all at the event's timestamp.
fn apply_sim(server: &mut SenseAidServer, req: &WireRequest, now: SimTime) {
    let renew = |server: &mut SenseAidServer, imei: u64| {
        let _ = server.record_device_comm(ImeiHash(imei), now);
    };
    match req {
        WireRequest::Hello { .. } | WireRequest::Stats | WireRequest::Shutdown => {}
        WireRequest::Register {
            imei,
            energy_budget_j,
            critical_battery_pct,
            battery_pct,
            device_type,
            sensors,
        } => {
            let _ = server.register_device(
                ImeiHash(*imei),
                *energy_budget_j,
                *critical_battery_pct,
                *battery_pct,
                sensors.clone(),
                device_type.clone(),
                now,
            );
        }
        WireRequest::Deregister { imei } => {
            let _ = server.deregister_device(ImeiHash(*imei));
        }
        WireRequest::UpdatePreferences {
            imei,
            energy_budget_j,
            critical_battery_pct,
        } => {
            renew(server, *imei);
            let _ =
                server.update_preferences(ImeiHash(*imei), *energy_budget_j, *critical_battery_pct);
        }
        WireRequest::StateUpdate {
            imei,
            battery_pct,
            cs_energy_j,
        } => {
            renew(server, *imei);
            let _ = server.update_device_state(ImeiHash(*imei), *battery_pct, *cs_energy_j, now);
        }
        WireRequest::Observe {
            imei,
            lat_deg,
            lon_deg,
            cell,
        } => {
            renew(server, *imei);
            let _ = server.observe_device(
                ImeiHash(*imei),
                GeoPoint::new(*lat_deg, *lon_deg),
                cell.map(|c| CellId(c as usize)),
            );
        }
        WireRequest::Comm { imei } => {
            let _ = server.record_device_comm(ImeiHash(*imei), now);
        }
        WireRequest::SubmitBatch {
            imei,
            seq,
            attempt,
            readings,
        } => {
            renew(server, *imei);
            let decoded = decode_readings(readings);
            let _ = server.submit_sensed_batch(ImeiHash(*imei), *seq, *attempt, &decoded, now);
        }
        WireRequest::SubmitTask { cas, spec } => {
            if let Ok(built) = build_task_spec(spec) {
                let _ = server.submit_task_for(CasId(*cas), built, now);
            }
        }
        WireRequest::DrainOutbox => {
            let _ = server.drain_outbox();
        }
    }
}

/// Runs the trace through the sim harness path and digests at the
/// horizon. This is the spec side of the byte-identity comparison.
pub fn run_sim(trace: &EventTrace, shards: usize) -> Vec<u8> {
    let mut server = trace_server(shards);
    let mut cursor = SimTime::ZERO;
    for event in &trace.events {
        advance(&mut server, &mut cursor, event.at);
        apply_sim(&mut server, &event.req, event.at);
    }
    advance(&mut server, &mut cursor, trace.horizon);
    server.durable_digest(trace.horizon)
}

/// Runs the trace through the live serving path — encoded to bytes,
/// carried by a loopback transport, reassembled, decoded and applied by
/// the [`ServeEngine`] under a driver-advanced [`SimClock`] — and
/// digests at the horizon.
///
/// # Panics
///
/// Panics if any leg of the pipeline rejects a frame: the trace is
/// well-formed by construction, so a decode failure here is a protocol
/// bug, which is exactly what the keystone test exists to catch.
pub fn run_live(trace: &EventTrace, shards: usize) -> Vec<u8> {
    let clock = SimClock::new();
    let mut engine = ServeEngine::new(trace_server(shards), Arc::new(clock.clone()));
    let (driver_side, engine_side) = loopback_pair();
    let mut driver = Connection::new(driver_side);
    let mut serving = Connection::new(engine_side);
    let mut scratch = vec![0u8; 16 * 1024];
    const CONN: u64 = 1;

    for event in &trace.events {
        // The driver owns time: the engine's clock reads the event's
        // timestamp when the bytes "arrive", exactly as a wall clock
        // would read the receive instant in live mode.
        clock.advance_to(event.at);
        driver.queue(&encode_request(&event.req));
        driver.flush().expect("loopback accepts whole frames");

        for (kind, payload) in serving
            .pump_reads(&mut scratch)
            .expect("driver bytes reassemble")
        {
            let request = match decode_frame(kind, &payload).expect("driver frames decode") {
                WireFrame::Request(request) => request,
                other => panic!("client sent a non-request frame: {other:?}"),
            };
            let output = engine.handle(CONN, request);
            for (_conn, frame) in output.frames {
                serving.queue(&frame);
            }
            serving.flush().expect("loopback accepts responses");
        }

        // The driver decodes everything the server sent back (responses
        // and assignment pushes); undecodable server output fails the
        // replay.
        for (kind, payload) in driver
            .pump_reads(&mut scratch)
            .expect("server bytes reassemble")
        {
            decode_frame(kind, &payload).expect("server frames decode");
        }
    }

    clock.advance_to(trace.horizon);
    for (_conn, frame) in engine.advance_to(trace.horizon) {
        serving.queue(&frame);
    }
    serving.flush().expect("loopback accepts trailing pushes");
    let _ = driver
        .pump_reads(&mut scratch)
        .expect("trailing pushes reassemble");
    engine.server().durable_digest(trace.horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_trace_is_deterministic_and_sorted() {
        let a = record_sample_trace(7, 6, 3);
        let b = record_sample_trace(7, 6, 3);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.horizon >= a.events.last().unwrap().at);
        // Different seeds give different traces.
        assert_ne!(a, record_sample_trace(8, 6, 3));
    }

    #[test]
    fn sim_runner_is_reproducible() {
        let trace = record_sample_trace(11, 5, 2);
        assert_eq!(run_sim(&trace, 2), run_sim(&trace, 2));
    }
}
