//! Live-path chaos extension study (transport fault presets vs the sim
//! twin's digest). Run with
//! `cargo bench -p senseaid-bench --bench ext_live_chaos`.

use senseaid_bench::experiments::{ext_live_chaos, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", ext_live_chaos::run(seed));
}
