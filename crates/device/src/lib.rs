//! Simulated mobile devices (UEs) for the Sense-Aid reproduction.
//!
//! The paper's user study put its frameworks on 60 real student phones;
//! this crate supplies the synthetic equivalent. A [`Device`] composes:
//!
//! * a [`Battery`] (the study's nominal 1800 mAh / 3.82 V pack — the 2 %
//!   "tolerable budget" bar of Figs 11/13 is 495 J of it);
//! * a cellular [`senseaid_radio::Radio`];
//! * a set of hardware [`Sensor`]s with their published power draws;
//! * a [`Mobility`] model (students dwell at and walk between campus
//!   locations — this is what makes devices enter and leave task regions,
//!   Fig 7/9);
//! * an [`AppTrafficModel`] generating the *regular* smartphone traffic
//!   whose radio tails Sense-Aid exploits and whose sessions PCS
//!   piggybacks on.
//!
//! Framework clients (Sense-Aid, PCS, Periodic) live in other crates and
//! drive `Device` through its public API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod mobility;
pub mod profile;
pub mod sensors;
pub mod traffic;
pub mod ue;

pub use battery::Battery;
pub use mobility::{CampusMobility, Mobility, StationaryJitter, TraceMobility, WaypointLeg};
pub use profile::DeviceProfile;
pub use sensors::{Sensor, SensorEnvironment, SensorReading, UniformEnvironment};
pub use traffic::{AppSession, AppTrafficModel, SessionTransfer, TrafficConfig};
pub use ue::{Device, DeviceId, ImeiHash, RegistrationInfo, UserPreferences};
