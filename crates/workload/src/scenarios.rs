//! Experiment scenario grids (paper Table 2 and the Fig 2 case study).

use serde::{Deserialize, Serialize};

use senseaid_geo::NamedLocation;
use senseaid_sim::SimDuration;

/// One configured scenario: the fixed parameters of a user-study test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// How long the test runs.
    pub test_duration: SimDuration,
    /// Sampling period of every task.
    pub sampling_period: SimDuration,
    /// Devices required per request.
    pub spatial_density: usize,
    /// Task region radius, metres.
    pub area_radius_m: f64,
    /// Concurrent tasks per test.
    pub tasks: usize,
    /// Task centre location.
    pub location: NamedLocation,
    /// Participants per framework group (the study used 20).
    pub group_size: usize,
}

impl ScenarioConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero durations, densities, radii, task or group counts,
    /// or a period longer than the test.
    pub fn validate(&self) {
        assert!(
            !self.test_duration.is_zero(),
            "test duration must be non-zero"
        );
        assert!(
            !self.sampling_period.is_zero() && self.sampling_period <= self.test_duration,
            "sampling period must be non-zero and fit the test"
        );
        assert!(self.spatial_density >= 1, "density must be at least 1");
        assert!(self.area_radius_m > 0.0, "radius must be positive");
        assert!(self.tasks >= 1, "at least one task");
        assert!(self.group_size >= 1, "at least one participant");
    }
}

/// One experiment: a default scenario plus the parameter being swept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentGrid {
    /// Experiment 1: sweep the area radius (Figs 7–9).
    AreaRadius {
        /// The fixed parameters.
        base: ScenarioConfig,
        /// Radii to test, metres.
        radii_m: Vec<f64>,
    },
    /// Experiment 2: sweep the sampling period (Figs 10–11).
    SamplingPeriod {
        /// The fixed parameters.
        base: ScenarioConfig,
        /// Periods to test.
        periods: Vec<SimDuration>,
    },
    /// Experiment 3: sweep concurrent tasks per device (Figs 12–13).
    ConcurrentTasks {
        /// The fixed parameters.
        base: ScenarioConfig,
        /// Task counts to test.
        task_counts: Vec<usize>,
    },
}

impl ExperimentGrid {
    /// Experiment 1 exactly as in Table 2: radii 100–1000 m, 1.5 h tests,
    /// one task, 10-minute period, density 2.
    pub fn experiment1() -> Self {
        ExperimentGrid::AreaRadius {
            base: ScenarioConfig {
                test_duration: SimDuration::from_mins(90),
                sampling_period: SimDuration::from_mins(10),
                spatial_density: 2,
                area_radius_m: 500.0, // replaced per test point
                tasks: 1,
                location: NamedLocation::CsDepartment,
                group_size: 20,
            },
            radii_m: vec![100.0, 200.0, 300.0, 400.0, 500.0, 1000.0],
        }
    }

    /// Experiment 2 exactly as in Table 2: periods 1/5/10 min, 2 h tests,
    /// one task, density 3, radius 500 m.
    pub fn experiment2() -> Self {
        ExperimentGrid::SamplingPeriod {
            base: ScenarioConfig {
                test_duration: SimDuration::from_mins(120),
                sampling_period: SimDuration::from_mins(10), // replaced
                spatial_density: 3,
                area_radius_m: 500.0,
                tasks: 1,
                location: NamedLocation::CsDepartment,
                group_size: 20,
            },
            periods: vec![
                SimDuration::from_mins(1),
                SimDuration::from_mins(5),
                SimDuration::from_mins(10),
            ],
        }
    }

    /// Experiment 3 exactly as in Table 2: 3/5/10/15 concurrent tasks,
    /// 1.5 h tests, 5-minute period, density 3, radius 500 m.
    pub fn experiment3() -> Self {
        ExperimentGrid::ConcurrentTasks {
            base: ScenarioConfig {
                test_duration: SimDuration::from_mins(90),
                sampling_period: SimDuration::from_mins(5),
                spatial_density: 3,
                area_radius_m: 500.0,
                tasks: 1, // replaced
                location: NamedLocation::CsDepartment,
                group_size: 20,
            },
            task_counts: vec![3, 5, 10, 15],
        }
    }

    /// The scenario points of this experiment, in sweep order.
    pub fn points(&self) -> Vec<ScenarioConfig> {
        match self {
            ExperimentGrid::AreaRadius { base, radii_m } => radii_m
                .iter()
                .map(|r| ScenarioConfig {
                    area_radius_m: *r,
                    ..*base
                })
                .collect(),
            ExperimentGrid::SamplingPeriod { base, periods } => periods
                .iter()
                .map(|p| ScenarioConfig {
                    sampling_period: *p,
                    ..*base
                })
                .collect(),
            ExperimentGrid::ConcurrentTasks { base, task_counts } => task_counts
                .iter()
                .map(|t| ScenarioConfig { tasks: *t, ..*base })
                .collect(),
        }
    }

    /// Human-readable label of the swept parameter at each point.
    pub fn point_labels(&self) -> Vec<String> {
        match self {
            ExperimentGrid::AreaRadius { radii_m, .. } => {
                radii_m.iter().map(|r| format!("{r:.0} m")).collect()
            }
            ExperimentGrid::SamplingPeriod { periods, .. } => periods
                .iter()
                .map(|p| format!("{:.0} min", p.as_mins_f64()))
                .collect(),
            ExperimentGrid::ConcurrentTasks { task_counts, .. } => {
                task_counts.iter().map(|t| format!("{t} tasks")).collect()
            }
        }
    }
}

/// An app profile for the Fig 2 power case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// App name.
    pub name: String,
    /// Upload payload per update, bytes.
    pub payload_bytes: u64,
    /// Extra sensors the app samples per update besides the barometer.
    pub extra_sensor_energy_j: f64,
    /// Per-update app overhead beyond sensing and radio: CPU wake-up,
    /// location fix, map rendering. The paper measured whole-app battery
    /// drain, which includes this; a standalone radio model would
    /// under-count it.
    pub overhead_j_per_update: f64,
}

impl AppProfile {
    /// Pressurenet: barometer only, small payload, light processing.
    pub fn pressurenet() -> Self {
        AppProfile {
            name: "Pressurenet".to_owned(),
            payload_bytes: 600,
            extra_sensor_energy_j: 0.0,
            overhead_j_per_update: 6.0,
        }
    }

    /// WeatherSignal: richer data (more sensors, bigger payloads, heavier
    /// processing) — the paper observes it is "more energy hogging than
    /// Pressurenet".
    pub fn weathersignal() -> Self {
        AppProfile {
            name: "WeatherSignal".to_owned(),
            payload_bytes: 4_000,
            // Magnetometer + light + humidity + thermometer per update.
            extra_sensor_energy_j: 0.05,
            overhead_j_per_update: 14.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_matches_table2() {
        let ExperimentGrid::AreaRadius { base, radii_m } = ExperimentGrid::experiment1() else {
            panic!("wrong variant");
        };
        assert_eq!(radii_m, vec![100.0, 200.0, 300.0, 400.0, 500.0, 1000.0]);
        assert_eq!(base.test_duration, SimDuration::from_mins(90));
        assert_eq!(base.sampling_period, SimDuration::from_mins(10));
        assert_eq!(base.spatial_density, 2);
        assert_eq!(base.tasks, 1);
    }

    #[test]
    fn experiment2_matches_table2() {
        let ExperimentGrid::SamplingPeriod { base, periods } = ExperimentGrid::experiment2() else {
            panic!("wrong variant");
        };
        assert_eq!(periods.len(), 3);
        assert_eq!(base.test_duration, SimDuration::from_mins(120));
        assert_eq!(base.spatial_density, 3);
        assert_eq!(base.area_radius_m, 500.0);
    }

    #[test]
    fn experiment3_matches_table2() {
        let ExperimentGrid::ConcurrentTasks { base, task_counts } = ExperimentGrid::experiment3()
        else {
            panic!("wrong variant");
        };
        assert_eq!(task_counts, vec![3, 5, 10, 15]);
        assert_eq!(base.sampling_period, SimDuration::from_mins(5));
        assert_eq!(base.test_duration, SimDuration::from_mins(90));
    }

    #[test]
    fn points_substitute_the_swept_parameter() {
        let exp1 = ExperimentGrid::experiment1();
        let points = exp1.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].area_radius_m, 100.0);
        assert_eq!(points[5].area_radius_m, 1000.0);
        for p in &points {
            p.validate();
        }
        assert_eq!(exp1.point_labels()[5], "1000 m");

        let exp2 = ExperimentGrid::experiment2();
        assert_eq!(exp2.points()[0].sampling_period, SimDuration::from_mins(1));
        assert_eq!(exp2.point_labels()[0], "1 min");

        let exp3 = ExperimentGrid::experiment3();
        assert_eq!(exp3.points()[3].tasks, 15);
        assert_eq!(exp3.point_labels()[3], "15 tasks");
    }

    #[test]
    fn app_profiles_differ_as_the_paper_observes() {
        let pn = AppProfile::pressurenet();
        let ws = AppProfile::weathersignal();
        assert!(ws.payload_bytes > pn.payload_bytes);
        assert!(ws.extra_sensor_energy_j > pn.extra_sensor_energy_j);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn scenario_validation_catches_zero_density() {
        let mut s = ExperimentGrid::experiment1().points()[0];
        s.spatial_density = 0;
        s.validate();
    }
}
