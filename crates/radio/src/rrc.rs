//! The RRC state machine and lazy energy integrator.
//!
//! [`Radio`] models one UE's cellular radio. It is *event-lazy*: between
//! transmissions the state trajectory (tail phases, demotion to idle) is
//! deterministic, so no timer events are needed — state at any instant is
//! computed on demand and energy is integrated piecewise whenever the
//! simulation observes it.

use serde::{Deserialize, Serialize};

use senseaid_sim::{SimDuration, SimTime};

use crate::energy::{EnergyBreakdown, EnergyCategory};
use crate::mw_over;
use crate::power::RadioPowerProfile;

/// The observable phase of the radio at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioPhase {
    /// RRC_IDLE: lowest power, must promote before communicating.
    Idle,
    /// Control-message exchange promoting IDLE → CONNECTED.
    Promoting,
    /// Actively moving bytes.
    Transferring,
    /// First tail phase: short DRX cycles.
    ShortDrx,
    /// Second tail phase: long DRX cycles.
    LongDrx,
    /// Remainder of the CONNECTED tail before demotion.
    TailConnected,
}

impl RadioPhase {
    /// Whether the phase is part of the post-activity tail.
    pub fn is_tail(self) -> bool {
        matches!(
            self,
            RadioPhase::ShortDrx | RadioPhase::LongDrx | RadioPhase::TailConnected
        )
    }
}

impl std::fmt::Display for RadioPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RadioPhase::Idle => "IDLE",
            RadioPhase::Promoting => "PROMOTING",
            RadioPhase::Transferring => "TRANSFER",
            RadioPhase::ShortDrx => "SHORT_DRX",
            RadioPhase::LongDrx => "LONG_DRX",
            RadioPhase::TailConnected => "TAIL",
        };
        f.write_str(s)
    }
}

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Device → network.
    Uplink,
    /// Network → device.
    Downlink,
}

/// What a transmission does to the tail timer.
///
/// Stock RRC resets the inactivity timer on any traffic ([`Reset`]); the
/// Sense-Aid *Complete* variant assumes carrier cooperation so that
/// crowdsensing bytes sent inside the tail do **not** reset it
/// ([`NoReset`]) — the radio demotes exactly when it would have anyway.
///
/// [`Reset`]: ResetPolicy::Reset
/// [`NoReset`]: ResetPolicy::NoReset
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResetPolicy {
    /// Traffic restarts the tail timer (default RRC behaviour).
    Reset,
    /// Traffic leaves the tail timer untouched (Sense-Aid Complete).
    NoReset,
}

/// Outcome of one [`Radio::transmit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxReport {
    /// When the activity began (promotion start, or transfer start when no
    /// promotion was needed). Equals the call's `now` unless the radio was
    /// still busy with a previous transfer, in which case it queued.
    pub started_at: SimTime,
    /// When the last byte was on the air.
    pub completed_at: SimTime,
    /// Whether an IDLE→CONNECTED promotion was required.
    pub promoted: bool,
    /// Energy of the transfer itself (transfer power × duration), Joules.
    pub transfer_j: f64,
    /// Marginal energy this transmission added versus not transmitting:
    /// promotion (if any) + transfer premium + the tail time it created or
    /// extended. This is the quantity the paper's per-framework energy
    /// comparisons are made of.
    pub marginal_j: f64,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// One historical activity, kept for timeline reconstruction (Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct TxRecord {
    pub start: SimTime,
    pub promo_until: SimTime,
    pub end: SimTime,
    /// Tail anchor in effect after this activity (None = no tail follows,
    /// which cannot happen in practice but keeps the type honest).
    pub anchor_after: Option<SimTime>,
}

/// A simulated cellular radio with lazy energy integration.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Radio {
    profile: RadioPowerProfile,
    breakdown: EnergyBreakdown,
    last_update: SimTime,
    promo_start: SimTime,
    promo_until: SimTime,
    busy_until: SimTime,
    /// Start instant of the tail currently governing demotion, if any.
    tail_anchor: Option<SimTime>,
    promotion_count: u64,
    tx_count: u64,
    bytes_sent: u64,
    history: Vec<TxRecord>,
}

impl Radio {
    /// Creates an idle radio at `t = 0` with the given power profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`RadioPowerProfile::validate`].
    pub fn new(profile: RadioPowerProfile) -> Self {
        profile.validate();
        Radio {
            profile,
            breakdown: EnergyBreakdown::new(),
            last_update: SimTime::ZERO,
            promo_start: SimTime::ZERO,
            promo_until: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            tail_anchor: None,
            promotion_count: 0,
            tx_count: 0,
            bytes_sent: 0,
            history: Vec::new(),
        }
    }

    /// The power profile in use.
    pub fn profile(&self) -> &RadioPowerProfile {
        &self.profile
    }

    /// Number of IDLE→CONNECTED promotions so far.
    pub fn promotion_count(&self) -> u64 {
        self.promotion_count
    }

    /// Number of transmissions so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Total payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    pub(crate) fn history(&self) -> &[TxRecord] {
        &self.history
    }

    /// The instant the radio will next be (or last became) idle, given no
    /// further traffic.
    pub fn next_idle_at(&self) -> SimTime {
        match self.tail_anchor {
            Some(a) => {
                let demote = a + self.profile.tail.total;
                if demote > self.busy_until {
                    demote
                } else {
                    self.busy_until
                }
            }
            None => self.busy_until,
        }
    }

    /// The activity record governing instant `t`, if any activity started
    /// at or before `t`.
    fn governing_record(&self, t: SimTime) -> Option<&TxRecord> {
        let idx = self.history.partition_point(|r| r.start <= t);
        idx.checked_sub(1).map(|i| &self.history[i])
    }

    /// The demotion instant of the tail governing instant `t` (equals the
    /// governing activity's end when no tail follows or it already ran
    /// out).
    fn governing_idle_at(&self, t: SimTime) -> SimTime {
        match self.governing_record(t) {
            None => SimTime::ZERO,
            Some(rec) => match rec.anchor_after {
                None => rec.end,
                Some(anchor) => {
                    let demote = anchor + self.profile.tail.total;
                    if demote > rec.end {
                        demote
                    } else {
                        rec.end
                    }
                }
            },
        }
    }

    /// The radio phase at instant `t`.
    ///
    /// Works for any instant — the radio keeps its full activity history,
    /// so queries between past activities answer exactly (the simulation
    /// may execute a device's traffic slightly ahead of queries against
    /// it).
    pub fn phase_at(&self, t: SimTime) -> RadioPhase {
        let Some(rec) = self.governing_record(t) else {
            return RadioPhase::Idle;
        };
        if t < rec.promo_until {
            return RadioPhase::Promoting;
        }
        if t < rec.end {
            return RadioPhase::Transferring;
        }
        match rec.anchor_after {
            None => RadioPhase::Idle,
            Some(anchor) => {
                if t >= self.governing_idle_at(t) {
                    return RadioPhase::Idle;
                }
                // Inside the tail: classify by elapsed time since anchor.
                let elapsed = t.saturating_elapsed_since(anchor);
                let tail = &self.profile.tail;
                if elapsed < tail.short_drx {
                    RadioPhase::ShortDrx
                } else if elapsed < tail.short_drx + tail.long_drx {
                    RadioPhase::LongDrx
                } else {
                    RadioPhase::TailConnected
                }
            }
        }
    }

    /// Whether the radio is in its high-power tail at `t` (able to send
    /// without a promotion).
    pub fn in_tail(&self, t: SimTime) -> bool {
        self.phase_at(t).is_tail()
    }

    /// Remaining tail time at `t`; zero when not in the tail.
    pub fn tail_remaining(&self, t: SimTime) -> SimDuration {
        if self.in_tail(t) {
            self.governing_idle_at(t).saturating_elapsed_since(t)
        } else {
            SimDuration::ZERO
        }
    }

    /// Time since the most recent radio communication finished; zero while
    /// a transfer is in flight. This is the `TTL` input of the paper's
    /// device-selector scoring function.
    pub fn time_since_last_comm(&self, t: SimTime) -> SimDuration {
        t.saturating_elapsed_since(self.busy_until)
    }

    /// Integrates energy up to `now` and returns the running breakdown.
    pub fn energy(&mut self, now: SimTime) -> EnergyBreakdown {
        self.advance(now);
        self.breakdown
    }

    /// Transmits `bytes` at `now` (queuing behind any in-flight transfer)
    /// and returns the energy report.
    ///
    /// `policy` controls the tail timer: regular application traffic always
    /// uses [`ResetPolicy::Reset`]; Sense-Aid Complete crowdsensing uploads
    /// use [`ResetPolicy::NoReset`].
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes a previous observation of this radio
    /// (simulated time cannot run backwards).
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: u64,
        direction: Direction,
        policy: ResetPolicy,
    ) -> TxReport {
        let start = if now > self.busy_until {
            now
        } else {
            self.busy_until
        };
        // Settle energy for the pre-existing trajectory up to the start of
        // the new activity.
        self.advance(start);

        let was_idle = matches!(self.phase_at(start), RadioPhase::Idle);
        let tail_total = self.profile.tail.total;
        let old_idle_at = match self.tail_anchor {
            Some(a) => {
                let demote = a + tail_total;
                if demote > start {
                    demote
                } else {
                    start
                }
            }
            None => start,
        };

        let promo_dur = if was_idle {
            self.profile.promotion_duration
        } else {
            SimDuration::ZERO
        };
        let transfer_dur = self
            .profile
            .transfer_duration(bytes, direction == Direction::Uplink);
        let transfer_start = start + promo_dur;
        let end = transfer_start + transfer_dur;

        // New tail anchor: promotions and Reset-policy traffic restart the
        // tail at the end of the transfer; NoReset leaves it untouched.
        let new_anchor = if was_idle || policy == ResetPolicy::Reset {
            Some(end)
        } else {
            self.tail_anchor
        };
        let new_idle_at = match new_anchor {
            Some(a) => {
                let demote = a + tail_total;
                if demote > end {
                    demote
                } else {
                    end
                }
            }
            None => end,
        };

        // Marginal energy: integrate the with-transmission and
        // without-transmission power trajectories over [start, horizon) and
        // subtract. `horizon` covers both trajectories' settling points.
        let horizon = if new_idle_at > old_idle_at {
            new_idle_at
        } else {
            old_idle_at
        };
        let p = &self.profile;
        let with_j = mw_over(p.promotion_mw, promo_dur)
            + mw_over(p.transfer_mw, transfer_dur)
            + mw_over(p.tail_mw, new_idle_at.saturating_elapsed_since(end))
            + mw_over(p.idle_mw, horizon.saturating_elapsed_since(new_idle_at));
        let without_j = mw_over(p.tail_mw, old_idle_at.saturating_elapsed_since(start))
            + mw_over(p.idle_mw, horizon.saturating_elapsed_since(old_idle_at));
        let marginal_j = (with_j - without_j).max(0.0);
        let transfer_j = mw_over(p.transfer_mw, transfer_dur);

        // Commit the new activity.
        self.promo_start = start;
        self.promo_until = transfer_start;
        self.busy_until = end;
        self.tail_anchor = new_anchor;
        if was_idle {
            self.promotion_count += 1;
        }
        self.tx_count += 1;
        self.bytes_sent += bytes;
        self.history.push(TxRecord {
            start,
            promo_until: transfer_start,
            end,
            anchor_after: new_anchor,
        });

        TxReport {
            started_at: start,
            completed_at: end,
            promoted: was_idle,
            transfer_j,
            marginal_j,
            bytes,
        }
    }

    /// Integrates the energy of the deterministic trajectory from the last
    /// update point to `target`. No-op if `target` is in the past.
    fn advance(&mut self, target: SimTime) {
        if target <= self.last_update {
            return;
        }
        let mut t = self.last_update;
        let p = self.profile.clone();
        let idle_at = self.next_idle_at();
        while t < target {
            // Determine the power and category of the segment starting at
            // `t`, and where that segment ends.
            let (seg_end, mw, cat) = if t < self.promo_until && t >= self.promo_start {
                (self.promo_until, p.promotion_mw, EnergyCategory::Promotion)
            } else if t < self.busy_until {
                (self.busy_until, p.transfer_mw, EnergyCategory::Transfer)
            } else if t < idle_at {
                (idle_at, p.tail_mw, EnergyCategory::Tail)
            } else {
                (SimTime::MAX, p.idle_mw, EnergyCategory::Idle)
            };
            let upto = if seg_end < target { seg_end } else { target };
            self.breakdown
                .record(cat, mw_over(mw, upto.saturating_elapsed_since(t)));
            t = upto;
        }
        self.last_update = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lte() -> RadioPowerProfile {
        RadioPowerProfile::lte_galaxy_s4()
    }

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn starts_idle_and_accumulates_idle_energy() {
        let mut r = Radio::new(lte());
        assert_eq!(r.phase_at(SimTime::ZERO), RadioPhase::Idle);
        let e = r.energy(t(100.0));
        let expect = mw_over(11.0, SimDuration::from_secs(100));
        assert!((e.get(EnergyCategory::Idle) - expect).abs() < 1e-9);
        assert_eq!(e.active_j(), 0.0);
    }

    #[test]
    fn cold_transmit_promotes_then_tails_then_idles() {
        let mut r = Radio::new(lte());
        let rep = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        assert!(rep.promoted);
        assert_eq!(rep.started_at, t(10.0));
        assert_eq!(r.promotion_count(), 1);

        // During promotion.
        assert_eq!(r.phase_at(t(10.1)), RadioPhase::Promoting);
        // During transfer.
        let mid_transfer = rep.started_at + SimDuration::from_millis(300);
        assert_eq!(r.phase_at(mid_transfer), RadioPhase::Transferring);
        // Right after completion: short DRX.
        assert_eq!(
            r.phase_at(rep.completed_at + SimDuration::from_millis(1)),
            RadioPhase::ShortDrx
        );
        // Later in the tail.
        assert_eq!(
            r.phase_at(rep.completed_at + SimDuration::from_secs(5)),
            RadioPhase::TailConnected
        );
        // After the tail: idle.
        assert_eq!(
            r.phase_at(rep.completed_at + SimDuration::from_secs(12)),
            RadioPhase::Idle
        );
    }

    #[test]
    fn tail_upload_skips_promotion() {
        let mut r = Radio::new(lte());
        let first = r.transmit(t(10.0), 10_000, Direction::Uplink, ResetPolicy::Reset);
        // 5 s later we are inside the 11.5 s tail.
        let again_at = first.completed_at + SimDuration::from_secs(5);
        let second = r.transmit(again_at, 600, Direction::Uplink, ResetPolicy::Reset);
        assert!(!second.promoted);
        assert_eq!(r.promotion_count(), 1);
        assert!(second.marginal_j < first.marginal_j / 2.0);
    }

    #[test]
    fn cold_marginal_matches_closed_form() {
        let mut r = Radio::new(lte());
        let rep = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let expect = lte().cold_upload_energy_j(600);
        assert!(
            (rep.marginal_j - expect).abs() < 1e-6,
            "marginal {} vs closed-form {expect}",
            rep.marginal_j
        );
    }

    #[test]
    fn noreset_marginal_is_transfer_premium_only() {
        let mut r = Radio::new(lte());
        let first = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let again_at = first.completed_at + SimDuration::from_secs(2);
        let second = r.transmit(again_at, 600, Direction::Uplink, ResetPolicy::NoReset);
        assert!(!second.promoted);
        let p = lte();
        let dur = p.transfer_duration(600, true);
        let expect = mw_over(p.transfer_mw - p.tail_mw, dur);
        assert!(
            (second.marginal_j - expect).abs() < 1e-6,
            "marginal {} vs expected premium {expect}",
            second.marginal_j
        );
    }

    #[test]
    fn reset_extends_tail_noreset_does_not() {
        let mut basic = Radio::new(lte());
        let mut complete = Radio::new(lte());
        let b1 = basic.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let c1 = complete.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        assert_eq!(b1.completed_at, c1.completed_at);
        let original_idle = basic.next_idle_at();

        let again = b1.completed_at + SimDuration::from_secs(5);
        basic.transmit(again, 600, Direction::Uplink, ResetPolicy::Reset);
        complete.transmit(again, 600, Direction::Uplink, ResetPolicy::NoReset);
        assert!(
            basic.next_idle_at() > original_idle,
            "Reset pushes demotion out"
        );
        assert_eq!(
            complete.next_idle_at(),
            original_idle,
            "NoReset demotes exactly when it would have anyway"
        );
    }

    #[test]
    fn basic_variant_costs_more_than_complete() {
        let horizon = t(100.0);
        let mut basic = Radio::new(lte());
        let mut complete = Radio::new(lte());
        for r in [&mut basic, &mut complete] {
            r.transmit(t(10.0), 2_000, Direction::Uplink, ResetPolicy::Reset);
        }
        let again = t(10.0) + SimDuration::from_secs(8);
        let b = basic.transmit(again, 600, Direction::Uplink, ResetPolicy::Reset);
        let c = complete.transmit(again, 600, Direction::Uplink, ResetPolicy::NoReset);
        assert!(b.marginal_j > c.marginal_j);
        assert!(basic.energy(horizon).total_j() > complete.energy(horizon).total_j());
    }

    #[test]
    fn total_energy_equals_sum_of_marginals_plus_baseline() {
        // Energy conservation: for a single device the meter's total must
        // equal idle-baseline + Σ marginal energies.
        let horizon = t(200.0);
        let mut r = Radio::new(lte());
        let mut marginal_sum = 0.0;
        for (at, policy) in [
            (20.0, ResetPolicy::Reset),
            (25.0, ResetPolicy::NoReset),
            (60.0, ResetPolicy::Reset),
            (64.0, ResetPolicy::Reset),
            (120.0, ResetPolicy::NoReset),
        ] {
            marginal_sum += r.transmit(t(at), 600, Direction::Uplink, policy).marginal_j;
        }
        let e = r.energy(horizon);
        let baseline = mw_over(11.0, horizon.elapsed_since(SimTime::ZERO));
        assert!(
            (e.total_j() - (baseline + marginal_sum)).abs() < 1e-6,
            "total {} vs baseline {baseline} + marginals {marginal_sum}",
            e.total_j()
        );
    }

    #[test]
    fn transmit_queues_behind_inflight_transfer() {
        let mut r = Radio::new(lte());
        // A large transfer that takes a while.
        let first = r.transmit(t(10.0), 5_000_000, Direction::Uplink, ResetPolicy::Reset);
        assert!(first.completed_at > t(11.0));
        // Second transmit "arrives" mid-flight; it must start after.
        let second = r.transmit(t(10.5), 600, Direction::Uplink, ResetPolicy::Reset);
        assert_eq!(second.started_at, first.completed_at);
        assert!(!second.promoted);
    }

    #[test]
    fn ttl_tracks_last_communication() {
        let mut r = Radio::new(lte());
        assert_eq!(r.time_since_last_comm(t(5.0)), SimDuration::from_secs(5));
        let rep = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let probe = rep.completed_at + SimDuration::from_secs(3);
        assert_eq!(r.time_since_last_comm(probe), SimDuration::from_secs(3));
        // Mid-transfer the TTL is zero.
        assert_eq!(
            r.time_since_last_comm(rep.started_at + SimDuration::from_millis(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn tail_remaining_counts_down() {
        let mut r = Radio::new(lte());
        let rep = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let a = r.tail_remaining(rep.completed_at + SimDuration::from_secs(1));
        let b = r.tail_remaining(rep.completed_at + SimDuration::from_secs(8));
        assert!(a > b && !b.is_zero());
        assert_eq!(
            r.tail_remaining(rep.completed_at + SimDuration::from_secs(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn marginal_never_negative_under_random_schedules() {
        use senseaid_sim::SimRng;
        let mut rng = SimRng::from_seed(42);
        for run in 0..20 {
            let mut r = Radio::new(lte());
            let mut now = 1.0;
            for _ in 0..50 {
                now += rng.exponential(10.0);
                let policy = if rng.chance(0.5) {
                    ResetPolicy::Reset
                } else {
                    ResetPolicy::NoReset
                };
                let bytes = 100 + rng.uniform_usize(0, 10_000) as u64;
                let rep = r.transmit(t(now), bytes, Direction::Uplink, policy);
                assert!(
                    rep.marginal_j >= 0.0,
                    "run {run}: negative marginal {}",
                    rep.marginal_j
                );
            }
        }
    }

    #[test]
    fn downlink_faster_than_uplink() {
        let mut r = Radio::new(lte());
        let up = r.transmit(t(10.0), 1_000_000, Direction::Uplink, ResetPolicy::Reset);
        let mut r2 = Radio::new(lte());
        let down = r2.transmit(t(10.0), 1_000_000, Direction::Downlink, ResetPolicy::Reset);
        assert!(
            up.completed_at > down.completed_at,
            "uplink should take longer"
        );
    }

    #[test]
    fn bytes_and_tx_counters() {
        let mut r = Radio::new(lte());
        r.transmit(t(1.0), 100, Direction::Uplink, ResetPolicy::Reset);
        r.transmit(t(2.0), 200, Direction::Uplink, ResetPolicy::Reset);
        assert_eq!(r.tx_count(), 2);
        assert_eq!(r.bytes_sent(), 300);
    }
}
