//! Figure 11 — average per-device energy vs sampling period (Experiment 2).
//!
//! Paper: energy per device falls as the period lengthens (fewer
//! uploads); Sense-Aid's advantage over PCS is most pronounced at short
//! periods; at the 1-minute period every framework crosses the 2 %
//! battery bar, Sense-Aid least of all.

use senseaid_workload::ExperimentGrid;

use crate::chart::series_table;
use crate::framework::FrameworkKind;
use crate::report::{two_pct_bar_j, SweepTable};

/// Runs the Experiment 2 sweep for all four frameworks.
pub fn sweep(grid: &ExperimentGrid, seed: u64) -> SweepTable {
    SweepTable::run(
        &FrameworkKind::study_set(),
        &grid.points(),
        grid.point_labels(),
        seed,
    )
}

/// Renders Fig 11 on the paper's Experiment 2 grid.
pub fn run(seed: u64) -> String {
    render(&ExperimentGrid::experiment2(), seed)
}

/// Renders Fig 11 on an arbitrary grid.
pub fn render(grid: &ExperimentGrid, seed: u64) -> String {
    let table = sweep(grid, seed);
    let series: Vec<(String, Vec<f64>)> = table
        .frameworks
        .iter()
        .map(|f| (f.label(), table.avg_energy_series(*f)))
        .collect();
    let mut out = String::from(
        "=== Figure 11: average crowdsensing energy per device vs sampling period ===\n",
    );
    out.push_str(&series_table(
        "period",
        &table.point_labels,
        &series,
        "J/device",
    ));
    out.push_str(&format!("\n2% battery bar = {:.0} J\n", two_pct_bar_j()));
    let (avg_b, min_b, max_b) =
        table.savings_summary(FrameworkKind::SenseAidBasic, FrameworkKind::pcs_default());
    let (avg_c, min_c, max_c) = table.savings_summary(
        FrameworkKind::SenseAidComplete,
        FrameworkKind::pcs_default(),
    );
    let (avg_bp, ..) = table.savings_summary(FrameworkKind::SenseAidBasic, FrameworkKind::Periodic);
    let (avg_cp, ..) =
        table.savings_summary(FrameworkKind::SenseAidComplete, FrameworkKind::Periodic);
    out.push_str(&format!(
        "savings vs PCS — Basic avg {avg_b:.1}% ({min_b:.1}%, {max_b:.1}%); Complete avg {avg_c:.1}% ({min_c:.1}%, {max_c:.1}%)\n",
    ));
    out.push_str(&format!(
        "savings vs Periodic — Basic avg {avg_bp:.1}%; Complete avg {avg_cp:.1}%\n"
    ));
    out.push_str(
        "paper reference — vs PCS: Basic 42.1% (27.2%, 57.8%), Complete 48.3% (35.1%, 62.4%); vs Periodic: Basic 86.6%, Complete 88.1%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_sim::SimDuration;
    use senseaid_workload::ScenarioConfig;

    fn small_grid() -> ExperimentGrid {
        let base = match ExperimentGrid::experiment2() {
            ExperimentGrid::SamplingPeriod { base, .. } => ScenarioConfig {
                test_duration: SimDuration::from_mins(40),
                group_size: 14,
                ..base
            },
            _ => unreachable!(),
        };
        ExperimentGrid::SamplingPeriod {
            base,
            periods: vec![SimDuration::from_mins(2), SimDuration::from_mins(10)],
        }
    }

    #[test]
    fn energy_falls_with_longer_periods() {
        let table = sweep(&small_grid(), 9);
        for f in FrameworkKind::study_set() {
            let series = table.avg_energy_series(f);
            assert!(
                series[0] > series[1],
                "{f}: shorter period must cost more ({series:?})"
            );
        }
    }

    #[test]
    fn senseaid_cheapest_at_every_period() {
        let table = sweep(&small_grid(), 9);
        let pcs = table.avg_energy_series(FrameworkKind::pcs_default());
        let periodic = table.avg_energy_series(FrameworkKind::Periodic);
        let complete = table.avg_energy_series(FrameworkKind::SenseAidComplete);
        for i in 0..2 {
            assert!(complete[i] < pcs[i], "point {i}");
            assert!(complete[i] < periodic[i], "point {i}");
        }
    }
}
