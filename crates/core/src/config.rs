//! Middleware configuration.

use serde::{Deserialize, Serialize};

use senseaid_radio::ResetPolicy;
use senseaid_sim::SimDuration;

use crate::selector::{HardCutoffs, SelectorWeights};

/// Which deployment variant of Sense-Aid runs (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Crowdsensing uploads in the tail reset the tail timer — the
    /// behaviour available without carrier cooperation.
    Basic,
    /// The carrier suppresses the tail-timer reset for crowdsensing
    /// uploads; the radio demotes exactly when it would have anyway.
    Complete,
}

impl Variant {
    /// The radio tail policy this variant's crowdsensing uploads use.
    pub fn reset_policy(self) -> ResetPolicy {
        match self {
            Variant::Basic => ResetPolicy::Reset,
            Variant::Complete => ResetPolicy::NoReset,
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Basic => f.write_str("Sense-Aid Basic"),
            Variant::Complete => f.write_str("Sense-Aid Complete"),
        }
    }
}

/// Hysteresis thresholds for degraded-mode scheduling.
///
/// A task enters degraded mode once its requests have failed full
/// selection continuously for `enter_after`, and leaves it again once
/// full selections have succeeded continuously for `exit_after`. The two
/// windows stop a borderline cell from flapping between modes on every
/// poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedConfig {
    /// How long full selection must keep failing before the task's
    /// requests are served best-effort below density.
    pub enter_after: SimDuration,
    /// How long full selection must keep succeeding before the task
    /// returns to strict-density mode.
    pub exit_after: SimDuration,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            enter_after: SimDuration::from_mins(2),
            exit_after: SimDuration::from_mins(5),
        }
    }
}

/// Full middleware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SenseAidConfig {
    /// Deployment variant.
    pub variant: Variant,
    /// Device-selector scoring weights (α, β, γ, φ).
    pub weights: SelectorWeights,
    /// Device-selector hard cutoffs.
    pub cutoffs: HardCutoffs,
    /// Crowdsensing upload payload size (the study measured ~600 bytes).
    pub payload_bytes: u64,
    /// How often the wait queue is re-checked for now-satisfiable requests
    /// (Algorithm 1's `wait_check_thread`).
    pub wait_check_interval: SimDuration,
    /// How long past its deadline an assigned device may stay silent
    /// before it is marked unresponsive and excluded from selection.
    pub unresponsive_grace: SimDuration,
    /// How many cell-group shards the control plane runs. Scheduling
    /// output is identical for any value (see `coordinator`); 1 reproduces
    /// the paper prototype's single scheduler.
    pub shard_count: usize,
    /// Worker threads for the poll pipeline's parallel phase (DESIGN.md
    /// §14). `None` (the default) defers to the `SENSEAID_SHARD_WORKERS`
    /// environment variable, falling back to the machine's available
    /// parallelism. `Some(1)` pins the single-threaded legacy poll path;
    /// any higher count runs the two-phase pipeline. Scheduling output is
    /// byte-identical for every value.
    #[serde(default)]
    pub shard_workers: Option<usize>,
    /// Device-liveness lease: a registered device that makes no radio
    /// contact for this long is evicted and its in-flight tasking released
    /// back for re-selection. `None` (the default, and the paper's
    /// behaviour) never expires devices.
    pub device_lease: Option<SimDuration>,
    /// Run-queue admission bound (global, summed over shards, so the
    /// decision is shard-layout invariant): submissions past it are turned
    /// away with `Rejected{QueueFull}`. `None` admits everything.
    pub run_queue_bound: Option<usize>,
    /// Wait-queue bound (global, like `run_queue_bound`): parking past it
    /// invokes the shed policy to pick a victim, marked
    /// `Shed{WaitQueueFull}`. `None` parks everything.
    pub wait_queue_bound: Option<usize>,
    /// Degraded-mode scheduling hysteresis; `None` (the default) keeps
    /// strict-density selection and parks unsatisfiable requests.
    pub degraded: Option<DegradedConfig>,
}

impl Default for SenseAidConfig {
    fn default() -> Self {
        SenseAidConfig {
            variant: Variant::Complete,
            weights: SelectorWeights::default(),
            cutoffs: HardCutoffs::default(),
            payload_bytes: 600,
            wait_check_interval: SimDuration::from_secs(30),
            unresponsive_grace: SimDuration::from_mins(2),
            shard_count: 1,
            shard_workers: None,
            device_lease: None,
            run_queue_bound: None,
            wait_queue_bound: None,
            degraded: None,
        }
    }
}

impl SenseAidConfig {
    /// The default configuration with the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        SenseAidConfig {
            variant,
            ..SenseAidConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_maps_to_reset_policy() {
        assert_eq!(Variant::Basic.reset_policy(), ResetPolicy::Reset);
        assert_eq!(Variant::Complete.reset_policy(), ResetPolicy::NoReset);
    }

    #[test]
    fn default_config_is_sane() {
        let c = SenseAidConfig::default();
        assert_eq!(c.payload_bytes, 600);
        assert!(!c.wait_check_interval.is_zero());
        assert_eq!(c.variant, Variant::Complete);
    }

    #[test]
    fn with_variant_overrides_only_variant() {
        let c = SenseAidConfig::with_variant(Variant::Basic);
        assert_eq!(c.variant, Variant::Basic);
        assert_eq!(c.payload_bytes, SenseAidConfig::default().payload_bytes);
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::Basic.to_string(), "Sense-Aid Basic");
        assert_eq!(Variant::Complete.to_string(), "Sense-Aid Complete");
    }
}
