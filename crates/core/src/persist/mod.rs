//! Durable, corruption-tolerant control-plane persistence.
//!
//! The control plane's crash story used to be an in-memory
//! [`ControlSnapshot`](crate::ControlSnapshot) — gone with the process.
//! This module makes it durable and *adversarially* durable: every byte
//! written is framed, versioned and CRC-checksummed, snapshots form a
//! retained generation chain, and a write-ahead journal of logical
//! operations replays the tail between the last snapshot and the crash
//! instant.
//!
//! Layers, bottom up:
//!
//! * [`codec`] — the length-prefixed, checksummed frame format and the
//!   bounds-checked byte reader/writer every encoder builds on. A frame
//!   that fails its checksum is *detected*, never decoded.
//! * [`storage`] — the [`StorageBackend`] trait (atomic whole-file write,
//!   append, read, list, remove) with in-memory, directory-backed, and
//!   fault-injecting implementations. [`FaultingStorage`] mangles writes
//!   under a seeded [`StorageFaultPlan`] — torn writes, truncation, bit
//!   flips, dropped (stale-generation) writes, disk-full — so recovery is
//!   tested against the failure modes real disks exhibit.
//! * [`snapshot`] — full and delta snapshot payload encodings. Deltas
//!   persist only the columns dirtied since the previous generation, so
//!   steady-state persistence cost scales with churn, not population.
//! * [`journal`] — the write-ahead journal: each control-plane mutation is
//!   one framed, sequence-numbered [`JournalOp`](journal::JournalOp);
//!   replay drives the real coordinator methods, so a recovered server is
//!   byte-identical to one that never crashed.
//! * [`chain`] — the generation chain and manifest, plus recovery: walk
//!   candidates newest-first, skip any generation whose snapshot (or
//!   delta base) fails validation, replay the longest valid journal
//!   prefix, and report what was lost truthfully in a
//!   [`RecoveryReport`].
//!
//! The recovery ladder never panics and never loads corrupt state: a bad
//! checksum anywhere demotes to the next-older generation; a garbled
//! journal record stops replay at the last valid record; when nothing on
//! disk survives, recovery degrades to a truthful cold start
//! (`cold_start`), expiring orphaned work rather than inventing state.

pub mod chain;
pub mod codec;
pub mod journal;
pub mod snapshot;
pub mod storage;

use std::fmt;

pub use chain::{PersistStats, Persistor, RecoveryReport};
pub use codec::CodecError;
pub use storage::{
    DirStorage, FaultTally, FaultingStorage, MemStorage, StorageBackend, StorageError,
    StorageFaultPlan,
};

/// Configuration for the persistence layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// Every `full_every`-th generation is a full snapshot; the ones in
    /// between are deltas against the previous generation. `1` disables
    /// deltas entirely.
    pub full_every: u32,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig { full_every: 4 }
    }
}

/// Errors surfaced by the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The storage backend failed.
    Storage(StorageError),
    /// A frame or payload failed to decode.
    Codec(CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Storage(e) => write!(f, "storage: {e}"),
            PersistError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// Fully validates one framed snapshot — frame checksum, then the full
/// or delta payload decode — without loading it anywhere. The
/// fuzz-facing entry point: for *any* byte string this returns `Ok` or
/// `Err`, it never panics and never accepts a malformed payload.
///
/// # Errors
///
/// The [`CodecError`] describing the first defect found.
pub fn validate_snapshot_frame(bytes: &[u8]) -> Result<(), CodecError> {
    let (kind, payload) = codec::open_frame(bytes)?;
    match kind {
        codec::KIND_SNAPSHOT_FULL => snapshot::decode_full(payload).map(|_| ()),
        codec::KIND_SNAPSHOT_DELTA => snapshot::decode_delta(payload).map(|_| ()),
        other => Err(CodecError::BadKind(other)),
    }
}

/// Decodes the longest valid prefix of a journal segment, returning
/// `(records, valid_bytes)`. Like
/// [`validate_snapshot_frame`](validate_snapshot_frame) this never
/// panics: a torn, garbled, or sequence-gapped tail simply bounds the
/// prefix.
pub fn journal_valid_prefix(bytes: &[u8]) -> (usize, usize) {
    let prefix = journal::decode_segment(bytes);
    (prefix.ops.len(), prefix.valid_bytes)
}
