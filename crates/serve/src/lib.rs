//! `senseaid-serve` — the live front-end of the dual-mode runtime.
//!
//! The deterministic sim is this workspace's executable spec; this crate
//! is the *other* implementation of its two edges (see
//! `senseaid_core::runtime`): a wall clock instead of harness-driven
//! time, and TCP sockets instead of in-process loopback queues.
//! Everything between those edges — coordinator, scheduler, leases,
//! breakers, persistence — runs unchanged.
//!
//! Layout:
//!
//! - [`wire`] — the typed request/response/push protocol, encoded as
//!   payloads inside the PR 7 CRC-framed codec (`persist::codec`).
//! - [`conn`] — stream reassembly ([`conn::FrameAssembler`]) and a
//!   transport-generic connection pump shared by the TCP and loopback
//!   paths.
//! - [`engine`] — the serving engine: one `SenseAidServer` plus a
//!   `Clock`, applying decoded requests at receive time and routing
//!   assignment pushes to device sessions.
//! - [`tcp`] — the live mode: listener + per-shard event-loop workers
//!   over non-blocking sockets, graceful shutdown with a WAL flush.
//! - [`loadgen`] — a closed-loop load generator reporting requests/sec
//!   and p50/p99/p999 latency ([`hist`]).
//! - [`trace`] — recorded device-event traces and the sim↔live
//!   byte-identity harness (`durable_digest` equality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod engine;
pub mod hist;
pub mod loadgen;
pub mod tcp;
pub mod trace;
pub mod wire;

pub use conn::{ConnError, Connection, FrameAssembler};
pub use engine::{EngineOutput, EngineStats, FlushSummary, ServeEngine};
pub use hist::LatencyHistogram;
pub use loadgen::{run_loadgen, LoadReport, LoadgenOptions};
pub use tcp::{serve, ServeHandle, ServeOptions, ServeSummary};
pub use trace::{
    record_sample_trace, run_live, run_live_chaos, run_sim, ChaosReport, EventTrace, TraceEvent,
    TraceOp,
};
pub use wire::{
    encode_request, WireError, WirePush, WireReading, WireRequest, WireResponse, WireTaskSpec,
};
