//! Extension: million-device hot state.
//!
//! The full harness in [`super::ext_scalability`] simulates every device's
//! radio and mobility, which caps practical sweeps at a few hundred
//! participants. This study instead drives the *control plane* directly —
//! registration, mobility observations, task submission, poll rounds,
//! state churn and data delivery — so populations up to 10^6 finish in
//! seconds and the numbers isolate exactly the layers the struct-of-arrays
//! store, hierarchical grid and arena queues optimise.
//!
//! Each sweep row reports control-plane operations per second and the
//! process's resident memory (`VmRSS`, Linux) sampled while the N-device
//! server is live. RSS is process-absolute and monotone across a sweep
//! run in one process; sizes are swept ascending so the largest population
//! dominates its own row's figure.
//!
//! The drive sequence is deterministic, and [`drive`] folds the full
//! assignment stream plus end-of-run queue/statistics state into a digest,
//! which the tests use to prove the three invariances this crate's
//! conclusions rest on: struct-of-arrays vs the reference store, shard
//! count, and harness worker count.

use std::time::Instant;

use senseaid_cellnet::CellularNetwork;
use senseaid_core::store::DeviceIndex;
use senseaid_core::{
    DeviceStore, ScoredPolicy, SenseAidConfig, SenseAidServer, SoaDeviceStore, TaskSpec,
};
use senseaid_device::{ImeiHash, Sensor, SensorReading};
use senseaid_geo::{CircleRegion, GeoPoint, TowerSite};
use senseaid_sim::{SimDuration, SimTime};

/// One sweep row.
#[derive(Debug, Clone)]
pub struct MillionRow {
    /// Registered population.
    pub devices: usize,
    /// Wall-clock of the whole drive, milliseconds.
    pub wall_ms: f64,
    /// Control-plane operations executed (registrations, observations,
    /// state updates, deliveries).
    pub events: u64,
    /// Operations per wall-clock second.
    pub events_per_sec: f64,
    /// Resident memory (`VmRSS`) in MiB while the server is live; 0 where
    /// `/proc/self/status` is unavailable.
    pub rss_mb: f64,
    /// Devices tasked across all poll rounds.
    pub assignments: u64,
    /// Digest of the assignment stream and final control-plane state.
    pub digest: u64,
}

/// What one [`drive`] run did, for timing-free identity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Control-plane operations executed.
    pub events: u64,
    /// Devices tasked across all poll rounds.
    pub assignments: u64,
    /// Digest of the assignment stream and final control-plane state.
    pub digest: u64,
}

/// The struct-of-arrays store the server defaults to.
pub fn soa_index() -> Box<dyn DeviceIndex> {
    Box::new(SoaDeviceStore::new())
}

/// The pre-PR map-of-records reference store.
pub fn reference_index() -> Box<dyn DeviceIndex> {
    Box::new(DeviceStore::new())
}

fn centre() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

/// Deterministic 64-bit mix (splitmix64 finaliser) for device placement.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform offset in `[-half, half)` metres from lane `lane` of `x`.
fn offset(x: u64, lane: u64, half: f64) -> f64 {
    let u = mix(x ^ lane.wrapping_mul(0xa076_1d64_78bd_642f)) >> 11;
    (u as f64 / (1u64 << 53) as f64) * 2.0 * half - half
}

/// Side of the square the population is scattered over: constant density
/// (10k devices ≈ a 2 km campus), so a million devices cover a city.
fn span_m(devices: usize) -> f64 {
    2_000.0 * (devices as f64 / 10_000.0).sqrt().max(1.0)
}

/// Tower-grid pitch. The half-diagonal (pitch/√2 ≈ 990 m) sits inside the
/// 1000 m coverage radius, so every point of the population square is
/// covered by its nearest tower.
const PITCH_M: f64 = 1_400.0;

fn towers_per_side(span: f64) -> usize {
    (span / PITCH_M).ceil() as usize + 1
}

/// A tower grid covering the population square — hundreds of cells at the
/// million-device span, so shard fan-out pruning actually has cells to
/// prune.
fn grid_network(span: f64) -> CellularNetwork {
    let per_side = towers_per_side(span);
    let origin = -span / 2.0;
    let mut sites = Vec::with_capacity(per_side * per_side);
    for row in 0..per_side {
        for col in 0..per_side {
            sites.push(TowerSite {
                index: row * per_side + col,
                position: centre()
                    .offset_by_meters(origin + row as f64 * PITCH_M, origin + col as f64 * PITCH_M),
                coverage_m: 1_000.0,
            });
        }
    }
    CellularNetwork::new(sites)
}

/// The serving cell for a device at planar offset `(north, east)`:
/// nearest grid tower, computed arithmetically. The network's own
/// `serving_cell` is a linear scan over every tower — fine for the radio
/// simulation's populations, but at a million devices it would dominate
/// this study and hide the store costs being measured.
fn cell_at(north: f64, east: f64, span: f64) -> senseaid_cellnet::CellId {
    let per_side = towers_per_side(span);
    let origin = -span / 2.0;
    let snap = |v: f64| (((v - origin) / PITCH_M).round().max(0.0) as usize).min(per_side - 1);
    senseaid_cellnet::CellId(snap(north) * per_side + snap(east))
}

const TASKS: usize = 12;
const ROUNDS: u64 = 16;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Wall-clock split of one [`drive_instrumented`] run.
#[derive(Debug, Clone, Copy)]
pub struct DriveTiming {
    /// The whole drive, milliseconds — dominated by the one-time
    /// registration + first-observation load of the population.
    pub total_ms: f64,
    /// The steady-state round loop only (state churn, polls, deliveries),
    /// milliseconds: the recurring control-plane work a long-lived
    /// deployment actually repeats, and the slice the sweep cells compare.
    pub rounds_ms: f64,
    /// Just the `poll` calls, summed, milliseconds — the slice the
    /// two-phase pipeline (DESIGN.md §14) restructures.
    pub poll_ms: f64,
}

/// Runs the deterministic drive sequence against a fresh server using the
/// given store factory and shard count. Pure in its inputs: the returned
/// outcome is byte-identical for any store implementation, shard count, or
/// host — that is what the identity tests below assert.
pub fn drive(
    devices: usize,
    shards: usize,
    factory: fn() -> Box<dyn DeviceIndex>,
    seed: u64,
) -> DriveOutcome {
    drive_instrumented(devices, shards, factory, seed, TASKS, Some(1)).0
}

/// [`drive`] with the task population and the poll worker count exposed,
/// returning the wall-clock split alongside the outcome. More tasks per
/// round make the drive poll-heavy (the default workload is dominated by
/// registration); `workers` pins [`SenseAidConfig::shard_workers`] so the
/// serial legacy path (`Some(1)`) and the two-phase pipeline can be timed
/// on the same workload. The outcome is byte-identical for every worker
/// count — asserted by the tests below and re-asserted by the perf cells.
pub fn drive_instrumented(
    devices: usize,
    shards: usize,
    factory: fn() -> Box<dyn DeviceIndex>,
    seed: u64,
    tasks: usize,
    workers: Option<usize>,
) -> (DriveOutcome, DriveTiming) {
    let started = Instant::now();
    let span = span_m(devices);
    let half = span / 2.0;
    let network = grid_network(span);
    let config = SenseAidConfig {
        shard_count: shards,
        shard_workers: workers,
        ..SenseAidConfig::default()
    };
    let policy = ScoredPolicy::new(config.weights, config.cutoffs);
    let mut server = SenseAidServer::with_parts(config, Box::new(policy), factory);
    server.set_topology(network);

    let mut events = 0u64;
    // Population: scattered uniformly, batteries spread over 40–100 % so
    // the selector has real ranking work, everyone carries the barometer.
    for i in 1..=devices as u64 {
        let (north, east) = (offset(seed ^ i, 1, half), offset(seed ^ i, 2, half));
        let p = centre().offset_by_meters(north, east);
        server
            .register_device(
                ImeiHash(i),
                495.0,
                15.0,
                40.0 + (mix(seed ^ i) % 61) as f64,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                SimTime::ZERO,
            )
            .expect("registration");
        server
            .observe_device(ImeiHash(i), p, Some(cell_at(north, east, span)))
            .expect("observation");
        events += 2;
    }

    // Tasks: small circles scattered over the map, repeating requests.
    let task_centres: Vec<GeoPoint> = (0..tasks as u64)
        .map(|t| {
            centre().offset_by_meters(
                offset(seed ^ (t + 1), 3, half * 0.8),
                offset(seed ^ (t + 1), 4, half * 0.8),
            )
        })
        .collect();
    for c in &task_centres {
        let spec = TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(*c, 500.0))
            .spatial_density(3)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(15))
            .build()
            .expect("task spec");
        server.submit_task(spec, SimTime::ZERO).expect("submit");
    }

    // Poll rounds with interleaved state churn: a rotating window of the
    // population reports new battery/energy each minute (exercising the
    // narrow column mutators and the qualification epoch), assignees
    // deliver their readings at once.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut assigned = 0u64;
    let mut poll_wall = std::time::Duration::ZERO;
    let rounds_started = Instant::now();
    let churn = (devices / 128).max(1) as u64;
    for minute in 0..ROUNDS {
        let t = SimTime::from_mins(minute);
        for k in 0..churn {
            let imei = (mix(seed ^ minute ^ (k << 32)) % devices as u64) + 1;
            let battery = 35.0 + (mix(imei ^ minute) % 66) as f64;
            server
                .update_device_state(ImeiHash(imei), battery, (minute * k % 17) as f64, t)
                .expect("state update");
            events += 1;
        }
        let poll_started = Instant::now();
        let assignments = server.poll(t).expect("poll");
        poll_wall += poll_started.elapsed();
        for a in &assignments {
            digest = fnv(digest, a.request.0);
            let region_centre = task_centres[(a.task.0 as usize - 1) % task_centres.len()];
            for imei in &a.devices {
                digest = fnv(digest, imei.0);
                let reading = SensorReading {
                    sensor: Sensor::Barometer,
                    value: 990.0 + (imei.0 % 40) as f64,
                    taken_at: t,
                    position: region_centre,
                };
                server
                    .submit_sensed_data(*imei, a.request, &reading, t)
                    .expect("delivery");
                events += 1;
                assigned += 1;
            }
        }
    }

    let rounds_ms = rounds_started.elapsed().as_secs_f64() * 1e3;
    let stats = server.stats();
    for v in [
        stats.requests_assigned,
        stats.requests_fulfilled,
        stats.requests_expired,
        stats.requests_waited,
        stats.readings_accepted,
        server.run_queue_len() as u64,
        server.wait_queue_len() as u64,
        server.device_count() as u64,
    ] {
        digest = fnv(digest, v);
    }
    (
        DriveOutcome {
            events,
            assignments: assigned,
            digest,
        },
        DriveTiming {
            total_ms: started.elapsed().as_secs_f64() * 1e3,
            rounds_ms,
            poll_ms: poll_wall.as_secs_f64() * 1e3,
        },
    )
}

/// Times the request→shard fan-out path in isolation: a batch of
/// qualification probes over scattered regions, answered through
/// `qualified_count` (target-shard bitset + per-shard grid counts, no
/// candidate buffers). Returns `(wall_ms, probes, checksum)`; the checksum
/// keeps the work from being optimised away and doubles as a determinism
/// witness.
pub fn fanout_probe_run(devices: usize, iterations: usize, seed: u64) -> (f64, u64, u64) {
    let span = span_m(devices);
    let half = span / 2.0;
    let network = grid_network(span);
    let config = SenseAidConfig {
        shard_count: 8,
        shard_workers: Some(1),
        ..SenseAidConfig::default()
    };
    let policy = ScoredPolicy::new(config.weights, config.cutoffs);
    let mut server = SenseAidServer::with_parts(config, Box::new(policy), soa_index);
    server.set_topology(network);
    for i in 1..=devices as u64 {
        let (north, east) = (offset(seed ^ i, 1, half), offset(seed ^ i, 2, half));
        let p = centre().offset_by_meters(north, east);
        server
            .register_device(
                ImeiHash(i),
                495.0,
                15.0,
                40.0 + (mix(seed ^ i) % 61) as f64,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                SimTime::ZERO,
            )
            .expect("registration");
        server
            .observe_device(ImeiHash(i), p, Some(cell_at(north, east, span)))
            .expect("observation");
    }
    let regions: Vec<CircleRegion> = (0..64u64)
        .map(|r| {
            let c = centre().offset_by_meters(
                offset(seed ^ (r + 1), 5, half * 0.8),
                offset(seed ^ (r + 1), 6, half * 0.8),
            );
            CircleRegion::new(c, 500.0)
        })
        .collect();
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..iterations {
        for region in &regions {
            checksum = fnv(
                checksum,
                server.qualified_count(Sensor::Barometer, *region) as u64,
            );
        }
    }
    let wall = start.elapsed();
    (
        wall.as_secs_f64() * 1e3,
        (iterations * regions.len()) as u64,
        checksum,
    )
}

/// Resident set size of this process in MiB, from `/proc/self/status`
/// (`None` off Linux or when the pseudo-file is unreadable).
pub fn resident_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Runs the sweep serially and in ascending size order — resident memory
/// is a process-wide measurement, so rows must not interleave.
pub fn sweep(sizes: &[usize], seed: u64) -> Vec<MillionRow> {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    sorted
        .into_iter()
        .map(|devices| {
            let start = Instant::now();
            let outcome = drive(devices, 8, soa_index, seed);
            let wall = start.elapsed().as_secs_f64();
            MillionRow {
                devices,
                wall_ms: wall * 1e3,
                events: outcome.events,
                events_per_sec: outcome.events as f64 / wall.max(1e-9),
                rss_mb: resident_mb().unwrap_or(0.0),
                assignments: outcome.assignments,
                digest: outcome.digest,
            }
        })
        .collect()
}

/// The sweep sizes the full study runs.
pub const FULL_SIZES: &[usize] = &[10_000, 100_000, 1_000_000];

/// Cheaper sizes for CI smoke runs.
pub const QUICK_SIZES: &[usize] = &[5_000, 20_000];

/// Renders the million-device study.
pub fn run(seed: u64) -> String {
    render(&sweep(FULL_SIZES, seed))
}

/// Renders arbitrary sweep rows.
pub fn render(rows: &[MillionRow]) -> String {
    let mut out = String::from("=== Extension: million-device hot state ===\n");
    out.push_str(&format!(
        "{:>10} {:>10} {:>12} {:>14} {:>10} {:>12}\n",
        "devices", "wall ms", "ops", "ops/sec", "assigned", "rss MiB"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>10.1} {:>12} {:>14.0} {:>10} {:>12.1}\n",
            r.devices, r.wall_ms, r.events, r.events_per_sec, r.assignments, r.rss_mb
        ));
    }
    out.push_str(
        "\nexpectations: per-op cost stays within a small factor across two orders of\n\
         magnitude (residuals are tree depth and cache misses, never per-device scans);\n\
         resident memory grows linearly with devices; per-round assignment work is\n\
         population-independent (density x tasks)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 2_000;

    /// The struct-of-arrays store is observationally identical to the
    /// reference map-of-records store through the full drive sequence.
    #[test]
    fn soa_store_matches_reference_store() {
        let soa = drive(N, 4, soa_index, 2017);
        let reference = drive(N, 4, reference_index, 2017);
        assert_eq!(soa, reference);
        assert!(soa.assignments > 0, "drive must actually task devices");
    }

    /// Shard count never changes the drive outcome.
    #[test]
    fn shard_count_never_changes_the_outcome() {
        let one = drive(N, 1, soa_index, 2017);
        for shards in [2, 8] {
            assert_eq!(drive(N, shards, soa_index, 2017), one, "shards={shards}");
        }
    }

    /// Harness worker count never changes sweep results: drives fanned out
    /// over 1, 2 and 8 workers produce identical digests.
    #[test]
    fn worker_count_never_changes_the_outcome() {
        let sizes = vec![500usize, 1_000, 1_500];
        let serial: Vec<u64> = sizes
            .iter()
            .map(|&n| drive(n, 8, soa_index, 2017).digest)
            .collect();
        for workers in [2, 8] {
            let fanned: Vec<u64> = crate::parallel::map_cells(sizes.clone(), workers, |_, n| {
                drive(n, 8, soa_index, 2017).digest
            });
            assert_eq!(fanned, serial, "workers={workers}");
        }
    }

    /// The poll pipeline's intra-run worker count never changes the drive
    /// outcome: one worker (the serial legacy path), two and eight produce
    /// identical assignment streams and end state, across shard layouts.
    #[test]
    fn poll_worker_count_never_changes_the_outcome() {
        for shards in [1, 8] {
            let serial = drive_instrumented(N, shards, soa_index, 2017, 24, Some(1)).0;
            assert!(serial.assignments > 0, "drive must actually task devices");
            for workers in [2, 8] {
                let piped = drive_instrumented(N, shards, soa_index, 2017, 24, Some(workers)).0;
                assert_eq!(piped, serial, "shards={shards} workers={workers}");
            }
        }
    }

    /// The fan-out probe run is deterministic and counts its probes.
    #[test]
    fn fanout_probe_run_is_deterministic() {
        let (_, probes_a, sum_a) = fanout_probe_run(1_000, 2, 2017);
        let (_, probes_b, sum_b) = fanout_probe_run(1_000, 2, 2017);
        assert_eq!(probes_a, 128);
        assert_eq!(probes_a, probes_b);
        assert_eq!(sum_a, sum_b);
    }

    /// The deterministic drive is reproducible and the sweep accounts for
    /// its own operations.
    #[test]
    fn sweep_rows_are_sane() {
        let rows = sweep(&[1_000, 300], 7);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].devices < rows[1].devices, "sweep sorts ascending");
        for r in &rows {
            assert!(r.events >= 2 * r.devices as u64);
            assert!(r.events_per_sec > 0.0);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn resident_memory_is_readable_on_linux() {
        let mb = resident_mb().expect("/proc/self/status");
        assert!(mb > 1.0, "a running test binary is bigger than 1 MiB");
    }
}
