//! Server-side datastores (paper §3.2) and the pluggable device-index
//! boundary.
//!
//! The control plane stores devices behind the [`DeviceIndex`] trait so a
//! shard can run over any storage that answers the qualification question.
//! [`SoaDeviceStore`](soa_store::SoaDeviceStore) — parallel columns keyed
//! by dense slot ids — is the default implementation;
//! [`DeviceStore`](device_store::DeviceStore), a B-tree of whole records,
//! is kept as the reference the SoA layout is byte-compared against.
//!
//! Selection never walks records: qualification copies the handful of
//! fields the selector scores into flat [`CandidateRow`]s, so the hot loop
//! reads a dense array instead of chasing a pointer per device.

pub mod device_store;
pub mod soa_store;
pub mod task_store;

use std::collections::BTreeSet;
use std::fmt;

use senseaid_cellnet::CellId;
use senseaid_device::{ImeiHash, Sensor};
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_sim::{SimDuration, SimTime};

use crate::request::Request;
use device_store::DeviceRecord;

/// The qualification question, first class: which registered devices could
/// serve `sensor` over `region` right now?
///
/// Scheduling and monitoring both ask it — scheduling for a concrete
/// [`Request`], monitoring (the Fig 7 metric) for an arbitrary
/// sensor/region pair. Making the probe its own type means counting no
/// longer needs a throwaway `Request` with sentinel ids.
#[derive(Debug, Clone, PartialEq)]
pub struct QualificationProbe {
    /// The area of interest.
    pub region: CircleRegion,
    /// The sensor devices must carry.
    pub sensor: Sensor,
    /// Optional device-model restriction (Table 1 `device_type`).
    pub device_type: Option<String>,
}

impl QualificationProbe {
    /// A probe with no device-type restriction.
    pub fn new(sensor: Sensor, region: CircleRegion) -> Self {
        QualificationProbe {
            region,
            sensor,
            device_type: None,
        }
    }

    /// The probe a concrete request poses.
    pub fn for_request(request: &Request) -> Self {
        QualificationProbe {
            region: request.region(),
            sensor: request.sensor(),
            device_type: request.spec().device_type().map(str::to_owned),
        }
    }
}

/// One qualified candidate, flattened to exactly the fields the selector
/// scores (paper §4 cost function) plus the identity used for tie-breaks
/// and output.
///
/// `Copy` and pointer-free by design: the selection hot loop iterates a
/// contiguous `Vec<CandidateRow>` that qualification fills in place, so
/// scoring 10⁵ devices touches dense memory instead of a `&DeviceRecord`
/// per element. Rows are snapshots — they do not observe later mutations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateRow {
    /// Hashed identity (never the raw IMEI).
    pub imei: ImeiHash,
    /// Most recently reported battery level, %.
    pub battery_pct: f64,
    /// Battery floor below which the device must not be selected, %.
    pub critical_battery_pct: f64,
    /// Remaining crowdsensing budget, Joules (precomputed, never negative).
    pub remaining_budget_j: f64,
    /// Energy already spent on crowdsensing, Joules.
    pub cs_energy_j: f64,
    /// Times the selector picked this device.
    pub times_selected: u64,
    /// Timestamp of the most recent radio communication.
    pub last_comm: SimTime,
    /// Data-reliability score in `[0, 1]`.
    pub reliability: f64,
}

impl CandidateRow {
    /// Time since the last radio communication at `now` — the selector's
    /// `TTL` term.
    pub fn ttl(&self, now: SimTime) -> SimDuration {
        now.saturating_elapsed_since(self.last_comm)
    }
}

/// Pluggable device storage for one control-plane shard.
///
/// Implementations own the records of the devices homed on their shard and
/// answer qualification probes over them. `candidates_into` must append
/// rows in ascending IMEI-hash order so that merging across shards is
/// deterministic for any shard count.
///
/// Mutation goes through narrow, named operations (the exact state
/// transitions the coordinator performs) rather than a `&mut DeviceRecord`
/// escape hatch, so column-oriented implementations never have to
/// materialise a record to satisfy a write.
pub trait DeviceIndex: fmt::Debug + Send + Sync {
    /// Registers (or re-registers) a device record.
    fn insert(&mut self, record: DeviceRecord);

    /// Removes a device, returning its record if it was present. Used both
    /// for deregistration and for migrating a device to another shard.
    fn remove(&mut self, imei: ImeiHash) -> Option<DeviceRecord>;

    /// Number of devices held.
    fn len(&self) -> usize;

    /// Whether no devices are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a device up, materialising its record. A cold-path
    /// convenience (public API reads, snapshots, tests); hot paths use
    /// [`candidates_into`](Self::candidates_into) or the narrow mutators.
    fn get(&self, imei: ImeiHash) -> Option<DeviceRecord>;

    /// The device's last observed serving cell, without materialising the
    /// whole record.
    fn cell_of(&self, imei: ImeiHash) -> Option<CellId>;

    /// Records an observed position and serving cell. Returns `false` when
    /// the device is unknown to this index.
    fn observe(&mut self, imei: ImeiHash, position: GeoPoint, cell: Option<CellId>) -> bool;

    /// Re-registration: refreshes the caller-supplied fields of an
    /// existing device (budget, floor, battery, sensors, device type,
    /// last-comm) and restores responsiveness, preserving selection
    /// history, spent energy and position. Returns `false` if unknown.
    fn refresh_registration(&mut self, record: &DeviceRecord) -> bool;

    /// Updates the user's energy budget and critical-battery floor.
    /// Returns `false` if unknown.
    fn update_preferences(
        &mut self,
        imei: ImeiHash,
        energy_budget_j: f64,
        critical_battery_pct: f64,
    ) -> bool;

    /// Updates reported battery and crowdsensing-energy state, refreshing
    /// the last-communication timestamp and responsiveness. Returns
    /// `false` if unknown.
    fn update_state(
        &mut self,
        imei: ImeiHash,
        battery_pct: f64,
        cs_energy_j: f64,
        now: SimTime,
    ) -> bool;

    /// Records a radio communication (any traffic the eNodeB sees),
    /// restoring responsiveness. Returns `false` if unknown.
    fn record_comm(&mut self, imei: ImeiHash, now: SimTime) -> bool;

    /// Increments the selection counter after an assignment. Returns
    /// `false` if unknown.
    fn bump_selected(&mut self, imei: ImeiHash) -> bool;

    /// Sets the responsiveness flag (cleared on missed deadlines).
    /// Returns `false` if unknown.
    fn set_responsive(&mut self, imei: ImeiHash, responsive: bool) -> bool;

    /// Sets the data-validity flag (cleared on implausible submissions).
    /// Returns `false` if unknown.
    fn set_data_valid(&mut self, imei: ImeiHash, valid: bool) -> bool;

    /// Appends the qualified candidate rows for `probe` to `out`,
    /// ascending by IMEI hash: responsive, data-valid devices inside the
    /// region that carry the sensor and match any device-type restriction.
    /// Appending to a caller-owned buffer keeps the per-wakeup hot path
    /// allocation-free once the buffer has grown to steady state.
    fn candidates_into(&self, probe: &QualificationProbe, out: &mut Vec<CandidateRow>);

    /// Appends the qualified candidate rows for `probe` to `out` in
    /// whatever order the index walks them — no IMEI sort. Callers that
    /// treat the rows order-insensitively (see
    /// [`SelectionPolicy::candidate_order_insensitive`]) use this to skip
    /// the per-probe sort [`candidates_into`](Self::candidates_into) pays
    /// for. The default delegates to the ordered walk, which is always
    /// correct; implementations whose natural walk order is cheaper than
    /// sorted order should override it.
    ///
    /// [`SelectionPolicy::candidate_order_insensitive`]:
    ///     crate::SelectionPolicy::candidate_order_insensitive
    fn candidates_unordered_into(&self, probe: &QualificationProbe, out: &mut Vec<CandidateRow>) {
        self.candidates_into(probe, out);
    }

    /// How many devices qualify for `probe`.
    fn qualified_count(&self, probe: &QualificationProbe) -> usize {
        let mut out = Vec::new();
        self.candidates_unordered_into(probe, &mut out);
        out.len()
    }

    /// Every record held, cloned, in ascending IMEI order — the crash
    /// snapshot's view of this shard's device datastore.
    fn snapshot_records(&self) -> Vec<DeviceRecord>;

    /// Turns dirty-column tracking on or off. While on, every mutation
    /// (including removal) marks the touched IMEI so delta snapshots can
    /// persist only what changed. Off (the default) must cost nothing on
    /// the hot paths. Indexes that do not implement tracking may ignore
    /// this — the persistence layer then falls back to full snapshots.
    fn set_dirty_tracking(&mut self, _on: bool) {}

    /// The IMEIs touched since the last [`clear_dirty`]
    /// (Self::clear_dirty), or `None` when tracking is unsupported or
    /// off. A touched IMEI no longer present was removed; the caller
    /// resolves presence itself so cross-shard migration folds correctly.
    fn dirty_touched(&self) -> Option<&BTreeSet<ImeiHash>> {
        None
    }

    /// Forgets all dirty marks (called once a generation persists).
    fn clear_dirty(&mut self) {}
}
