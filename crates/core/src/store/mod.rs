//! Server-side datastores (paper §3.2) and the pluggable device-index
//! boundary.
//!
//! The control plane stores devices behind the [`DeviceIndex`] trait so a
//! shard can run over any storage that answers the qualification question.
//! [`DeviceStore`](device_store::DeviceStore) — a B-tree of records mirrored
//! into a spatial grid — is the default implementation.

pub mod device_store;
pub mod task_store;

use std::fmt;

use senseaid_cellnet::CellId;
use senseaid_device::{ImeiHash, Sensor};
use senseaid_geo::{CircleRegion, GeoPoint};

use crate::request::Request;
use device_store::DeviceRecord;

/// The qualification question, first class: which registered devices could
/// serve `sensor` over `region` right now?
///
/// Scheduling and monitoring both ask it — scheduling for a concrete
/// [`Request`], monitoring (the Fig 7 metric) for an arbitrary
/// sensor/region pair. Making the probe its own type means counting no
/// longer needs a throwaway `Request` with sentinel ids.
#[derive(Debug, Clone, PartialEq)]
pub struct QualificationProbe {
    /// The area of interest.
    pub region: CircleRegion,
    /// The sensor devices must carry.
    pub sensor: Sensor,
    /// Optional device-model restriction (Table 1 `device_type`).
    pub device_type: Option<String>,
}

impl QualificationProbe {
    /// A probe with no device-type restriction.
    pub fn new(sensor: Sensor, region: CircleRegion) -> Self {
        QualificationProbe {
            region,
            sensor,
            device_type: None,
        }
    }

    /// The probe a concrete request poses.
    pub fn for_request(request: &Request) -> Self {
        QualificationProbe {
            region: request.region(),
            sensor: request.sensor(),
            device_type: request.spec().device_type().map(str::to_owned),
        }
    }
}

/// Pluggable device storage for one control-plane shard.
///
/// Implementations own the records of the devices homed on their shard and
/// answer qualification probes over them. `candidates` must return records
/// in ascending IMEI-hash order so that merging across shards is
/// deterministic for any shard count.
pub trait DeviceIndex: fmt::Debug + Send {
    /// Registers (or re-registers) a device record.
    fn insert(&mut self, record: DeviceRecord);

    /// Removes a device, returning its record if it was present. Used both
    /// for deregistration and for migrating a device to another shard.
    fn remove(&mut self, imei: ImeiHash) -> Option<DeviceRecord>;

    /// Number of devices held.
    fn len(&self) -> usize;

    /// Whether no devices are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a device up.
    fn get(&self, imei: ImeiHash) -> Option<&DeviceRecord>;

    /// Mutable lookup.
    fn get_mut(&mut self, imei: ImeiHash) -> Option<&mut DeviceRecord>;

    /// Records an observed position and serving cell. Returns `false` when
    /// the device is unknown to this index.
    fn observe(&mut self, imei: ImeiHash, position: GeoPoint, cell: Option<CellId>) -> bool;

    /// The qualified candidate records for `probe`, ascending by IMEI
    /// hash: responsive, data-valid devices inside the region that carry
    /// the sensor and match any device-type restriction.
    fn candidates(&self, probe: &QualificationProbe) -> Vec<&DeviceRecord>;

    /// How many devices qualify for `probe`.
    fn qualified_count(&self, probe: &QualificationProbe) -> usize {
        self.candidates(probe).len()
    }

    /// Every record held, cloned, in ascending IMEI order — the crash
    /// snapshot's view of this shard's device datastore.
    fn snapshot_records(&self) -> Vec<DeviceRecord>;
}
