//! Parallel, determinism-preserving execution of experiment cells.
//!
//! Every figure/ablation/chaos experiment is a grid of independent
//! `run_scenario` cells (framework × seed × sweep point). Each cell is a
//! pure function of its inputs — the simulation carries its own seeded RNG
//! streams and shares nothing — so the cells can run on any number of
//! worker threads without changing a single byte of output, provided the
//! results are reassembled by cell index rather than completion order.
//!
//! [`map_cells`] is that contract in code: a `std::thread::scope` worker
//! pool pulls cell indices from an atomic cursor (deterministic cell
//! keys), runs each cell exactly once, and writes the result into the slot
//! matching its input index (order-independent assembly). The output
//! vector is therefore identical at any worker count, including the serial
//! fast path at one worker.
//!
//! Worker count comes from `SENSEAID_WORKERS` when set, otherwise the
//! machine's available parallelism — so CI and the determinism tests can
//! pin it without code changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use: the `SENSEAID_WORKERS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn configured_workers() -> usize {
    match std::env::var("SENSEAID_WORKERS") {
        Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Runs `f(index, item)` for every item on [`configured_workers`] worker
/// threads, returning results in input order. See [`map_cells`].
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_cells(items, configured_workers(), f)
}

/// Runs `f(index, item)` for every item on up to `workers` threads,
/// returning results in input order regardless of completion order.
///
/// Determinism: each cell's index is its key. Workers claim indices from
/// a shared atomic cursor, so which *thread* runs a cell varies between
/// runs — but the cell's inputs and its slot in the output depend only on
/// the index, so the assembled vector is byte-identical at any worker
/// count. `workers <= 1` (or a single item) short-circuits to a plain
/// serial loop on the calling thread.
///
/// A panic inside `f` propagates out of the scope and fails the caller,
/// matching the serial behaviour.
pub fn map_cells<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Cells move into per-index mailboxes; each worker claims the next
    // unclaimed index, takes the cell, and files the result under the
    // same index. The mutexes are uncontended by construction (an index
    // is claimed exactly once) — they exist to make the hand-off safe
    // without unsafe code.
    let source: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = source[i]
                    .lock()
                    .expect("no worker panicked holding this lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(i, cell);
                *slots[i]
                    .lock()
                    .expect("no worker panicked holding this lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers joined cleanly")
                .expect("every claimed index filed a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 2, 8, 64] {
            let out = map_cells(items.clone(), workers, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            let expected: Vec<usize> = (0..40).map(|x| x * 3).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        use senseaid_sim::SharedCounter;
        let calls = SharedCounter::new();
        let out = map_cells((0..100).collect::<Vec<u64>>(), 8, |_, x| {
            calls.add(1);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.value(), 100);
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert_eq!(map_cells(none, 8, |_, x| x), Vec::<u8>::new());
        assert_eq!(map_cells(vec![7u8], 8, |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn configured_workers_is_positive() {
        assert!(configured_workers() >= 1);
    }
}
