//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire-adjacent
//! types but never serialises through serde at runtime (the cellnet codec
//! is hand-rolled), so marker traits plus a no-op derive are all that is
//! needed to build in this container, which has no crates.io access.
//! Swap the `[patch.crates-io]` entry out to use the real crate.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
