//! Randomized workout of the Sense-Aid server: hundreds of interleaved
//! register / deregister / observe / submit / update / delete / poll /
//! data operations, with invariants checked throughout. The point is not
//! any one behaviour but that *no* interleaving panics, corrupts counts,
//! or assigns devices that should be ineligible.

use senseaid::core::{RequestStatus, SenseAidConfig, SenseAidServer, TaskId, TaskSpec};
use senseaid::device::{ImeiHash, Sensor, SensorReading};
use senseaid::geo::{CircleRegion, GeoPoint};
use senseaid::sim::{SimDuration, SimRng, SimTime};

fn campus() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

/// One seeded fuzz run.
fn workout(seed: u64) {
    let mut rng = SimRng::from_seed_label(seed, "server-fuzz");
    let mut server = SenseAidServer::new(SenseAidConfig::default());
    let mut registered: Vec<ImeiHash> = Vec::new();
    let mut tasks: Vec<TaskId> = Vec::new();
    let mut live_assignments: Vec<senseaid::core::Assignment> = Vec::new();
    let mut now = SimTime::ZERO;

    for step in 0..600 {
        now += SimDuration::from_secs(rng.uniform_usize(1, 30) as u64);
        match rng.uniform_usize(0, 10) {
            // Register a new device somewhere on campus.
            0 | 1 => {
                let imei = ImeiHash(1000 + step as u64);
                server
                    .register_device(
                        imei,
                        rng.uniform_range(50.0, 600.0),
                        rng.uniform_range(5.0, 25.0),
                        rng.uniform_range(20.0, 100.0),
                        vec![Sensor::Barometer],
                        "GalaxyS4".to_owned(),
                        now,
                    )
                    .expect("server is up");
                server
                    .observe_device(
                        imei,
                        campus().offset_by_meters(
                            rng.uniform_range(-900.0, 900.0),
                            rng.uniform_range(-900.0, 900.0),
                        ),
                        None,
                    )
                    .expect("just registered");
                registered.push(imei);
            }
            // Deregister a random device.
            2 => {
                if !registered.is_empty() {
                    let i = rng.uniform_usize(0, registered.len());
                    let imei = registered.swap_remove(i);
                    server.deregister_device(imei).expect("was registered");
                }
            }
            // Move a random device (possibly out of every region).
            3 | 4 => {
                if let Some(imei) = rng.choose(&registered).copied() {
                    server
                        .observe_device(
                            imei,
                            campus().offset_by_meters(
                                rng.uniform_range(-2_000.0, 2_000.0),
                                rng.uniform_range(-2_000.0, 2_000.0),
                            ),
                            None,
                        )
                        .expect("registered");
                }
            }
            // Submit a new task.
            5 => {
                let spec = TaskSpec::builder(Sensor::Barometer)
                    .region(CircleRegion::new(
                        campus(),
                        rng.uniform_range(200.0, 1_200.0),
                    ))
                    .spatial_density(rng.uniform_usize(1, 5))
                    .sampling_period(SimDuration::from_mins(rng.uniform_usize(1, 10) as u64))
                    .sampling_duration(SimDuration::from_mins(rng.uniform_usize(10, 40) as u64))
                    .build()
                    .expect("generated spec is valid");
                tasks.push(server.submit_task(spec, now).expect("server is up"));
            }
            // Update a random task's parameters.
            6 => {
                if let Some(task) = rng.choose(&tasks).copied() {
                    let _ = server.update_task_param(
                        task,
                        Some(rng.uniform_usize(1, 6)),
                        Some(SimDuration::from_mins(rng.uniform_usize(1, 8) as u64)),
                        None,
                        now,
                    );
                }
            }
            // Delete a random task.
            7 => {
                if !tasks.is_empty() {
                    let i = rng.uniform_usize(0, tasks.len());
                    let task = tasks.swap_remove(i);
                    server.delete_task(task).expect("task existed");
                }
            }
            // Answer a random outstanding assignment (some devices, maybe
            // with an implausible value).
            8 => {
                if !live_assignments.is_empty() {
                    let i = rng.uniform_usize(0, live_assignments.len());
                    let a = live_assignments.swap_remove(i);
                    for imei in a.devices {
                        let bogus = rng.chance(0.05);
                        let reading = SensorReading {
                            sensor: Sensor::Barometer,
                            value: if bogus {
                                -42.0
                            } else {
                                rng.uniform_range(980.0, 1040.0)
                            },
                            taken_at: a.sample_at,
                            position: campus(),
                        };
                        // Any outcome is fine (expired, unknown, invalid);
                        // it must just never panic.
                        let _ = server.submit_sensed_data(imei, a.request, &reading, now);
                    }
                }
            }
            // Poll.
            _ => {
                let mut assignments = server.poll(now).expect("server is up");
                for a in &assignments {
                    // Invariant: an assignment never names a deregistered
                    // device, never exceeds its density, and is tracked as
                    // Assigned.
                    assert!(!a.devices.is_empty());
                    for d in &a.devices {
                        assert!(
                            registered.contains(d),
                            "step {step}: assigned unregistered device {d}"
                        );
                    }
                    assert_eq!(
                        server.request_status(a.request),
                        Some(RequestStatus::Assigned)
                    );
                }
                live_assignments.append(&mut assignments);
            }
        }

        // Global invariants after every operation.
        let stats = server.stats();
        assert!(
            stats.requests_fulfilled + stats.requests_expired
                <= stats.requests_assigned + stats.requests_waited + 10_000,
            "counter overflow nonsense"
        );
        assert_eq!(server.device_count(), registered.len());
    }

    // Drain: advance far enough that everything outstanding resolves.
    now += SimDuration::from_hours(2);
    server.poll(now).expect("server is up");
    let stats = server.stats();
    assert!(
        stats.requests_fulfilled + stats.requests_expired > 0,
        "a 600-step workout must have resolved something"
    );
    // Outbox drains cleanly and every delivered reading references a task
    // the server knew about.
    for (_, reading) in server.drain_outbox() {
        assert!(
            reading.value > 900.0,
            "invalid readings must never be delivered"
        );
    }
}

#[test]
fn randomized_server_workouts_never_panic() {
    for seed in 0..8 {
        workout(seed);
    }
}
