//! Training PCS's app-usage predictor — why 40 % accuracy is the ceiling.
//!
//! PCS's viability rests on predicting when the user will next generate
//! app traffic (Lane et al. report ~40 % saturated top-1 accuracy after
//! two months of training). This example trains the time-of-day predictor
//! ("will a session start within the next 30 minutes?") on 30 days of
//! synthetic traffic for three user archetypes and evaluates it on
//! held-out days — the habitual user is predictable, the
//! Poisson user is not, and that gap is exactly what Fig 14 sweeps.
//! Run with `cargo run --release --example pcs_predictor`.

use senseaid::baselines::AppUsagePredictor;
use senseaid::device::{AppTrafficModel, TrafficConfig};
use senseaid::sim::{SimDuration, SimRng, SimTime};

/// Generates `days` of session starts for a Poisson user.
fn poisson_sessions(days: u64, config: TrafficConfig, label: &str) -> Vec<SimTime> {
    let mut model = AppTrafficModel::new(SimRng::from_seed_label(17, label), config);
    let horizon = SimTime::ZERO + SimDuration::from_hours(24 * days);
    let mut out = Vec::new();
    loop {
        let s = model.pop_next(SimTime::ZERO);
        if s.start > horizon {
            break;
        }
        out.push(s.start);
    }
    out
}

/// Generates `days` of habitual sessions: fixed times of day plus jitter.
fn habitual_sessions(days: u64, label: &str) -> Vec<SimTime> {
    let mut rng = SimRng::from_seed_label(23, label);
    let mut out = Vec::new();
    for day in 0..days {
        for hour in [8u64, 12, 18, 22] {
            let jitter = rng.normal(0.0, 240.0); // ±4 min
            let at = (day * 86_400 + hour * 3_600) as f64 + jitter;
            out.push(SimTime::ZERO + SimDuration::from_secs_f64(at.max(0.0)));
        }
    }
    out.sort();
    out
}

fn evaluate(name: &str, sessions: &[SimTime]) {
    let train_days = 30u64;
    let split = SimTime::ZERO + SimDuration::from_hours(24 * train_days);
    let mut predictor = AppUsagePredictor::new(SimDuration::from_mins(30));
    for s in sessions.iter().filter(|s| **s < split) {
        predictor.observe_session(*s);
    }
    predictor.finish_training(split);
    let held_out: Vec<SimTime> = sessions.iter().copied().filter(|s| *s >= split).collect();
    let report = predictor.evaluate(
        &held_out,
        split,
        split + SimDuration::from_hours(96),
        SimDuration::from_mins(5),
    );
    let total = report.true_positives
        + report.false_positives
        + report.false_negatives
        + report.true_negatives;
    let base_rate = (report.true_positives + report.false_negatives) as f64 / total as f64;
    println!(
        "{name:<22} accuracy {:>5.1}%   precision {:>5.1}%   recall {:>5.1}%   base rate {:>5.1}%   lift {:>4.2}x",
        100.0 * report.accuracy(),
        100.0 * report.precision(),
        100.0 * report.recall(),
        100.0 * base_rate,
        report.precision() / base_rate.max(1e-9),
    );
}

fn main() {
    println!("predictor: 'will an app session start within the next 30 minutes?'");
    println!("trained on 30 days, evaluated on 4 held-out days\n");
    evaluate("habitual user", &habitual_sessions(34, "habitual"));
    evaluate(
        "average user (9 min)",
        &poisson_sessions(34, TrafficConfig::default(), "avg"),
    );
    evaluate(
        "light user (20 min)",
        &poisson_sessions(34, TrafficConfig::light(), "light"),
    );
    println!(
        "\nlift is precision over the always-guess-yes base rate: the habitual user's\nschedule is genuinely learnable, while Poisson users give the predictor no\nedge (lift ≈ 1) — which is why the paper models PCS at 40% accuracy and why\nSense-Aid uses the network's live radio state instead of predictions"
    );
}
