//! Radio power profiles and tail configuration.
//!
//! The constants come from the measurements the paper cites: Huang et al.
//! (MobiSys '12) for 4G LTE RRC powers and tail length, and the 3G numbers
//! from the same line of work. Absolute values matter less than their
//! ratios — promotion and tail dwarf idle by two orders of magnitude.

use serde::{Deserialize, Serialize};

use senseaid_sim::SimDuration;

/// Timing of the RRC_CONNECTED tail that follows the last packet.
///
/// Paper Fig 6 shows the measured shape: ~120 ms of short+long DRX right
/// after the transfer, then a continuous tail of roughly 10 s, ~11.5 s in
/// total before demotion to RRC_IDLE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailConfig {
    /// Short-DRX phase immediately after activity.
    pub short_drx: SimDuration,
    /// Long-DRX phase after short DRX.
    pub long_drx: SimDuration,
    /// Total tail length from last activity to RRC_IDLE.
    pub total: SimDuration,
}

impl TailConfig {
    /// The 4G LTE tail measured by Huang et al.: 20 ms short DRX + 100 ms
    /// long DRX inside an 11.5 s total tail.
    pub fn lte() -> Self {
        TailConfig {
            short_drx: SimDuration::from_millis(20),
            long_drx: SimDuration::from_millis(100),
            total: SimDuration::from_millis(11_500),
        }
    }

    /// A 3G (UMTS) tail: DCH + FACH demotion chain, ~17 s in total — longer
    /// but at lower power than LTE.
    pub fn threeg() -> Self {
        TailConfig {
            short_drx: SimDuration::from_millis(0),
            long_drx: SimDuration::from_millis(0),
            total: SimDuration::from_millis(17_000),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the DRX phases do not fit inside the total tail.
    pub fn validate(&self) {
        assert!(
            self.short_drx + self.long_drx <= self.total,
            "DRX phases ({} + {}) exceed total tail {}",
            self.short_drx,
            self.long_drx,
            self.total
        );
    }
}

/// Full power/timing model of one radio technology on one handset.
///
/// # Example
///
/// ```
/// use senseaid_radio::RadioPowerProfile;
///
/// let lte = RadioPowerProfile::lte_galaxy_s4();
/// assert!(lte.promotion_mw > 100.0 * lte.idle_mw, "promotion dwarfs idle");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerProfile {
    /// Human-readable profile name.
    pub name: String,
    /// RRC_IDLE power in milliwatts.
    pub idle_mw: f64,
    /// Power during IDLE→CONNECTED promotion, milliwatts.
    pub promotion_mw: f64,
    /// Duration of the promotion control-message exchange.
    pub promotion_duration: SimDuration,
    /// Power while actively transferring, milliwatts.
    pub transfer_mw: f64,
    /// Average power while in the tail (any DRX phase), milliwatts.
    pub tail_mw: f64,
    /// Sustained uplink goodput, bytes per second.
    pub uplink_bytes_per_sec: f64,
    /// Sustained downlink goodput, bytes per second.
    pub downlink_bytes_per_sec: f64,
    /// Per-transfer latency floor (connection/RTT), applied to every
    /// transfer regardless of size.
    pub min_transfer_duration: SimDuration,
    /// Tail timing.
    pub tail: TailConfig,
}

impl RadioPowerProfile {
    /// 4G LTE on a Samsung Galaxy S4 (the study handset).
    ///
    /// Sources: idle 11 mW and promotion ≈1300 mW from the paper (§1, §2.2,
    /// citing Huang et al.); tail/transfer powers from Huang et al. Table 3.
    pub fn lte_galaxy_s4() -> Self {
        RadioPowerProfile {
            name: "LTE/GalaxyS4".to_owned(),
            idle_mw: 11.0,
            promotion_mw: 1300.0,
            promotion_duration: SimDuration::from_millis(260),
            transfer_mw: 1650.0,
            tail_mw: 1060.0,
            uplink_bytes_per_sec: 2_500_000.0, // ~20 Mbps
            downlink_bytes_per_sec: 6_000_000.0,
            min_transfer_duration: SimDuration::from_millis(70),
            tail: TailConfig::lte(),
        }
    }

    /// 3G (UMTS/HSPA) on the same handset: slower promotion, longer but
    /// lower-power tail, lower throughput. Fig 2's "3G costs less than LTE"
    /// observation falls out of these numbers.
    pub fn threeg_galaxy_s4() -> Self {
        RadioPowerProfile {
            name: "3G/GalaxyS4".to_owned(),
            idle_mw: 10.0,
            promotion_mw: 800.0,
            promotion_duration: SimDuration::from_millis(2_000),
            transfer_mw: 900.0,
            // Blend of the DCH (~800 mW) and FACH (~460 mW) tail phases.
            tail_mw: 560.0,
            uplink_bytes_per_sec: 250_000.0, // ~2 Mbps
            downlink_bytes_per_sec: 700_000.0,
            min_transfer_duration: SimDuration::from_millis(200),
            tail: TailConfig::threeg(),
        }
    }

    /// Time to push `bytes` in the given direction, including the latency
    /// floor.
    pub fn transfer_duration(&self, bytes: u64, uplink: bool) -> SimDuration {
        let rate = if uplink {
            self.uplink_bytes_per_sec
        } else {
            self.downlink_bytes_per_sec
        };
        let secs = bytes as f64 / rate;
        self.min_transfer_duration + SimDuration::from_secs_f64(secs)
    }

    /// Marginal energy of a full cold-start upload: promotion + transfer +
    /// complete tail, minus the idle power the radio would have drawn
    /// anyway over that span, in Joules. This is the unit cost the Periodic
    /// baseline pays on every sample, and it matches
    /// [`crate::Radio::transmit`]'s `marginal_j` for an idle radio exactly.
    pub fn cold_upload_energy_j(&self, bytes: u64) -> f64 {
        let xfer_dur = self.transfer_duration(bytes, true);
        let promo = crate::mw_over(self.promotion_mw - self.idle_mw, self.promotion_duration);
        let xfer = crate::mw_over(self.transfer_mw - self.idle_mw, xfer_dur);
        let tail = crate::mw_over(self.tail_mw - self.idle_mw, self.tail.total);
        promo + xfer + tail
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any power or rate is non-positive/non-finite, or the tail
    /// configuration is inconsistent.
    pub fn validate(&self) {
        for (label, v) in [
            ("idle_mw", self.idle_mw),
            ("promotion_mw", self.promotion_mw),
            ("transfer_mw", self.transfer_mw),
            ("tail_mw", self.tail_mw),
            ("uplink_bytes_per_sec", self.uplink_bytes_per_sec),
            ("downlink_bytes_per_sec", self.downlink_bytes_per_sec),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{label} must be positive, got {v}"
            );
        }
        self.tail.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        RadioPowerProfile::lte_galaxy_s4().validate();
        RadioPowerProfile::threeg_galaxy_s4().validate();
        TailConfig::lte().validate();
        TailConfig::threeg().validate();
    }

    #[test]
    fn lte_matches_paper_constants() {
        let lte = RadioPowerProfile::lte_galaxy_s4();
        assert_eq!(lte.idle_mw, 11.0);
        assert_eq!(lte.promotion_mw, 1300.0);
        // The paper quotes an ~11 s tail (11.5 s measured in Fig 6).
        assert_eq!(lte.tail.total, SimDuration::from_millis(11_500));
    }

    #[test]
    fn transfer_duration_has_latency_floor() {
        let lte = RadioPowerProfile::lte_galaxy_s4();
        let tiny = lte.transfer_duration(1, true);
        assert!(tiny >= lte.min_transfer_duration);
        let big = lte.transfer_duration(10_000_000, true);
        assert!(big > tiny * 10);
    }

    #[test]
    fn uplink_slower_than_downlink() {
        let lte = RadioPowerProfile::lte_galaxy_s4();
        let up = lte.transfer_duration(1_000_000, true);
        let down = lte.transfer_duration(1_000_000, false);
        assert!(up > down);
    }

    #[test]
    fn cold_upload_dominated_by_tail() {
        let lte = RadioPowerProfile::lte_galaxy_s4();
        // 600-byte crowdsensing payload (paper §2.2).
        let total = lte.cold_upload_energy_j(600);
        let tail_only = crate::mw_over(lte.tail_mw, lte.tail.total);
        assert!(
            tail_only / total > 0.8,
            "tail should dominate a small cold upload: tail {tail_only} of {total}"
        );
        // And a cold upload costs on the order of 10+ Joules.
        assert!(total > 10.0 && total < 30.0, "got {total}");
    }

    #[test]
    fn lte_cold_upload_costs_more_than_3g_small_payload() {
        // For the small payloads of crowdsensing, the LTE tail is so much
        // more power-hungry that LTE costs more despite being faster —
        // the Fig 2 observation.
        let lte = RadioPowerProfile::lte_galaxy_s4().cold_upload_energy_j(600);
        let threeg = RadioPowerProfile::threeg_galaxy_s4().cold_upload_energy_j(600);
        assert!(lte > threeg, "lte {lte} vs 3g {threeg}");
    }

    #[test]
    #[should_panic(expected = "exceed total tail")]
    fn tail_validation_catches_bad_phases() {
        TailConfig {
            short_drx: SimDuration::from_secs(10),
            long_drx: SimDuration::from_secs(10),
            total: SimDuration::from_secs(5),
        }
        .validate();
    }
}
