//! Figure 13 — average per-device energy vs concurrent tasks
//! (Experiment 3).
//!
//! Paper: more concurrent tasks cost more for everyone, but Sense-Aid's
//! orchestration (batching multiple tasks' readings into one tail upload)
//! makes its curve grow far more slowly than PCS's and Periodic's — the
//! benefit is maximal at many tasks.

use senseaid_workload::ExperimentGrid;

use crate::chart::series_table;
use crate::framework::FrameworkKind;
use crate::report::{two_pct_bar_j, SweepTable};

/// Runs the Experiment 3 sweep for all four frameworks.
pub fn sweep(grid: &ExperimentGrid, seed: u64) -> SweepTable {
    SweepTable::run(
        &FrameworkKind::study_set(),
        &grid.points(),
        grid.point_labels(),
        seed,
    )
}

/// Renders Fig 13 on the paper's Experiment 3 grid.
pub fn run(seed: u64) -> String {
    render(&ExperimentGrid::experiment3(), seed)
}

/// Renders Fig 13 on an arbitrary grid.
pub fn render(grid: &ExperimentGrid, seed: u64) -> String {
    let table = sweep(grid, seed);
    let series: Vec<(String, Vec<f64>)> = table
        .frameworks
        .iter()
        .map(|f| (f.label(), table.avg_energy_series(*f)))
        .collect();
    let mut out = String::from(
        "=== Figure 13: average crowdsensing energy per device vs concurrent tasks ===\n",
    );
    out.push_str(&series_table(
        "tasks",
        &table.point_labels,
        &series,
        "J/device",
    ));
    out.push_str(&format!("\n2% battery bar = {:.0} J\n", two_pct_bar_j()));
    let (avg_b, min_b, max_b) =
        table.savings_summary(FrameworkKind::SenseAidBasic, FrameworkKind::pcs_default());
    let (avg_c, min_c, max_c) = table.savings_summary(
        FrameworkKind::SenseAidComplete,
        FrameworkKind::pcs_default(),
    );
    let (avg_bp, ..) = table.savings_summary(FrameworkKind::SenseAidBasic, FrameworkKind::Periodic);
    let (avg_cp, ..) =
        table.savings_summary(FrameworkKind::SenseAidComplete, FrameworkKind::Periodic);
    out.push_str(&format!(
        "savings vs PCS — Basic avg {avg_b:.1}% ({min_b:.1}%, {max_b:.1}%); Complete avg {avg_c:.1}% ({min_c:.1}%, {max_c:.1}%)\n",
    ));
    out.push_str(&format!(
        "savings vs Periodic — Basic avg {avg_bp:.1}%; Complete avg {avg_cp:.1}%\n"
    ));
    out.push_str(
        "paper reference — vs PCS: Basic 35.4% (16.7%, 57.8%), Complete 42.4% (25.7%, 62.4%); vs Periodic: Basic 85.3%, Complete 86.9%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_sim::SimDuration;
    use senseaid_workload::ScenarioConfig;

    fn small_grid() -> ExperimentGrid {
        let base = match ExperimentGrid::experiment3() {
            ExperimentGrid::ConcurrentTasks { base, .. } => ScenarioConfig {
                test_duration: SimDuration::from_mins(30),
                group_size: 14,
                ..base
            },
            _ => unreachable!(),
        };
        ExperimentGrid::ConcurrentTasks {
            base,
            task_counts: vec![2, 8],
        }
    }

    #[test]
    fn more_tasks_cost_more_for_every_framework() {
        let table = sweep(&small_grid(), 13);
        for f in FrameworkKind::study_set() {
            let series = table.avg_energy_series(f);
            assert!(
                series[1] > series[0],
                "{f}: 8 tasks must cost more than 2 ({series:?})"
            );
        }
    }

    #[test]
    fn senseaid_grows_slower_than_baselines() {
        let table = sweep(&small_grid(), 13);
        let growth = |f: FrameworkKind| {
            let s = table.avg_energy_series(f);
            s[1] / s[0].max(1e-9)
        };
        assert!(
            growth(FrameworkKind::SenseAidComplete) < growth(FrameworkKind::Periodic),
            "SA must scale with task count better than Periodic"
        );
    }

    #[test]
    fn senseaid_cheapest_at_many_tasks() {
        let table = sweep(&small_grid(), 13);
        let at_many = |f: FrameworkKind| table.avg_energy_series(f)[1];
        assert!(at_many(FrameworkKind::SenseAidComplete) < at_many(FrameworkKind::pcs_default()));
        assert!(at_many(FrameworkKind::SenseAidBasic) < at_many(FrameworkKind::Periodic));
    }
}
