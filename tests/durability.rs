//! Durable persistence: twin-server equivalence through crash, recovery,
//! and seeded storage faults.
//!
//! The contract under test: a server that crashes and recovers *from
//! disk* — snapshot chain plus journal replay — is observably identical
//! to a twin that never crashed, modulo the truthfully-reported lost
//! window. Under fault injection (torn writes, truncation, bit flips,
//! dropped writes) recovery must never panic, never load corrupt state,
//! and must land exactly on the state produced by the surviving prefix
//! of operations.

use std::collections::BTreeMap;

use senseaid::cellnet::{CellId, CellularNetwork};
use senseaid::core::{
    FaultingStorage, MemStorage, PersistConfig, SenseAidConfig, SenseAidServer, StorageFaultPlan,
    TaskSpec,
};
use senseaid::device::{ImeiHash, Sensor, SensorReading};
use senseaid::geo::{CircleRegion, GeoPoint, TowerSite};
use senseaid::sim::{SimDuration, SimTime};

fn centre() -> GeoPoint {
    GeoPoint::new(40.4284, -86.9138)
}

fn network() -> CellularNetwork {
    let sites: Vec<TowerSite> = (0..4)
        .map(|i| TowerSite {
            index: i,
            position: centre().offset_by_meters(
                (i as f64 / 2.0).floor() * 1500.0 - 750.0,
                (i % 2) as f64 * 1500.0 - 750.0,
            ),
            coverage_m: 1500.0,
        })
        .collect();
    CellularNetwork::new(sites)
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn offset(x: u64, lane: u64) -> f64 {
    let u = mix(x ^ lane.wrapping_mul(0xa076_1d64_78bd_642f)) >> 11;
    (u as f64 / (1u64 << 53) as f64) * 2000.0 - 1000.0
}

fn spec(radius: f64, duration_min: u64) -> TaskSpec {
    TaskSpec::builder(Sensor::Barometer)
        .region(CircleRegion::new(centre(), radius))
        .spatial_density(3)
        .sampling_period(SimDuration::from_mins(5))
        .sampling_duration(SimDuration::from_mins(duration_min))
        .build()
        .unwrap()
}

/// One recorded API call, so a reference server can replay the exact
/// prefix that survived on disk.
#[derive(Clone)]
enum Call {
    Register(u64, f64, SimTime),
    Observe(ImeiHash, GeoPoint, Option<CellId>),
    UpdateState(ImeiHash, f64, f64, SimTime),
    SubmitTask(TaskSpec, SimTime),
    Poll(SimTime),
    Deliver(ImeiHash, senseaid::core::RequestId, SensorReading, SimTime),
    Drain,
}

fn apply(call: &Call, server: &mut SenseAidServer) {
    match call {
        Call::Register(imei, battery, t) => {
            let _ = server.register_device(
                ImeiHash(*imei),
                495.0,
                15.0,
                *battery,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                *t,
            );
        }
        Call::Observe(imei, p, cell) => {
            let _ = server.observe_device(*imei, *p, *cell);
        }
        Call::UpdateState(imei, battery, cs, t) => {
            let _ = server.update_device_state(*imei, *battery, *cs, *t);
        }
        Call::SubmitTask(spec, t) => {
            let _ = server.submit_task(spec.clone(), *t);
        }
        Call::Poll(t) => {
            let _ = server.poll(*t);
        }
        Call::Deliver(imei, request, reading, t) => {
            let _ = server.submit_sensed_data(*imei, *request, reading, *t);
        }
        Call::Drain => {
            let _ = server.drain_outbox();
        }
    }
}

fn fresh_server() -> SenseAidServer {
    let mut server = SenseAidServer::new(SenseAidConfig::default());
    server.set_topology(network());
    server
}

/// Drives `server` through `rounds` five-minute scheduling rounds with
/// device churn, recording every call. Snapshots every other round.
/// Returns the recorded trace, the generation → calls-at-persist map,
/// and the crash instant.
fn drive(
    server: &mut SenseAidServer,
    devices: u64,
    rounds: u64,
    seed: u64,
) -> (Vec<Call>, BTreeMap<u64, usize>, SimTime) {
    let net = network();
    let mut calls: Vec<Call> = Vec::new();
    let mut gen_calls: BTreeMap<u64, usize> = BTreeMap::new();
    if let Some(g) = server.persist_generation() {
        gen_calls.insert(g, 0);
    }
    let t0 = SimTime::ZERO;
    for imei in 1..=devices {
        let call = Call::Register(imei, 40.0 + (mix(seed ^ imei) % 61) as f64, t0);
        apply(&call, server);
        calls.push(call);
        let p = centre().offset_by_meters(offset(seed ^ imei, 1), offset(seed ^ imei, 2));
        let call = Call::Observe(ImeiHash(imei), p, net.serving_cell(p));
        apply(&call, server);
        calls.push(call);
    }
    let call = Call::SubmitTask(spec(900.0, 5 * rounds + 30), t0);
    apply(&call, server);
    calls.push(call);

    let mut now = t0;
    for round in 0..rounds {
        now += SimDuration::from_mins(5);
        // A slice of devices reports fresh state each round.
        for k in 0..devices / 20 {
            let imei = 1 + (mix(seed ^ round ^ k) % devices);
            let call = Call::UpdateState(
                ImeiHash(imei),
                30.0 + (mix(imei ^ round) % 70) as f64,
                (round * 2) as f64,
                now,
            );
            apply(&call, server);
            calls.push(call);
        }
        let assignments = server.poll(now).unwrap();
        calls.push(Call::Poll(now));
        for a in &assignments {
            for imei in &a.devices {
                let reading = SensorReading {
                    sensor: Sensor::Barometer,
                    value: 1000.0 + (imei.0 % 30) as f64,
                    taken_at: a.sample_at,
                    position: centre(),
                };
                let call = Call::Deliver(*imei, a.request, reading, now);
                apply(&call, server);
                calls.push(call);
            }
        }
        apply(&Call::Drain, server);
        calls.push(Call::Drain);
        if round % 2 == 1 {
            server.take_snapshot(now);
            if let Some(g) = server.persist_generation() {
                gen_calls.entry(g).or_insert(calls.len());
            }
        }
    }
    (calls, gen_calls, now)
}

/// Crash + recover-from-disk with no faults is invisible: the recovered
/// server is byte-identical to the never-crashed twin and stays in
/// lockstep through further rounds.
#[test]
fn recovery_without_faults_matches_never_crashed_twin() {
    let mut durable = fresh_server();
    durable
        .enable_persistence(
            Box::new(MemStorage::new()),
            PersistConfig::default(),
            SimTime::ZERO,
        )
        .unwrap();
    let mut twin = fresh_server();

    let (calls, _gens, t_crash) = drive(&mut durable, 400, 8, 7);
    for call in &calls {
        apply(call, &mut twin);
    }

    // The process dies; only the storage backend survives.
    durable.crash();
    let storage = durable.detach_persistence().unwrap();
    let mut recovered = fresh_server();
    let report = recovered
        .recover_from_storage(storage, PersistConfig::default(), t_crash)
        .unwrap();
    assert!(!report.cold_start);
    assert_eq!(report.journal_bytes_dropped, 0);
    assert!(report.corrupt_generations.is_empty());
    assert_eq!(report.lost_window, None);
    assert!(report.loaded_generation.is_some());

    // Equalise the reconcile pass (recovery ran one) and compare.
    let t = t_crash + SimDuration::from_mins(5);
    assert_eq!(recovered.poll(t).unwrap(), twin.poll(t).unwrap());
    assert_eq!(recovered.durable_digest(t), twin.durable_digest(t));
    assert_eq!(recovered.drain_outbox(), twin.drain_outbox());

    // And it stays in lockstep afterwards.
    let mut t = t;
    for _ in 0..4 {
        t += SimDuration::from_mins(5);
        let a = recovered.poll(t).unwrap();
        let b = twin.poll(t).unwrap();
        assert_eq!(a, b, "post-recovery divergence at {t:?}");
        for assignment in &a {
            for imei in &assignment.devices {
                let reading = SensorReading {
                    sensor: Sensor::Barometer,
                    value: 1010.0,
                    taken_at: assignment.sample_at,
                    position: centre(),
                };
                for s in [&mut recovered, &mut twin] {
                    s.submit_sensed_data(*imei, assignment.request, &reading, t)
                        .unwrap();
                }
            }
        }
    }
    assert_eq!(recovered.durable_digest(t), twin.durable_digest(t));
    assert_eq!(recovered.stats(), twin.stats());
}

/// Under every seeded fault plan, recovery lands exactly on the state a
/// reference server reaches by replaying the surviving call prefix:
/// snapshot chain fallback skips corrupt generations, journal replay
/// stops at the first invalid record, and the report accounts for the
/// difference.
#[test]
fn faulted_recovery_equals_surviving_prefix() {
    for preset in ["torn-write", "truncate", "bit-flip", "stale", "mixed"] {
        for fault_seed in [11_u64, 23, 47] {
            let plan = StorageFaultPlan::preset(preset, fault_seed).unwrap();
            let storage = FaultingStorage::new(Box::new(MemStorage::new()), plan);

            let mut durable = fresh_server();
            durable
                .enable_persistence(Box::new(storage), PersistConfig::default(), SimTime::ZERO)
                .unwrap();
            let (calls, gen_calls, t_crash) = drive(&mut durable, 300, 10, 5);

            durable.crash();
            let storage = durable.detach_persistence().unwrap();
            let mut recovered = fresh_server();
            let report = recovered
                .recover_from_storage(storage, PersistConfig::default(), t_crash)
                .expect("matrix presets never exhaust the disk");

            // The surviving prefix: calls covered by the loaded
            // generation plus the replayed journal suffix.
            let base = match report.loaded_generation {
                Some(g) => *gen_calls
                    .get(&g)
                    .expect("loaded generation was written by this run"),
                None => 0,
            };
            let survived = base + report.ops_replayed as usize;
            assert!(
                survived <= calls.len(),
                "{preset}/{fault_seed}: replay invented {survived} > {} calls",
                calls.len()
            );
            let mut reference = fresh_server();
            for call in &calls[..survived] {
                apply(call, &mut reference);
            }

            // Truthfulness: anything lost is reported, never papered
            // over.
            if survived < calls.len() {
                assert!(
                    report.lost_window.is_some() || report.loaded_generation.is_some(),
                    "{preset}/{fault_seed}: loss without a report"
                );
            }
            if let Some((from, to)) = report.lost_window {
                assert!(from <= to);
                assert_eq!(to, t_crash);
            }

            // Equalise the reconcile pass and compare bytes.
            let t = t_crash + SimDuration::from_mins(5);
            assert_eq!(
                recovered.poll(t).unwrap(),
                reference.poll(t).unwrap(),
                "{preset}/{fault_seed}: assignments diverged"
            );
            assert_eq!(
                recovered.durable_digest(t),
                reference.durable_digest(t),
                "{preset}/{fault_seed}: recovered state is not the surviving prefix"
            );
        }
    }
}

/// Surgical corruption of the newest snapshot demotes recovery to the
/// previous intact generation — the fallback ladder, pinned
/// deterministically.
#[test]
fn corrupt_newest_generation_falls_back_to_older() {
    let mut durable = fresh_server();
    durable
        .enable_persistence(
            Box::new(MemStorage::new()),
            // Full snapshots only: each generation stands alone.
            PersistConfig { full_every: 1 },
            SimTime::ZERO,
        )
        .unwrap();
    let (_calls, _gens, t_crash) = drive(&mut durable, 200, 6, 3);
    let newest = durable.persist_generation().unwrap();

    durable.crash();
    let mut storage = durable.detach_persistence().unwrap();
    // Flip one byte in the middle of the newest snapshot.
    let name = format!("snap-{newest:08}");
    let mut bytes = storage.read(&name).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    storage.write(&name, &bytes).unwrap();

    let mut recovered = fresh_server();
    let report = recovered
        .recover_from_storage(storage, PersistConfig { full_every: 1 }, t_crash)
        .unwrap();
    assert!(!report.cold_start, "older generations must still load");
    assert!(report.corrupt_generations.contains(&newest));
    let loaded = report.loaded_generation.unwrap();
    assert!(loaded < newest, "must not load the corrupt generation");
    assert!(recovered.device_count() > 0);
}

/// With *everything* on disk destroyed, recovery cold-starts truthfully:
/// no panic, no invented state, and the report says total loss.
#[test]
fn total_corruption_cold_starts_truthfully() {
    let mut durable = fresh_server();
    durable
        .enable_persistence(
            Box::new(MemStorage::new()),
            PersistConfig::default(),
            SimTime::ZERO,
        )
        .unwrap();
    let (_calls, _gens, t_crash) = drive(&mut durable, 150, 4, 9);

    durable.crash();
    let mut storage = durable.detach_persistence().unwrap();
    for name in storage.list().unwrap() {
        let bytes = storage.read(&name).unwrap();
        let garbled: Vec<u8> = bytes.iter().map(|b| b ^ 0xA5).collect();
        storage.write(&name, &garbled).unwrap();
    }

    let mut recovered = fresh_server();
    let report = recovered
        .recover_from_storage(storage, PersistConfig::default(), t_crash)
        .unwrap();
    assert!(report.cold_start);
    assert_eq!(report.loaded_generation, None);
    assert_eq!(report.ops_replayed, 0);
    assert!(report.journal_bytes_dropped > 0, "loss must be accounted");
    assert_eq!(report.lost_window, Some((SimTime::ZERO, t_crash)));
    assert_eq!(recovered.device_count(), 0);
    // The recovered (empty) server still works.
    recovered.poll(t_crash).unwrap();
}

/// Steady-state deltas persist at least 10× fewer bytes than full
/// snapshots once churn is a small fraction of the population.
#[test]
fn delta_snapshots_are_an_order_of_magnitude_smaller() {
    let mut durable = fresh_server();
    durable
        .enable_persistence(
            Box::new(MemStorage::new()),
            // Never force a full: measure pure delta cost.
            PersistConfig {
                full_every: u32::MAX,
            },
            SimTime::ZERO,
        )
        .unwrap();
    let (_calls, _gens, t_end) = drive(&mut durable, 2_000, 6, 13);

    let stats = durable.persist_stats().unwrap();
    assert!(
        stats.snapshots_delta >= 2,
        "drive must have persisted deltas"
    );
    let delta_bytes = stats.snapshot_bytes_last;
    let full_bytes = durable.durable_digest(t_end).len() as u64;
    assert!(
        full_bytes >= 10 * delta_bytes,
        "steady-state delta ({delta_bytes} B) must be ≥10× smaller than full ({full_bytes} B)"
    );
}

/// Satellite: `recover_at` with no snapshot is a deterministic cold
/// start, not a silent no-op. Devices and leases survive; in-flight
/// assignments are cleared — overdue requests expire truthfully,
/// still-viable ones are re-announced.
#[test]
fn recover_at_without_snapshot_cold_starts() {
    let net = network();
    let mut server = fresh_server();
    let t0 = SimTime::ZERO;
    for imei in 1..=50u64 {
        let p = centre().offset_by_meters(offset(imei, 1), offset(imei, 2));
        server
            .register_device(
                ImeiHash(imei),
                495.0,
                15.0,
                80.0,
                vec![Sensor::Barometer],
                "GalaxyS4".to_owned(),
                t0,
            )
            .unwrap();
        server
            .observe_device(ImeiHash(imei), p, net.serving_cell(p))
            .unwrap();
    }
    server.submit_task(spec(900.0, 60), t0).unwrap();
    let t1 = SimTime::from_mins(5);
    let assignments = server.poll(t1).unwrap();
    assert!(!assignments.is_empty());
    let in_flight: Vec<_> = assignments.iter().map(|a| a.request).collect();
    for id in &in_flight {
        assert_eq!(
            server.request_status(*id),
            Some(senseaid::core::RequestStatus::Assigned)
        );
    }

    // Crash with work in flight; recover without ever snapshotting.
    server.crash();
    let t2 = t1 + SimDuration::from_mins(2);
    server.recover_at(t2);

    // Devices survive; no in-flight request is still silently Assigned.
    assert_eq!(server.device_count(), 50);
    for id in &in_flight {
        let status = server.request_status(*id).unwrap();
        assert_ne!(
            status,
            senseaid::core::RequestStatus::Assigned,
            "cold start must clear in-flight tasking"
        );
    }
    // Still-viable requests are re-announced on the next poll.
    let reassigned = server.poll(t2).unwrap();
    assert!(
        !reassigned.is_empty(),
        "viable requests must be re-announced after cold start"
    );
}
