//! Minimal text charts for the bench output.

/// Renders a horizontal bar chart. Each row is `(label, value)`; bars are
/// scaled to `width` characters against the maximum value.
///
/// # Example
///
/// ```
/// let text = senseaid_bench::chart::bar_chart(
///     &[("a".to_owned(), 2.0), ("b".to_owned(), 4.0)],
///     "J",
///     20,
/// );
/// assert!(text.contains('█'));
/// ```
pub fn bar_chart(rows: &[(String, f64)], unit: &str, width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {value:.1} {unit}\n",
            "█".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
        ));
    }
    out
}

/// Renders a grouped series table: one row per x-label, one column per
/// series, values formatted with one decimal.
pub fn series_table(
    x_header: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    unit: &str,
) -> String {
    let xw = x_labels
        .iter()
        .map(String::len)
        .chain([x_header.len()])
        .max()
        .unwrap_or(8)
        .max(8);
    let mut out = format!("{x_header:<xw$}");
    for (name, _) in series {
        out.push_str(&format!(" | {name:>14}"));
    }
    out.push_str(&format!("  ({unit})\n"));
    out.push_str(&"-".repeat(xw + series.len() * 17 + 8));
    out.push('\n');
    for (i, x) in x_labels.iter().enumerate() {
        out.push_str(&format!("{x:<xw$}"));
        for (_, values) in series {
            match values.get(i) {
                Some(v) => out.push_str(&format!(" | {v:>14.1}")),
                None => out.push_str(&format!(" | {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let text = bar_chart(
            &[("small".to_owned(), 1.0), ("big".to_owned(), 10.0)],
            "J",
            10,
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let bars = |s: &str| s.matches('█').count();
        assert_eq!(bars(lines[1]), 10, "max value fills the width");
        assert_eq!(bars(lines[0]), 1);
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let text = bar_chart(&[("z".to_owned(), 0.0)], "J", 10);
        assert!(!text.contains('█'));
    }

    #[test]
    fn series_table_aligns_columns() {
        let text = series_table(
            "radius",
            &["100 m".to_owned(), "200 m".to_owned()],
            &[
                ("PCS".to_owned(), vec![5.0, 7.0]),
                ("SA".to_owned(), vec![1.0, 2.0]),
            ],
            "J",
        );
        assert!(text.contains("radius"));
        assert!(text.contains("PCS"));
        assert!(text.contains("7.0"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn series_table_pads_missing_points() {
        let text = series_table(
            "x",
            &["a".to_owned(), "b".to_owned()],
            &[("s".to_owned(), vec![1.0])],
            "J",
        );
        assert!(text.contains('-'));
    }
}
