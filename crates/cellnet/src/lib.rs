//! Cellular network substrate for the Sense-Aid reproduction.
//!
//! The paper (Fig 4) deploys the Sense-Aid server *between* the eNodeBs
//! and the core network: eNodeBs that see crowdsensing traffic route it
//! through the Sense-Aid server (path 2), everything else takes the
//! traditional path 1 — which doubles as the fail-safe when the Sense-Aid
//! server crashes. The network knows each device's location at *cell-tower
//! granularity*, which is exactly the location input the middleware uses
//! (no GPS needed, §3.2).
//!
//! This crate supplies:
//!
//! * [`CellularNetwork`] — tower layout, UE attachment, region queries,
//!   handover counting;
//! * [`CoreNetwork`] — path-1/path-2 routing with Sense-Aid server
//!   failure injection;
//! * [`message`] — the wire messages between client library, Sense-Aid
//!   server, and application servers, with a compact binary codec (the
//!   study's crowdsensing payload is ~600 bytes) plus the sequenced
//!   delivery [`Envelope`] the reliable path wraps them in;
//! * [`fault`] — a deterministic fault injector (loss, jitter,
//!   duplication, reordering, scheduled eNodeB and server outages),
//!   replayable from a single fault seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod message;
pub mod routing;
pub mod topology;

pub use fault::{
    ChurnKind, ChurnWave, FaultEvent, FaultInjector, FaultPlan, FaultStats, LinkDir, Verdict,
};
pub use message::{Envelope, Message, WireError};
pub use routing::{CoreNetwork, OutageInterval, RoutePath};
pub use topology::{CellId, CellularNetwork};
