//! Adversarial byte-stream fuzzing for the frame layer: whatever garbage
//! precedes or interrupts a stream, every intact frame after it must
//! still decode, and the assembler must report (not hide) the carnage.
//!
//! The garbage alphabets here exclude `b'S'` (the first magic byte): a
//! random byte run that *happens* to spell a plausible frame header can
//! legitimately leave the assembler waiting inside a phantom frame —
//! that is what the connection supervisor's idle deadline is for, not
//! the resync scan. With fake sync points excluded, the guarantees are
//! exact: one corruption event costs exactly the bytes it mangled, and
//! every healthy frame decodes.

use proptest::prelude::*;

use senseaid_serve::wire::{decode_frame, WireFrame, WireRequest};
use senseaid_serve::{encode_request, FrameAssembler};

/// First byte of the frame magic (`"SAID"`); see the module doc for why
/// the fuzz keeps it out of injected garbage.
const MAGIC_FIRST: u8 = b'S';

/// Drains the assembler, counting decoded frames and corruption events.
fn drain(assembler: &mut FrameAssembler) -> (Vec<WireRequest>, u64) {
    let mut decoded = Vec::new();
    let mut errors = 0u64;
    loop {
        match assembler.next_frame() {
            Ok(Some((kind, payload))) => match decode_frame(kind, &payload) {
                Ok(WireFrame::Request(req)) => decoded.push(req),
                Ok(other) => panic!("request frames only in this fuzz: {other:?}"),
                Err(_) => errors += 1,
            },
            Ok(None) => return (decoded, errors),
            Err(_) => errors += 1,
        }
    }
}

/// Small-integer requests whose encodings never contain the magic's
/// first byte, so resync can only ever lock onto a true frame boundary.
fn sample_requests(imeis: &[u64]) -> Vec<WireRequest> {
    imeis
        .iter()
        .map(|&imei| {
            let imei = imei % 80;
            if imei % 2 == 0 {
                WireRequest::Hello { imei }
            } else {
                WireRequest::Comm { imei }
            }
        })
        .collect()
}

proptest! {
    // A garbage prefix costs error reports, never the frames behind it:
    // the assembler resyncs to the next true magic boundary and decodes
    // every frame that follows.
    #[test]
    fn garbage_prefix_never_eats_the_frames_behind_it(
        raw_garbage in proptest::collection::vec(0u8..255, 1..300),
        imeis in proptest::collection::vec(0u64..80, 1..12),
    ) {
        let garbage: Vec<u8> = raw_garbage
            .iter()
            .map(|&b| if b == MAGIC_FIRST { b ^ 0x01 } else { b })
            .collect();
        let requests = sample_requests(&imeis);
        let mut assembler = FrameAssembler::new();
        assembler.extend(&garbage);
        for req in &requests {
            assembler.extend(&encode_request(req));
        }
        let (decoded, errors) = drain(&mut assembler);
        prop_assert_eq!(&decoded, &requests);
        prop_assert!(errors >= 1, "garbage went entirely unreported");
        prop_assert!(assembler.resyncs() >= 1);
        prop_assert!(assembler.skipped_bytes() >= garbage.len() as u64);
        prop_assert_eq!(assembler.pending(), 0);
    }

    // Mid-stream corruption inside one victim frame's payload or CRC:
    // the victim dies loudly (one CRC refusal), the frames before it
    // decoded already, and resync recovers every frame behind it.
    #[test]
    fn midstream_corruption_is_contained_to_the_victim_frame(
        imeis in proptest::collection::vec(0u64..80, 3..14),
        victim_pick in 0usize..64,
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
    ) {
        let requests = sample_requests(&imeis);
        let victim = victim_pick % requests.len();
        let mut assembler = FrameAssembler::new();
        let mut expected = Vec::new();
        let mut corrupted = false;
        for (i, req) in requests.iter().enumerate() {
            let mut frame = encode_request(req);
            if i == victim {
                let original = frame.clone();
                // Header bytes stay intact (11-byte prefix): header
                // corruption is the garbage-prefix case above. Flips must
                // not forge the magic's first byte either — see the
                // module doc.
                let body = 11..frame.len();
                for &(at, xor) in &flips {
                    let at = body.start + at % body.len();
                    frame[at] ^= xor;
                    if frame[at] == MAGIC_FIRST {
                        frame[at] ^= 0x01;
                    }
                }
                corrupted = frame != original;
            }
            if i != victim || !corrupted {
                expected.push(req.clone());
            }
            assembler.extend(&frame);
        }
        let (decoded, errors) = drain(&mut assembler);
        prop_assert_eq!(&decoded, &expected);
        if corrupted {
            prop_assert!(errors >= 1, "corruption went entirely unreported");
            prop_assert!(assembler.resyncs() >= 1);
        } else {
            prop_assert_eq!(errors, 0);
        }
        prop_assert_eq!(assembler.pending(), 0);
    }

    // Valid frames chopped into arbitrary chunks always reassemble
    // byte-perfectly — resync never fires on a clean stream.
    #[test]
    fn clean_streams_never_resync(
        imeis in proptest::collection::vec(0u64..80, 1..12),
        chunk in 1usize..64,
    ) {
        let requests = sample_requests(&imeis);
        let mut bytes = Vec::new();
        for req in &requests {
            bytes.extend_from_slice(&encode_request(req));
        }
        let mut assembler = FrameAssembler::new();
        let mut decoded = Vec::new();
        for piece in bytes.chunks(chunk) {
            assembler.extend(piece);
            let (frames, errors) = drain(&mut assembler);
            prop_assert_eq!(errors, 0);
            decoded.extend(frames);
        }
        prop_assert_eq!(decoded, requests);
        prop_assert_eq!(assembler.resyncs(), 0);
        prop_assert_eq!(assembler.skipped_bytes(), 0);
        prop_assert_eq!(assembler.pending(), 0);
    }
}
