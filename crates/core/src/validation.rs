//! Sensed-data plausibility validation.
//!
//! The paper's "qualified devices" definition (§3) drops devices whose
//! submitted data is invalid. [`ReadingValidator`] applies per-sensor
//! plausibility ranges; the server flags offending devices so they stop
//! being selected.

use serde::{Deserialize, Serialize};

use senseaid_device::{Sensor, SensorReading};

use crate::error::SenseAidError;

/// Per-sensor plausibility ranges.
///
/// # Example
///
/// ```
/// use senseaid_core::ReadingValidator;
/// use senseaid_device::Sensor;
///
/// let v = ReadingValidator::default();
/// assert!(v.plausible(Sensor::Barometer, 1013.25));
/// assert!(!v.plausible(Sensor::Barometer, -5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReadingValidator {
    _priv: (),
}

impl ReadingValidator {
    /// A validator with the default plausibility ranges.
    pub fn new() -> Self {
        ReadingValidator::default()
    }

    /// The plausible `[min, max]` range for a sensor's values.
    pub fn range(&self, sensor: Sensor) -> (f64, f64) {
        match sensor {
            // Sea-level extremes ever recorded are ~870–1085 hPa; allow
            // altitude headroom.
            Sensor::Barometer => (300.0, 1100.0),
            Sensor::Thermometer => (-60.0, 60.0),
            Sensor::Humidity => (0.0, 100.0),
            Sensor::Light => (0.0, 200_000.0),
            Sensor::Accelerometer => (-80.0, 80.0),
            Sensor::Magnetometer => (-5_000.0, 5_000.0),
            Sensor::Gyroscope => (-50.0, 50.0),
            Sensor::Gps => (-500.0, 500.0),
            Sensor::Microphone => (-200.0, 200.0),
            Sensor::Camera => (f64::MIN, f64::MAX),
        }
    }

    /// Whether `value` is plausible for `sensor`.
    pub fn plausible(&self, sensor: Sensor, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        let (lo, hi) = self.range(sensor);
        (lo..=hi).contains(&value)
    }

    /// Validates a reading.
    ///
    /// # Errors
    ///
    /// [`SenseAidError::InvalidReading`] when the value is implausible.
    pub fn validate(&self, reading: &SensorReading) -> Result<(), SenseAidError> {
        if self.plausible(reading.sensor, reading.value) {
            Ok(())
        } else {
            Err(SenseAidError::InvalidReading {
                sensor: reading.sensor,
                value: reading.value,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_geo::GeoPoint;
    use senseaid_sim::SimTime;

    fn reading(sensor: Sensor, value: f64) -> SensorReading {
        SensorReading {
            sensor,
            value,
            taken_at: SimTime::ZERO,
            position: GeoPoint::new(40.0, -86.0),
        }
    }

    #[test]
    fn normal_pressure_is_plausible() {
        let v = ReadingValidator::new();
        assert!(v.validate(&reading(Sensor::Barometer, 1013.0)).is_ok());
        assert!(v.validate(&reading(Sensor::Barometer, 985.5)).is_ok());
    }

    #[test]
    fn out_of_range_pressure_is_rejected() {
        let v = ReadingValidator::new();
        for bad in [-10.0, 0.0, 299.9, 1100.1, 5000.0] {
            let err = v.validate(&reading(Sensor::Barometer, bad)).unwrap_err();
            assert!(matches!(err, SenseAidError::InvalidReading { .. }), "{bad}");
        }
    }

    #[test]
    fn non_finite_values_are_rejected() {
        let v = ReadingValidator::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!v.plausible(Sensor::Barometer, bad));
        }
    }

    #[test]
    fn humidity_bounds() {
        let v = ReadingValidator::new();
        assert!(v.plausible(Sensor::Humidity, 0.0));
        assert!(v.plausible(Sensor::Humidity, 100.0));
        assert!(!v.plausible(Sensor::Humidity, 100.5));
        assert!(!v.plausible(Sensor::Humidity, -0.5));
    }

    #[test]
    fn every_sensor_has_an_ordered_range() {
        let v = ReadingValidator::new();
        for s in Sensor::ALL {
            let (lo, hi) = v.range(s);
            assert!(lo < hi, "{s}: range inverted");
        }
    }
}
