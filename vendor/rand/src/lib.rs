//! Offline stand-in for `rand`, covering the subset `senseaid_sim::SimRng`
//! uses: a seedable `StdRng` plus `Rng`/`RngExt`/`SeedableRng` traits with
//! `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — small, fast,
//! and statistically solid enough for the workspace's sample-mean tests.
//! It makes no attempt at cryptographic quality, and its streams differ
//! from the real `StdRng` (any fixed-seed golden values would change when
//! swapping in the real crate; the workspace has none).

use std::ops::Range;

/// Core generator trait: a source of raw 64-bit values.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution sampled by [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one value from `rng`'s stream.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range types accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Convenience sampling methods, mirroring the `rand` 0.10 `Rng` surface.
pub trait RngExt: Rng {
    /// A value drawn uniformly from `T`'s natural distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform value in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::random_from(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::random_from(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against floating rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with splitmix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_with_plausible_mean() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = r.random_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&f));
            let i = r.random_range(10usize..20);
            assert!((10..20).contains(&i));
            let s = r.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
