//! Deadline-sorted run and wait queues (paper §3.2, Task Handler).
//!
//! Both queues hold [`Request`]s ordered by deadline (earliest first).
//! Requests that cannot be satisfied right away (`n > N`: more devices
//! requested than qualified) move to the wait queue, which is re-checked
//! periodically (Algorithm 1's `wait_check_thread`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use senseaid_sim::SimTime;

use crate::request::Request;

/// Heap entry ordering requests by `(deadline, sample_at, id)`, earliest
/// first.
#[derive(Debug, Clone)]
pub struct QueuedRequest(pub Request);

impl PartialEq for QueuedRequest {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for QueuedRequest {}

impl QueuedRequest {
    fn key(&self) -> (SimTime, SimTime, u64) {
        (self.0.deadline(), self.0.sample_at(), self.0.id().0)
    }
}

impl PartialOrd for QueuedRequest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedRequest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on the key.
        other.key().cmp(&self.key())
    }
}

/// A deadline-sorted request queue.
///
/// # Example
///
/// ```
/// use senseaid_core::{RequestQueue, Request, RequestId, TaskId, TaskSpec};
/// use senseaid_device::Sensor;
/// use senseaid_geo::{CircleRegion, GeoPoint};
/// use senseaid_sim::{SimDuration, SimTime};
///
/// # fn spec() -> TaskSpec {
/// #     TaskSpec::builder(Sensor::Barometer)
/// #         .region(CircleRegion::new(GeoPoint::new(40.0, -86.0), 500.0))
/// #         .sampling_period(SimDuration::from_mins(5))
/// #         .sampling_duration(SimDuration::from_mins(30))
/// #         .build().unwrap()
/// # }
/// let mut q = RequestQueue::new();
/// q.push(Request::new(RequestId(1), TaskId(1), spec(), SimTime::from_mins(10), SimTime::from_mins(15)));
/// q.push(Request::new(RequestId(2), TaskId(1), spec(), SimTime::from_mins(1), SimTime::from_mins(6)));
/// // Earliest deadline pops first.
/// assert_eq!(q.pop().unwrap().id(), RequestId(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    heap: BinaryHeap<QueuedRequest>,
}

impl RequestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RequestQueue::default()
    }

    /// Inserts a request.
    pub fn push(&mut self, request: Request) {
        self.heap.push(QueuedRequest(request));
    }

    /// Removes and returns the earliest-deadline request.
    pub fn pop(&mut self) -> Option<Request> {
        self.heap.pop().map(|q| q.0)
    }

    /// The earliest-deadline request without removing it.
    pub fn peek(&self) -> Option<&Request> {
        self.heap.peek().map(|q| &q.0)
    }

    /// Pops the earliest request only if its sampling instant is due at
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Request> {
        if self.peek().map(|r| r.sample_at() <= now).unwrap_or(false) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes the request with `id`, if queued, returning it (used by the
    /// shed path to evict a chosen victim from the wait queue).
    pub fn remove(&mut self, id: crate::request::RequestId) -> Option<Request> {
        let mut removed = None;
        let kept: Vec<QueuedRequest> = self
            .heap
            .drain()
            .filter_map(|q| {
                if q.0.id() == id && removed.is_none() {
                    removed = Some(q.0);
                    None
                } else {
                    Some(q)
                }
            })
            .collect();
        self.heap = kept.into();
        removed
    }

    /// Removes every request belonging to `task`, returning how many were
    /// dropped (used by `delete_task`).
    pub fn remove_task(&mut self, task: crate::task::TaskId) -> usize {
        let before = self.heap.len();
        let kept: Vec<QueuedRequest> = self.heap.drain().filter(|q| q.0.task() != task).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }

    /// Iterates over queued requests in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.heap.iter().map(|q| &q.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use crate::task::{TaskId, TaskSpec};
    use senseaid_device::Sensor;
    use senseaid_geo::{CircleRegion, GeoPoint};
    use senseaid_sim::SimDuration;

    fn spec() -> TaskSpec {
        TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(GeoPoint::new(40.0, -86.0), 500.0))
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(30))
            .build()
            .unwrap()
    }

    fn req(id: u64, task: u64, sample_min: u64, deadline_min: u64) -> Request {
        Request::new(
            RequestId(id),
            TaskId(task),
            spec(),
            SimTime::from_mins(sample_min),
            SimTime::from_mins(deadline_min),
        )
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 0, 30));
        q.push(req(2, 1, 0, 10));
        q.push(req(3, 1, 0, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id().0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn equal_deadlines_break_ties_by_sample_then_id() {
        let mut q = RequestQueue::new();
        q.push(req(5, 1, 3, 10));
        q.push(req(4, 1, 3, 10));
        q.push(req(9, 1, 1, 10));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id().0).collect();
        assert_eq!(order, vec![9, 4, 5]);
    }

    #[test]
    fn pop_due_respects_sampling_instant() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 10, 15));
        assert!(q.pop_due(SimTime::from_mins(5)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(SimTime::from_mins(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn remove_task_drops_only_that_task() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 0, 10));
        q.push(req(2, 2, 0, 11));
        q.push(req(3, 1, 0, 12));
        let removed = q.remove_task(TaskId(1));
        assert_eq!(removed, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id(), RequestId(2));
    }

    #[test]
    fn remove_extracts_one_request_by_id() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 0, 10));
        q.push(req(2, 1, 0, 11));
        q.push(req(3, 1, 0, 12));
        let removed = q.remove(RequestId(2)).unwrap();
        assert_eq!(removed.id(), RequestId(2));
        assert!(q.remove(RequestId(2)).is_none(), "already gone");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id().0).collect();
        assert_eq!(order, vec![1, 3], "heap order survives the rebuild");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 0, 10));
        assert_eq!(q.peek().unwrap().id(), RequestId(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn iter_sees_everything() {
        let mut q = RequestQueue::new();
        q.push(req(1, 1, 0, 10));
        q.push(req(2, 1, 0, 11));
        let mut ids: Vec<u64> = q.iter().map(|r| r.id().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }
}
