//! Regenerates the paper's Figure 07 output. Run with
//! `cargo bench -p senseaid-bench --bench fig07_qualified_vs_radius`.

use senseaid_bench::experiments::{fig07, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", fig07::run(seed));
}
