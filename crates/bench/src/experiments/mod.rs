//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(seed) -> String`: the text the corresponding
//! `cargo bench` target prints. Returning strings keeps the experiments
//! testable — the integration suite asserts on shapes (who wins, how
//! curves move) without re-parsing stdout.

pub mod ablations;
pub mod ext_adaptive;
pub mod ext_chaos;
pub mod ext_live_chaos;
pub mod ext_million;
pub mod ext_overload;
pub mod ext_scalability;
pub mod ext_timeliness;
pub mod fig01;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod tab02;

/// The default experiment seed (the paper's publication year).
pub const DEFAULT_SEED: u64 = 2017;
