//! The pluggable selection-policy boundary.
//!
//! The paper's scored selector (§3.2) is one way to answer "which of the
//! qualified devices serve this request?". The comparison frameworks
//! answer it differently — Periodic and PCS have *every* qualified device
//! sense. [`SelectionPolicy`] abstracts that decision so the baselines in
//! `senseaid-baselines` can plug into the same server shell the real
//! middleware uses, and ablations can swap policies without forking the
//! control plane.

use std::fmt;

use senseaid_device::ImeiHash;
use senseaid_sim::SimTime;

use crate::request::Request;
use crate::selector::{DeviceSelector, HardCutoffs, InsufficientDevices, SelectorWeights};
use crate::store::CandidateRow;

/// Decides which qualified devices serve a request.
///
/// `candidates` arrive in ascending IMEI-hash order regardless of how many
/// shards they were gathered from, so a policy that treats the slice
/// order-insensitively (or deterministically in that order) keeps the
/// whole control plane deterministic for any shard count. Policies that
/// need mutable state can use interior mutability.
pub trait SelectionPolicy: fmt::Debug + Send + Sync {
    /// Whether this policy's answers depend only on the *set* of
    /// candidates, never on their order in the slice. Declaring `true`
    /// lets the coordinator's parallel poll pipeline gather candidates in
    /// shard-walk order (skipping the per-shard IMEI sort and the
    /// cross-shard ordered merge) without changing any output byte.
    ///
    /// The default is `false` — order-sensitivity is assumed, and such
    /// policies always see the canonical ascending-IMEI slice.
    /// [`ScoredPolicy`] overrides this: its selection is a total-order
    /// top-k over `(score, imei)`, its shortfall report carries only the
    /// order-independent eligible count, and its `would_*` probes count
    /// eligibles. Only return `true` if *every* trait method (including
    /// overridden probes) is order-insensitive.
    fn candidate_order_insensitive(&self) -> bool {
        false
    }

    /// Picks the devices to serve `request`, or reports the shortfall that
    /// should park it in the wait queue.
    ///
    /// # Errors
    ///
    /// [`InsufficientDevices`] when the policy cannot field a viable set;
    /// the request is then parked in the wait queue (`n > N`).
    fn select(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
    ) -> Result<Vec<ImeiHash>, InsufficientDevices>;

    /// Whether [`select`](Self::select) would succeed for `request` over
    /// `candidates`, without committing to a selection.
    ///
    /// The wait-queue recheck uses this to decide whether a parked
    /// request is worth promoting back to the run queue, so it must not
    /// answer `true` when `select` would fail: an optimistic answer
    /// promotes the request only for selection to park it again, and an
    /// event-driven driver would then re-poll the same instant forever.
    /// The default dry-runs `select`; policies with cheap eligibility
    /// rules should override it (see [`ScoredPolicy`]).
    fn would_select(&self, request: &Request, candidates: &[CandidateRow], now: SimTime) -> bool {
        self.select(request, candidates, now).is_ok()
    }

    /// [`select`](Self::select) with a telemetry probe. The default simply
    /// delegates, so policies without interesting internals (the
    /// baselines' select-all) need not care; [`ScoredPolicy`] overrides it
    /// to record the selector's pool/eligibility/outcome instant.
    fn select_traced(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
        _tel: &senseaid_telemetry::Telemetry,
    ) -> Result<Vec<ImeiHash>, InsufficientDevices> {
        self.select(request, candidates, now)
    }

    /// Best-effort selection for degraded mode: like
    /// [`select`](Self::select) but may return *fewer* than the request's
    /// density when supply is short. An empty vector means no candidate is
    /// currently serviceable at all and the request should stay parked.
    ///
    /// The default only serves full selections (so policies that never
    /// opted into partial service keep their strict semantics);
    /// [`ScoredPolicy`] overrides it to score and take the best available
    /// subset.
    fn select_partial(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
    ) -> Vec<ImeiHash> {
        self.select(request, candidates, now).unwrap_or_default()
    }

    /// Whether [`select_partial`](Self::select_partial) would return any
    /// device at all. The wait-queue recheck uses this to decide whether a
    /// degraded task's parked request is worth promoting; like
    /// [`would_select`](Self::would_select) it must not answer `true` when
    /// the real call would come back empty.
    fn would_select_partial(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
    ) -> bool {
        !self.select_partial(request, candidates, now).is_empty()
    }
}

/// One entry the shed policy weighs when a wait queue overflows: the
/// request plus how many devices currently qualify for it (its supply).
#[derive(Debug, Clone, Copy)]
pub struct ShedCandidate<'a> {
    /// The parked (or incoming) request.
    pub request: &'a Request,
    /// Qualified devices available to it right now.
    pub qualified: usize,
}

impl ShedCandidate<'_> {
    /// How many more qualified devices the request still needs — zero
    /// when supply already covers its density.
    pub fn deficit(&self) -> usize {
        self.request.density().saturating_sub(self.qualified)
    }
}

/// Decides which request to sacrifice when the wait queue is at its
/// configured bound: either the incoming request or one already parked.
///
/// `parked` is sorted by the global queue key `(deadline, sample_at, id)`
/// regardless of shard layout, so a policy that decides deterministically
/// over that order keeps shedding byte-identical for any shard count. The
/// returned id must be the incoming request's or one of the parked ones.
pub trait ShedPolicy: fmt::Debug + Send + Sync {
    /// Picks the victim to shed.
    fn choose_victim(
        &self,
        incoming: &ShedCandidate<'_>,
        parked: &[ShedCandidate<'_>],
        now: SimTime,
    ) -> crate::request::RequestId;
}

/// The built-in shed policies by name, for `Copy`/serializable config
/// surfaces (harness options, experiment sweeps) that cannot carry a
/// boxed trait object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicyKind {
    /// [`DropNewest`].
    #[default]
    DropNewest,
    /// [`DropLowestDeficit`].
    DropLowestDeficit,
    /// [`DeadlineAware`].
    DeadlineAware,
}

impl ShedPolicyKind {
    /// The policy object this name denotes.
    pub fn boxed(self) -> Box<dyn ShedPolicy> {
        match self {
            ShedPolicyKind::DropNewest => Box::new(DropNewest),
            ShedPolicyKind::DropLowestDeficit => Box::new(DropLowestDeficit),
            ShedPolicyKind::DeadlineAware => Box::new(DeadlineAware),
        }
    }

    /// Short display label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicyKind::DropNewest => "drop-newest",
            ShedPolicyKind::DropLowestDeficit => "drop-lowest-deficit",
            ShedPolicyKind::DeadlineAware => "deadline-aware",
        }
    }
}

/// Tail-drop: the incoming request is shed, everything already parked
/// keeps its place. The simplest policy and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropNewest;

impl ShedPolicy for DropNewest {
    fn choose_victim(
        &self,
        incoming: &ShedCandidate<'_>,
        _parked: &[ShedCandidate<'_>],
        _now: SimTime,
    ) -> crate::request::RequestId {
        incoming.request.id()
    }
}

/// Sheds the candidate with the lowest density deficit (ties broken
/// towards the newest id). A near-zero-deficit request parks only
/// transiently — its shortfall is about to clear, and its task's
/// subsequent requests cover the same region — while a high-deficit
/// request represents an under-covered area whose only chance of being
/// served is to keep waiting for supply.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropLowestDeficit;

impl ShedPolicy for DropLowestDeficit {
    fn choose_victim(
        &self,
        incoming: &ShedCandidate<'_>,
        parked: &[ShedCandidate<'_>],
        _now: SimTime,
    ) -> crate::request::RequestId {
        std::iter::once(incoming)
            .chain(parked)
            .min_by_key(|c| (c.deficit(), u64::MAX - c.request.id().0))
            .expect("incoming always present")
            .request
            .id()
    }
}

/// Sheds the candidate with the least slack — the earliest deadline, by
/// the global queue key. Under sustained overload that request would most
/// likely have expired unserved anyway, so dropping it costs the least
/// expected goodput.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineAware;

impl ShedPolicy for DeadlineAware {
    fn choose_victim(
        &self,
        incoming: &ShedCandidate<'_>,
        parked: &[ShedCandidate<'_>],
        _now: SimTime,
    ) -> crate::request::RequestId {
        std::iter::once(incoming)
            .chain(parked)
            .min_by_key(|c| {
                (
                    c.request.deadline(),
                    c.request.sample_at(),
                    c.request.id().0,
                )
            })
            .expect("incoming always present")
            .request
            .id()
    }
}

/// The paper's device selector as a policy: score every eligible candidate
/// with `Score(i) = α·E + β·U + γ·(100 − CBL) + φ·TTL + ρ·(1 − R)` (lower
/// wins) and take the `spatial_density` best.
#[derive(Debug, Clone)]
pub struct ScoredPolicy {
    selector: DeviceSelector,
}

impl ScoredPolicy {
    /// A policy over the given weights and hard cutoffs.
    pub fn new(weights: SelectorWeights, cutoffs: HardCutoffs) -> Self {
        ScoredPolicy {
            selector: DeviceSelector::new(weights, cutoffs),
        }
    }

    /// The underlying selector.
    pub fn selector(&self) -> &DeviceSelector {
        &self.selector
    }
}

impl SelectionPolicy for ScoredPolicy {
    fn candidate_order_insensitive(&self) -> bool {
        // Selection is top-k over the total order `(score, imei)`; the
        // shortfall report carries only the eligible count; the probes
        // count eligibles. None of them read slice positions.
        true
    }

    fn select(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
    ) -> Result<Vec<ImeiHash>, InsufficientDevices> {
        self.selector.select(request.density(), candidates, now)
    }

    fn would_select(&self, request: &Request, candidates: &[CandidateRow], _now: SimTime) -> bool {
        // Eligibility is time-independent, so counting cutoffs survivors
        // answers exactly what `select` would decide — without scoring.
        let needed = request.density();
        candidates
            .iter()
            .filter(|r| self.selector.eligible(r))
            .take(needed)
            .count()
            >= needed
    }

    fn select_traced(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
        tel: &senseaid_telemetry::Telemetry,
    ) -> Result<Vec<ImeiHash>, InsufficientDevices> {
        self.selector
            .select_traced(request.density(), candidates, now, tel)
    }

    fn select_partial(
        &self,
        request: &Request,
        candidates: &[CandidateRow],
        now: SimTime,
    ) -> Vec<ImeiHash> {
        // Score the eligible pool as usual, but ask only for as many
        // devices as it can actually field.
        let eligible = candidates
            .iter()
            .filter(|r| self.selector.eligible(r))
            .count();
        let n = request.density().min(eligible);
        if n == 0 {
            return Vec::new();
        }
        self.selector.select(n, candidates, now).unwrap_or_default()
    }

    fn would_select_partial(
        &self,
        _request: &Request,
        candidates: &[CandidateRow],
        _now: SimTime,
    ) -> bool {
        candidates.iter().any(|r| self.selector.eligible(r))
    }
}
