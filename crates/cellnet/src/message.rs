//! Wire messages between the client library, the Sense-Aid server, and
//! crowdsensing application servers, with a compact binary codec.
//!
//! Nothing privacy-sensitive crosses this boundary: devices are identified
//! by IMEI *hash* only (paper §3.2/§6).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// An unknown message tag byte.
    UnknownTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("message truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Client → server: sign up for a crowdsensing campaign.
    Register {
        /// Hashed device identity.
        imei_hash: u64,
        /// User's total crowdsensing energy budget, Joules.
        energy_budget_j: f64,
        /// Battery floor below which the device must not be selected, %.
        critical_battery_pct: f64,
    },
    /// Client → server: leave the campaign.
    Deregister {
        /// Hashed device identity.
        imei_hash: u64,
    },
    /// Client → server: periodic device-state report (sent inside radio
    /// tails; see paper §4).
    StateUpdate {
        /// Hashed device identity.
        imei_hash: u64,
        /// Current battery level, %.
        battery_pct: f64,
        /// Energy spent on crowdsensing so far, Joules.
        cs_energy_j: f64,
    },
    /// Server → client: sample this sensor and upload by the deadline.
    TaskAssignment {
        /// Request identifier (one task generates many requests).
        request_id: u64,
        /// Android-style sensor type code.
        sensor_code: i32,
        /// When to take the sample, µs of sim time.
        sample_at_us: u64,
        /// Latest acceptable upload instant, µs of sim time.
        upload_deadline_us: u64,
    },
    /// Client → server: a sensed value.
    SensedData {
        /// Request identifier this fulfils.
        request_id: u64,
        /// Hashed device identity.
        imei_hash: u64,
        /// Android-style sensor type code.
        sensor_code: i32,
        /// The reading.
        value: f64,
        /// When the sample was taken, µs of sim time.
        taken_at_us: u64,
    },
    /// Server → client: cumulative acknowledgement of a sequenced
    /// [`Envelope`]. Receiving `Ack { seq }` releases every in-flight
    /// batch with sequence number ≤ `seq` on that device.
    Ack {
        /// Hashed device identity the ack is addressed to.
        imei_hash: u64,
        /// Highest envelope sequence number accepted so far.
        seq: u64,
    },
}

const TAG_REGISTER: u8 = 0x01;
const TAG_DEREGISTER: u8 = 0x02;
const TAG_STATE_UPDATE: u8 = 0x03;
const TAG_TASK_ASSIGNMENT: u8 = 0x04;
const TAG_SENSED_DATA: u8 = 0x05;
const TAG_ACK: u8 = 0x06;
const TAG_ENVELOPE: u8 = 0x07;

impl Message {
    /// Encodes the message to bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use senseaid_cellnet::Message;
    ///
    /// let msg = Message::Deregister { imei_hash: 42 };
    /// let bytes = msg.encode();
    /// assert_eq!(Message::decode(&bytes)?, msg);
    /// # Ok::<(), senseaid_cellnet::WireError>(())
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match *self {
            Message::Register {
                imei_hash,
                energy_budget_j,
                critical_battery_pct,
            } => {
                buf.put_u8(TAG_REGISTER);
                buf.put_u64(imei_hash);
                buf.put_f64(energy_budget_j);
                buf.put_f64(critical_battery_pct);
            }
            Message::Deregister { imei_hash } => {
                buf.put_u8(TAG_DEREGISTER);
                buf.put_u64(imei_hash);
            }
            Message::StateUpdate {
                imei_hash,
                battery_pct,
                cs_energy_j,
            } => {
                buf.put_u8(TAG_STATE_UPDATE);
                buf.put_u64(imei_hash);
                buf.put_f64(battery_pct);
                buf.put_f64(cs_energy_j);
            }
            Message::TaskAssignment {
                request_id,
                sensor_code,
                sample_at_us,
                upload_deadline_us,
            } => {
                buf.put_u8(TAG_TASK_ASSIGNMENT);
                buf.put_u64(request_id);
                buf.put_i32(sensor_code);
                buf.put_u64(sample_at_us);
                buf.put_u64(upload_deadline_us);
            }
            Message::SensedData {
                request_id,
                imei_hash,
                sensor_code,
                value,
                taken_at_us,
            } => {
                buf.put_u8(TAG_SENSED_DATA);
                buf.put_u64(request_id);
                buf.put_u64(imei_hash);
                buf.put_i32(sensor_code);
                buf.put_f64(value);
                buf.put_u64(taken_at_us);
            }
            Message::Ack { imei_hash, seq } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64(imei_hash);
                buf.put_u64(seq);
            }
        }
        buf.freeze()
    }

    /// The exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Message::Register { .. } => 8 + 8 + 8,
            Message::Deregister { .. } => 8,
            Message::StateUpdate { .. } => 8 + 8 + 8,
            Message::TaskAssignment { .. } => 8 + 4 + 8 + 8,
            Message::SensedData { .. } => 8 + 8 + 4 + 8 + 8,
            Message::Ack { .. } => 8 + 8,
        }
    }

    /// Decodes a message from bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the buffer is too short;
    /// [`WireError::UnknownTag`] on an unrecognised tag byte.
    pub fn decode(mut buf: &[u8]) -> Result<Message, WireError> {
        if buf.is_empty() {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_REGISTER => {
                check(&buf, 24)?;
                Message::Register {
                    imei_hash: buf.get_u64(),
                    energy_budget_j: buf.get_f64(),
                    critical_battery_pct: buf.get_f64(),
                }
            }
            TAG_DEREGISTER => {
                check(&buf, 8)?;
                Message::Deregister {
                    imei_hash: buf.get_u64(),
                }
            }
            TAG_STATE_UPDATE => {
                check(&buf, 24)?;
                Message::StateUpdate {
                    imei_hash: buf.get_u64(),
                    battery_pct: buf.get_f64(),
                    cs_energy_j: buf.get_f64(),
                }
            }
            TAG_TASK_ASSIGNMENT => {
                check(&buf, 28)?;
                Message::TaskAssignment {
                    request_id: buf.get_u64(),
                    sensor_code: buf.get_i32(),
                    sample_at_us: buf.get_u64(),
                    upload_deadline_us: buf.get_u64(),
                }
            }
            TAG_SENSED_DATA => {
                check(&buf, 36)?;
                Message::SensedData {
                    request_id: buf.get_u64(),
                    imei_hash: buf.get_u64(),
                    sensor_code: buf.get_i32(),
                    value: buf.get_f64(),
                    taken_at_us: buf.get_u64(),
                }
            }
            TAG_ACK => {
                check(&buf, 16)?;
                Message::Ack {
                    imei_hash: buf.get_u64(),
                    seq: buf.get_u64(),
                }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        Ok(msg)
    }
}

/// A sequenced delivery envelope for the reliable client↔server path.
///
/// The envelope carries the sender's identity and a per-device
/// monotonically increasing sequence number, so the receiver can ack,
/// de-duplicate retransmits, and detect reordering. Encoded as
/// `[0x07][seq u64][imei u64][inner message]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Per-device sequence number, starting at 1.
    pub seq: u64,
    /// Hashed identity of the sending device.
    pub imei_hash: u64,
    /// The wrapped protocol message.
    pub msg: Message,
}

impl Envelope {
    /// Wraps `msg` with the given sequence number and sender.
    pub fn new(seq: u64, imei_hash: u64, msg: Message) -> Self {
        Envelope {
            seq,
            imei_hash,
            msg,
        }
    }

    /// Encodes the envelope (header + inner message) to bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use senseaid_cellnet::{Envelope, Message};
    ///
    /// let env = Envelope::new(3, 42, Message::Deregister { imei_hash: 42 });
    /// assert_eq!(Envelope::decode(&env.encode())?, env);
    /// # Ok::<(), senseaid_cellnet::WireError>(())
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(TAG_ENVELOPE);
        buf.put_u64(self.seq);
        buf.put_u64(self.imei_hash);
        buf.put_slice(&self.msg.encode());
        buf.freeze()
    }

    /// The exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + 8 + 8 + self.msg.encoded_len()
    }

    /// Decodes an envelope from bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the buffer is too short;
    /// [`WireError::UnknownTag`] if the leading byte is not the envelope
    /// tag or the inner message tag is unrecognised.
    pub fn decode(mut buf: &[u8]) -> Result<Envelope, WireError> {
        if buf.is_empty() {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        if tag != TAG_ENVELOPE {
            return Err(WireError::UnknownTag(tag));
        }
        check(&buf, 16)?;
        let seq = buf.get_u64();
        let imei_hash = buf.get_u64();
        let msg = Message::decode(buf)?;
        Ok(Envelope {
            seq,
            imei_hash,
            msg,
        })
    }
}

fn check(buf: &&[u8], need: usize) -> Result<(), WireError> {
    if buf.len() < need {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Register {
                imei_hash: 0xdead_beef,
                energy_budget_j: 495.0,
                critical_battery_pct: 15.0,
            },
            Message::Deregister {
                imei_hash: 0xdead_beef,
            },
            Message::StateUpdate {
                imei_hash: 1,
                battery_pct: 87.5,
                cs_energy_j: 12.25,
            },
            Message::TaskAssignment {
                request_id: 7,
                sensor_code: 6,
                sample_at_us: 1_000_000,
                upload_deadline_us: 2_000_000,
            },
            Message::SensedData {
                request_id: 7,
                imei_hash: 1,
                sensor_code: 6,
                value: 1013.25,
                taken_at_us: 1_500_000,
            },
            Message::Ack {
                imei_hash: 1,
                seq: 9,
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(Message::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_buffers_error() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert_eq!(
                    Message::decode(&bytes[..cut]),
                    Err(WireError::Truncated),
                    "cut at {cut} of {msg:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_errors() {
        assert_eq!(
            Message::decode(&[0xff, 0, 0]),
            Err(WireError::UnknownTag(0xff))
        );
    }

    #[test]
    fn messages_are_small() {
        // Control-plane messages must be far below the ~600-byte data
        // payload for the "negligible control overhead" assumption to hold.
        for msg in samples() {
            assert!(
                msg.encoded_len() <= 64,
                "{msg:?} is {} bytes",
                msg.encoded_len()
            );
        }
    }

    #[test]
    fn envelope_round_trip_and_truncation() {
        for msg in samples() {
            let env = Envelope::new(11, 0xfeed, msg);
            let bytes = env.encode();
            assert_eq!(bytes.len(), env.encoded_len());
            assert_eq!(Envelope::decode(&bytes).unwrap(), env);
            for cut in 0..bytes.len() {
                assert_eq!(
                    Envelope::decode(&bytes[..cut]),
                    Err(WireError::Truncated),
                    "cut at {cut} of {env:?}"
                );
            }
        }
    }

    #[test]
    fn envelope_rejects_non_envelope_tag() {
        let plain = Message::Deregister { imei_hash: 1 }.encode();
        assert_eq!(Envelope::decode(&plain), Err(WireError::UnknownTag(0x02)));
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::Truncated.to_string(), "message truncated");
        assert!(WireError::UnknownTag(7).to_string().contains("0x07"));
    }
}
