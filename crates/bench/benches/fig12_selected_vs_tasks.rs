//! Regenerates the paper's Figure 12 output. Run with
//! `cargo bench -p senseaid-bench --bench fig12_selected_vs_tasks`.

use senseaid_bench::experiments::{fig12, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", fig12::run(seed));
}
