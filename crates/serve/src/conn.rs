//! Stream reassembly and the transport-generic connection pump.
//!
//! TCP (and the loopback queues) deliver bytes, not frames: a read may
//! end mid-header, mid-payload, or carry three frames at once.
//! [`FrameAssembler`] turns that byte soup back into whole codec frames
//! using the self-describing 11-byte header (magic, version, kind,
//! payload length) to know how much to wait for, then validates the CRC
//! via `open_frame_prefix`. Corrupt input — bad magic, wrong version, a
//! hostile length, a CRC mismatch — is a typed error, but the stream is
//! not condemned: the assembler *resynchronises* by scanning forward to
//! the next plausible frame boundary (the next byte run matching the
//! magic prefix), so later valid frames still decode. Callers count the
//! error; whether to keep the connection is their policy call.
//!
//! [`Connection`] packages an assembler with any
//! [`Transport`] plus an outgoing byte buffer, so the
//! per-shard TCP event loops and the sim/loopback replay drive frames
//! through *exactly the same code* — which is what makes the
//! byte-identity test meaningful.

use senseaid_core::persist::codec::{
    open_frame_prefix, CodecError, FRAME_OVERHEAD, MAGIC, VERSION,
};
use senseaid_core::runtime::{Transport, TransportError};

use crate::wire::{WireError, MAX_FRAME_BYTES};

/// Bytes of header needed before the total frame length is known:
/// magic (4) + version (2) + kind (1) + payload length (4).
const HEADER_BYTES: usize = FRAME_OVERHEAD - 4;

/// Reassembles whole codec frames from an ordered byte stream.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    skipped_bytes: u64,
    resyncs: u64,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet assembled into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Bytes discarded while scanning past corrupt input.
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped_bytes
    }

    /// How many times the assembler had to resynchronise.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Drops at least one byte, then scans forward to the next position
    /// whose available bytes match the magic prefix — the next *plausible*
    /// frame boundary. Everything before it is counted as skipped. A
    /// candidate can still turn out corrupt (magic-looking bytes inside a
    /// damaged payload); the next `next_frame` call then resyncs again,
    /// each round consuming at least one byte, so the scan always
    /// terminates.
    fn resync(&mut self) {
        let mut cut = self.buf.len();
        for i in 1..self.buf.len() {
            let avail = (self.buf.len() - i).min(MAGIC.len());
            if self.buf[i..i + avail] == MAGIC[..avail] {
                cut = i;
                break;
            }
        }
        self.skipped_bytes += cut as u64;
        self.resyncs += 1;
        self.buf.drain(..cut);
    }

    /// Pops the next complete frame as `(kind, payload)`, or `None` when
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] as soon as the buffered prefix cannot be the
    /// start of a valid frame (bad magic/version, a length beyond
    /// [`MAX_FRAME_BYTES`], or a CRC/structure failure once the declared
    /// bytes arrived). The error reports the corruption; the assembler
    /// has already resynchronised past it, so calling again resumes at
    /// the next plausible frame boundary.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        if self.buf.len() < HEADER_BYTES {
            // Fail fast on garbage: whatever magic bytes we do have must
            // match, or this was never a frame start.
            let have = self.buf.len().min(MAGIC.len());
            if self.buf[..have] != MAGIC[..have] {
                self.resync();
                return Err(WireError::Frame(CodecError::BadMagic));
            }
            return Ok(None);
        }
        if self.buf[..4] != MAGIC {
            self.resync();
            return Err(WireError::Frame(CodecError::BadMagic));
        }
        let version = u16::from_le_bytes([self.buf[4], self.buf[5]]);
        if version != VERSION {
            self.resync();
            return Err(WireError::Frame(CodecError::BadVersion(version)));
        }
        let payload_len = u32::from_le_bytes([self.buf[7], self.buf[8], self.buf[9], self.buf[10]]);
        let total = FRAME_OVERHEAD + payload_len as usize;
        if total > MAX_FRAME_BYTES {
            self.resync();
            return Err(WireError::Oversized { declared: total });
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        match open_frame_prefix(&self.buf) {
            Ok((kind, payload, consumed)) => {
                let payload = payload.to_vec();
                self.buf.drain(..consumed);
                Ok(Some((kind, payload)))
            }
            Err(e) => {
                self.resync();
                Err(WireError::Frame(e))
            }
        }
    }
}

/// Why a connection pump failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The transport failed or closed.
    Transport(TransportError),
    /// The peer sent bytes that cannot be a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Transport(e) => write!(f, "{e}"),
            ConnError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConnError {}

impl From<TransportError> for ConnError {
    fn from(e: TransportError) -> Self {
        ConnError::Transport(e)
    }
}

impl From<WireError> for ConnError {
    fn from(e: WireError) -> Self {
        ConnError::Wire(e)
    }
}

/// One framed conversation over any [`Transport`]: reassembles inbound
/// frames, buffers outbound bytes across partial writes.
#[derive(Debug)]
pub struct Connection<T: Transport> {
    transport: T,
    assembler: FrameAssembler,
    outbuf: Vec<u8>,
    bad_frames: u64,
}

impl<T: Transport> Connection<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> Self {
        Connection {
            transport,
            assembler: FrameAssembler::new(),
            outbuf: Vec::new(),
            bad_frames: 0,
        }
    }

    /// Corrupt-frame events absorbed by stream resync since the last
    /// call; resets the counter. The connection itself stays usable —
    /// dropping a peer over corruption is the caller's policy.
    pub fn take_bad_frames(&mut self) -> u64 {
        std::mem::take(&mut self.bad_frames)
    }

    /// Whether the underlying transport is still usable.
    pub fn is_open(&self) -> bool {
        self.transport.is_open()
    }

    /// The underlying transport (for mode-specific teardown).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Queues a sealed frame for sending; actual writes happen in
    /// [`flush`](Self::flush).
    pub fn queue(&mut self, frame: &[u8]) {
        self.outbuf.extend_from_slice(frame);
    }

    /// Bytes queued but not yet accepted by the transport.
    pub fn unsent(&self) -> usize {
        self.outbuf.len()
    }

    /// Writes as much queued output as the transport will take.
    /// Returns `true` once the queue is empty.
    ///
    /// # Errors
    ///
    /// [`ConnError::Transport`] when the stream closed or failed.
    pub fn flush(&mut self) -> Result<bool, ConnError> {
        while !self.outbuf.is_empty() {
            let sent = self.transport.send(&self.outbuf)?;
            if sent == 0 {
                return Ok(false); // back-pressured; try again later
            }
            self.outbuf.drain(..sent);
        }
        Ok(true)
    }

    /// Reads everything currently available and returns the complete
    /// frames it yielded, as `(kind, payload)` pairs.
    ///
    /// # Errors
    ///
    /// [`ConnError::Transport`] on EOF or stream failure. Corrupt frames
    /// are *not* errors here: the assembler resyncs past them and the
    /// count is available via [`take_bad_frames`](Self::take_bad_frames),
    /// so frames on either side of the corruption still arrive.
    pub fn pump_reads(&mut self, scratch: &mut [u8]) -> Result<Vec<(u8, Vec<u8>)>, ConnError> {
        loop {
            match self.transport.recv(scratch) {
                Ok(0) => break,
                Ok(n) => self.assembler.extend(&scratch[..n]),
                Err(TransportError::Closed) if self.assembler.pending() > 0 => {
                    // Orderly EOF with buffered bytes: drain what we can
                    // below; the next pump reports the close.
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let mut frames = Vec::new();
        loop {
            match self.assembler.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                // Each rejection consumes at least one buffered byte
                // (the assembler resynced), so this loop terminates.
                Err(_) => self.bad_frames += 1,
            }
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, WireRequest, KIND_REQUEST};
    use senseaid_core::runtime::loopback_pair;

    #[test]
    fn assembler_handles_byte_at_a_time_delivery() {
        let frame = encode_request(&WireRequest::Hello { imei: 99 });
        let mut asm = FrameAssembler::new();
        for (i, byte) in frame.iter().enumerate() {
            asm.extend(&[*byte]);
            let got = asm.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame complete after {i} bytes?");
            } else {
                let (kind, payload) = got.expect("final byte completes the frame");
                assert_eq!(kind, KIND_REQUEST);
                assert_eq!(
                    crate::wire::decode_request(&payload).unwrap(),
                    WireRequest::Hello { imei: 99 }
                );
            }
        }
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_yields_multiple_frames_from_one_burst() {
        let mut bytes = encode_request(&WireRequest::Stats);
        bytes.extend(encode_request(&WireRequest::DrainOutbox));
        bytes.extend(encode_request(&WireRequest::Comm { imei: 5 }));
        let mut asm = FrameAssembler::new();
        asm.extend(&bytes);
        let mut count = 0;
        while let Some((kind, _)) = asm.next_frame().unwrap() {
            assert_eq!(kind, KIND_REQUEST);
            count += 1;
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn garbage_magic_fails_immediately() {
        let mut asm = FrameAssembler::new();
        asm.extend(b"GET / HTTP/1.1\r\n");
        assert_eq!(
            asm.next_frame(),
            Err(WireError::Frame(CodecError::BadMagic))
        );
        // Even a single wrong byte is enough — no waiting for a header.
        let mut early = FrameAssembler::new();
        early.extend(b"X");
        assert_eq!(
            early.next_frame(),
            Err(WireError::Frame(CodecError::BadMagic))
        );
    }

    #[test]
    fn hostile_declared_length_is_rejected_without_buffering() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.push(KIND_REQUEST);
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut asm = FrameAssembler::new();
        asm.extend(&header);
        assert!(matches!(asm.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn corrupted_crc_is_a_typed_error() {
        let mut frame = encode_request(&WireRequest::Hello { imei: 1 });
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut asm = FrameAssembler::new();
        asm.extend(&frame);
        assert!(matches!(asm.next_frame(), Err(WireError::Frame(_))));
    }

    #[test]
    fn connection_round_trips_over_loopback() {
        let (client_side, server_side) = loopback_pair();
        let mut client = Connection::new(client_side);
        let mut server = Connection::new(server_side);
        let mut scratch = [0u8; 256];

        client.queue(&encode_request(&WireRequest::Comm { imei: 8 }));
        assert!(client.flush().unwrap());
        let frames = server.pump_reads(&mut scratch).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].0, KIND_REQUEST);
        assert_eq!(
            crate::wire::decode_request(&frames[0].1).unwrap(),
            WireRequest::Comm { imei: 8 }
        );
        // Nothing further: a clean empty pump, not an error.
        assert!(server.pump_reads(&mut scratch).unwrap().is_empty());
    }
}
