//! Workloads for the Sense-Aid reproduction.
//!
//! Everything the paper's evaluation feeds its system with, synthesised:
//!
//! * [`survey`] — the 109-respondent energy-tolerance survey behind Fig 1
//!   (41.4 % of users tolerate ≤ 2 % battery for crowdsensing; nobody
//!   tolerates > 10 %);
//! * [`environment`] — a spatially and temporally correlated weather field
//!   so barometer readings are realistic and nearby devices agree;
//! * [`population`] — the 60-student study population: heterogeneous
//!   handsets, battery levels, app-usage intensities and campus mobility;
//! * [`scenarios`] — the parameter grids of Experiments 1–3 (Table 2) and
//!   the app profiles behind the Fig 2 case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod environment;
pub mod export;
pub mod population;
pub mod scenarios;
pub mod survey;

pub use environment::{StormFront, WeatherField};
pub use population::{PopulationConfig, StudyPopulation};
pub use scenarios::{AppProfile, ExperimentGrid, ScenarioConfig};
pub use survey::{SurveyBucket, SurveyDistribution};
