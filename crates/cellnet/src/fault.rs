//! Deterministic fault injection for the client↔server link.
//!
//! The paper's evaluation assumes a well-behaved RAN: every message is
//! delivered exactly once with fixed latency, and the only failure mode
//! is the binary Sense-Aid server crash of Fig 4. A production NaaS edge
//! sees lossy links, duplicated and reordered uplinks, eNodeB outages,
//! and process restarts. This module injects all of those *replayably*:
//! a [`FaultPlan`] is pure data, and the [`FaultInjector`] draws from
//! [`SimRng`] streams labelled under the plan's own fault seed, so the
//! same `(sim seed, fault seed)` pair reproduces the same faulty run
//! bit-for-bit — the determinism tests extend to chaos runs unchanged.
//!
//! A zero plan ([`FaultPlan::none`]) never consumes a random draw
//! ([`SimRng::chance`] short-circuits on `p <= 0`), so wiring the
//! injector into a harness cannot perturb existing fault-free runs.

use serde::{Deserialize, Serialize};

use senseaid_sim::{SimDuration, SimRng, SimTime, TraceLog};

/// Which direction a message travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkDir {
    /// Device → Sense-Aid server (registrations, state updates, data).
    Uplink,
    /// Sense-Aid server → device (assignments, acks).
    Downlink,
}

impl std::fmt::Display for LinkDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkDir::Uplink => f.write_str("uplink"),
            LinkDir::Downlink => f.write_str("downlink"),
        }
    }
}

/// Whether a churn wave adds population or removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The selected devices deregister (or silently vanish) at the wave
    /// instant.
    Leave,
    /// Previously departed devices re-register at the wave instant.
    Join,
}

/// A scheduled mass-membership event: at `at`, a `fraction` of the device
/// population leaves or (re)joins in one burst. Which devices are hit is
/// decided by [`FaultPlan::churn_members`] from the plan's own seed, so a
/// wave's membership is a pure function of `(fault seed, wave index,
/// population)` — independent of shard layout, worker count, or the order
/// the harness visits devices in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWave {
    /// The sim-time instant the wave strikes.
    pub at: SimTime,
    /// Leave or join.
    pub kind: ChurnKind,
    /// Fraction of the population affected, `[0, 1]`.
    pub fraction: f64,
}

/// A declarative, replayable description of what goes wrong and when.
///
/// All stochastic knobs are per-message probabilities; all scheduled
/// knobs are absolute sim-time windows. The plan is plain data: two runs
/// built from equal plans (and equal sim seeds) are bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injector's own labelled RNG streams. Independent of
    /// the sim seed so loss patterns can be varied against a fixed world.
    pub seed: u64,
    /// Per-message loss probability on either link, `[0, 1]`.
    pub loss: f64,
    /// Maximum extra one-way latency; each delivered copy gets a uniform
    /// jitter in `[0, jitter_max)`. Zero disables jitter draws entirely.
    pub jitter_max: SimDuration,
    /// Probability a delivered message spawns a duplicate copy.
    pub duplicate: f64,
    /// Probability a delivered message is held back an extra
    /// `jitter_max + 1ms`, letting later sends overtake it.
    pub reorder: f64,
    /// Scheduled eNodeB outage windows `[from, to)`: no traffic in either
    /// direction crosses the RAN while one is active.
    pub enodeb_outages: Vec<(SimTime, SimTime)>,
    /// Scheduled Sense-Aid server crash/recover cycles `[crash, recover)`.
    /// The harness crashes the server process at `crash` and recovers it
    /// (snapshot restore + reconciliation) at `recover`.
    pub server_outages: Vec<(SimTime, SimTime)>,
    /// Scheduled mass join/leave waves, in strike order.
    pub churn_waves: Vec<ChurnWave>,
    /// Scheduled app-server outage windows `[from, to)`: deliveries to
    /// *any* CAS fail while one is active (exercises the delivery circuit
    /// breaker).
    pub cas_outages: Vec<(SimTime, SimTime)>,
}

impl FaultPlan {
    /// A plan that injects nothing — behaviourally identical to running
    /// without an injector.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            jitter_max: SimDuration::ZERO,
            duplicate: 0.0,
            reorder: 0.0,
            enodeb_outages: Vec::new(),
            server_outages: Vec::new(),
            churn_waves: Vec::new(),
            cas_outages: Vec::new(),
        }
    }

    /// A plan with message loss only — the chaos experiment's sweep axis.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultPlan {
            seed,
            loss,
            ..FaultPlan::none()
        }
    }

    /// Whether this plan can never inject a fault.
    pub fn is_zero(&self) -> bool {
        self.loss <= 0.0
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
            && self.jitter_max.is_zero()
            && self.enodeb_outages.is_empty()
            && self.server_outages.is_empty()
            && self.churn_waves.is_empty()
            && self.cas_outages.is_empty()
    }

    /// Whether a scheduled eNodeB outage covers `now`.
    pub fn enodeb_down(&self, now: SimTime) -> bool {
        self.enodeb_outages
            .iter()
            .any(|&(from, to)| now >= from && now < to)
    }

    /// Whether the Sense-Aid server is scheduled to be up at `now`.
    pub fn server_up(&self, now: SimTime) -> bool {
        !self
            .server_outages
            .iter()
            .any(|&(from, to)| now >= from && now < to)
    }

    /// Whether app-server deliveries are scheduled to succeed at `now`.
    pub fn cas_up(&self, now: SimTime) -> bool {
        !self
            .cas_outages
            .iter()
            .any(|&(from, to)| now >= from && now < to)
    }

    /// The device indices (into a population of `population` devices) hit
    /// by churn wave `wave_index`, in ascending order.
    ///
    /// Membership is drawn from a per-wave labelled stream seeded only by
    /// the plan's fault seed, so it is identical for every shard count and
    /// worker count and never perturbs the injector's link streams.
    pub fn churn_members(&self, wave_index: usize, population: usize) -> Vec<usize> {
        let Some(wave) = self.churn_waves.get(wave_index) else {
            return Vec::new();
        };
        let n = ((wave.fraction.clamp(0.0, 1.0)) * population as f64).round() as usize;
        let n = n.min(population);
        if n == 0 {
            return Vec::new();
        }
        let mut rng = SimRng::from_seed_label(self.seed, &format!("fault/churn/{wave_index}"));
        let mut indices: Vec<usize> = (0..population).collect();
        rng.shuffle(&mut indices);
        indices.truncate(n);
        indices.sort_unstable();
        indices
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The message vanishes (link loss or eNodeB outage).
    Dropped,
    /// The message is delivered as one copy per entry, each after the
    /// given extra delay. More than one entry means duplication.
    Deliver(Vec<SimDuration>),
}

impl Verdict {
    /// Convenience: whether at least one copy arrives.
    pub fn delivered(&self) -> bool {
        matches!(self, Verdict::Deliver(_))
    }
}

/// Counters over everything the injector did, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Uplink messages dropped by random loss.
    pub uplink_dropped: u64,
    /// Downlink messages dropped by random loss.
    pub downlink_dropped: u64,
    /// Messages (either direction) blocked by a scheduled eNodeB outage.
    pub enodeb_blocked: u64,
    /// Messages that spawned a duplicate copy.
    pub duplicated: u64,
    /// Messages held back so later sends could overtake them.
    pub reordered: u64,
    /// Messages delivered (counting each original once, not per copy).
    pub delivered: u64,
}

impl FaultStats {
    /// Total messages dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.uplink_dropped + self.downlink_dropped + self.enodeb_blocked
    }
}

/// One trace record of an injected fault (dropped/duplicated/reordered;
/// clean deliveries are not traced to keep the log small).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Random link loss ate a message.
    Lost(LinkDir),
    /// A scheduled eNodeB outage blocked a message.
    EnodebBlocked(LinkDir),
    /// A message was duplicated.
    Duplicated(LinkDir),
    /// A message was held back past later sends.
    Reordered(LinkDir),
}

/// Replays a [`FaultPlan`] against a stream of messages.
///
/// Draw order per message is fixed — loss, then jitter, then duplicate
/// (plus the duplicate's jitter), then reorder — and each direction has
/// its own labelled stream, so adding traffic on one link never shifts
/// the fault pattern seen by the other.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    uplink_rng: SimRng,
    downlink_rng: SimRng,
    stats: FaultStats,
    trace: TraceLog<FaultEvent>,
}

impl FaultInjector {
    /// Builds an injector replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let uplink_rng = SimRng::from_seed_label(plan.seed, "fault/uplink");
        let downlink_rng = SimRng::from_seed_label(plan.seed, "fault/downlink");
        FaultInjector {
            plan,
            uplink_rng,
            downlink_rng,
            stats: FaultStats::default(),
            trace: TraceLog::new(),
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The injected-fault trace.
    pub fn trace(&self) -> &TraceLog<FaultEvent> {
        &self.trace
    }

    /// Replays the injected-fault trace into a telemetry recording via
    /// the legacy-log bridge: one `fault.*` instant per event, attributed
    /// with the link direction. The span stream is the preferred read
    /// surface; [`trace`](Self::trace) remains for direct inspection.
    pub fn record_spans(&self, tel: &senseaid_telemetry::Telemetry) {
        use senseaid_telemetry::{compat, Attr, Lane};
        if !tel.active() {
            return;
        }
        compat::bridge_entries(
            tel,
            Lane::control(0),
            self.trace.entries().iter().map(|e| (e.at, e.item)),
            |event| {
                let (kind, dir) = match event {
                    FaultEvent::Lost(d) => ("fault.lost", d),
                    FaultEvent::EnodebBlocked(d) => ("fault.enodeb_blocked", d),
                    FaultEvent::Duplicated(d) => ("fault.duplicated", d),
                    FaultEvent::Reordered(d) => ("fault.reordered", d),
                };
                (kind.to_owned(), vec![Attr::str("dir", dir.to_string())])
            },
        );
    }

    /// Decides the fate of one message crossing the RAN at `now`.
    pub fn judge(&mut self, dir: LinkDir, now: SimTime) -> Verdict {
        if self.plan.enodeb_down(now) {
            self.stats.enodeb_blocked += 1;
            self.trace.push(now, FaultEvent::EnodebBlocked(dir));
            return Verdict::Dropped;
        }
        let loss = self.plan.loss;
        let jitter_max = self.plan.jitter_max;
        let duplicate = self.plan.duplicate;
        let reorder = self.plan.reorder;
        let rng = match dir {
            LinkDir::Uplink => &mut self.uplink_rng,
            LinkDir::Downlink => &mut self.downlink_rng,
        };

        if rng.chance(loss) {
            match dir {
                LinkDir::Uplink => self.stats.uplink_dropped += 1,
                LinkDir::Downlink => self.stats.downlink_dropped += 1,
            }
            self.trace.push(now, FaultEvent::Lost(dir));
            return Verdict::Dropped;
        }

        let mut delays = vec![Self::jitter(rng, jitter_max)];
        if rng.chance(duplicate) {
            delays.push(Self::jitter(rng, jitter_max));
            self.stats.duplicated += 1;
            self.trace.push(now, FaultEvent::Duplicated(dir));
        }
        if rng.chance(reorder) {
            // Hold the first copy back past the jitter horizon so any
            // message sent within the next jitter window overtakes it.
            delays[0] += jitter_max + SimDuration::from_millis(1);
            self.stats.reordered += 1;
            self.trace.push(now, FaultEvent::Reordered(dir));
        }
        self.stats.delivered += 1;
        Verdict::Deliver(delays)
    }

    fn jitter(rng: &mut SimRng, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(rng.uniform() * max.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss: 0.2,
            jitter_max: SimDuration::from_millis(400),
            duplicate: 0.1,
            reorder: 0.05,
            enodeb_outages: vec![(SimTime::from_secs(100), SimTime::from_secs(130))],
            server_outages: vec![(SimTime::from_secs(300), SimTime::from_secs(360))],
            ..FaultPlan::none()
        }
    }

    fn replay(seed: u64, n: u64) -> Vec<Verdict> {
        let mut inj = FaultInjector::new(chaos_plan(seed));
        (0..n)
            .map(|i| {
                let dir = if i % 3 == 0 {
                    LinkDir::Downlink
                } else {
                    LinkDir::Uplink
                };
                inj.judge(dir, SimTime::from_secs(i))
            })
            .collect()
    }

    #[test]
    fn same_fault_seed_replays_identically() {
        assert_eq!(replay(7, 500), replay(7, 500));
    }

    #[test]
    fn different_fault_seeds_differ() {
        assert_ne!(replay(7, 500), replay(8, 500));
    }

    #[test]
    fn zero_plan_always_delivers_cleanly() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.plan().is_zero());
        for i in 0..200 {
            assert_eq!(
                inj.judge(LinkDir::Uplink, SimTime::from_secs(i)),
                Verdict::Deliver(vec![SimDuration::ZERO])
            );
        }
        assert_eq!(inj.stats().total_dropped(), 0);
        assert_eq!(inj.stats().delivered, 200);
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn loss_rate_is_plausible() {
        let mut inj = FaultInjector::new(FaultPlan::lossy(42, 0.2));
        let n = 5_000;
        let dropped = (0..n)
            .filter(|&i| {
                !inj.judge(LinkDir::Uplink, SimTime::from_secs(i))
                    .delivered()
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed loss rate {rate}");
        assert_eq!(inj.stats().uplink_dropped, dropped as u64);
    }

    #[test]
    fn enodeb_outage_blocks_both_directions() {
        let mut inj = FaultInjector::new(chaos_plan(1));
        let during = SimTime::from_secs(110);
        assert_eq!(inj.judge(LinkDir::Uplink, during), Verdict::Dropped);
        assert_eq!(inj.judge(LinkDir::Downlink, during), Verdict::Dropped);
        assert_eq!(inj.stats().enodeb_blocked, 2);
        assert!(matches!(
            inj.trace().entries()[0].item,
            FaultEvent::EnodebBlocked(LinkDir::Uplink)
        ));
    }

    #[test]
    fn duplication_and_reordering_happen() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 3,
            loss: 0.0,
            jitter_max: SimDuration::from_millis(100),
            duplicate: 0.5,
            reorder: 0.5,
            ..FaultPlan::none()
        });
        for i in 0..200 {
            let verdict = inj.judge(LinkDir::Uplink, SimTime::from_secs(i));
            if let Verdict::Deliver(delays) = verdict {
                assert!(!delays.is_empty() && delays.len() <= 2);
            } else {
                panic!("loss disabled, message dropped");
            }
        }
        assert!(inj.stats().duplicated > 50);
        assert!(inj.stats().reordered > 50);
        // Reordered copies are held past the jitter horizon.
        assert!(inj
            .trace()
            .filter(|e| matches!(e, FaultEvent::Reordered(_)))
            .next()
            .is_some());
    }

    #[test]
    fn server_schedule_is_pure_plan_data() {
        let plan = chaos_plan(0);
        assert!(plan.server_up(SimTime::from_secs(299)));
        assert!(!plan.server_up(SimTime::from_secs(300)));
        assert!(!plan.server_up(SimTime::from_secs(359)));
        assert!(plan.server_up(SimTime::from_secs(360)));
        assert!(!plan.enodeb_down(SimTime::from_secs(99)));
        assert!(plan.enodeb_down(SimTime::from_secs(100)));
    }

    #[test]
    fn churn_membership_is_a_pure_function_of_seed_wave_population() {
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.churn_waves = vec![
            ChurnWave {
                at: SimTime::from_secs(60),
                kind: ChurnKind::Leave,
                fraction: 0.5,
            },
            ChurnWave {
                at: SimTime::from_secs(120),
                kind: ChurnKind::Join,
                fraction: 0.25,
            },
        ];
        assert!(!plan.is_zero());
        let a = plan.churn_members(0, 40);
        assert_eq!(a.len(), 20);
        assert_eq!(a, plan.churn_members(0, 40), "replayable");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending, distinct");
        assert_ne!(a, plan.churn_members(1, 40), "waves draw independently");
        assert_eq!(plan.churn_members(1, 40).len(), 10);
        // Out-of-range wave index and empty populations are harmless.
        assert!(plan.churn_members(2, 40).is_empty());
        assert!(plan.churn_members(0, 0).is_empty());
        // Drawing membership consumes nothing from the link streams.
        let mut with = FaultInjector::new(plan.clone());
        let mut without = FaultInjector::new({
            let mut p = plan.clone();
            p.churn_waves.clear();
            p.loss = plan.loss;
            p
        });
        plan.churn_members(0, 40);
        for i in 0..50 {
            assert_eq!(
                with.judge(LinkDir::Uplink, SimTime::from_secs(i)),
                without.judge(LinkDir::Uplink, SimTime::from_secs(i))
            );
        }
    }

    #[test]
    fn cas_outage_schedule_is_pure_plan_data() {
        let mut plan = FaultPlan::none();
        plan.cas_outages = vec![(SimTime::from_secs(10), SimTime::from_secs(20))];
        assert!(!plan.is_zero());
        assert!(plan.cas_up(SimTime::from_secs(9)));
        assert!(!plan.cas_up(SimTime::from_secs(10)));
        assert!(!plan.cas_up(SimTime::from_secs(19)));
        assert!(plan.cas_up(SimTime::from_secs(20)));
    }

    #[test]
    fn directions_have_independent_streams() {
        // Consuming draws on one link must not shift the other's pattern.
        let mut a = FaultInjector::new(FaultPlan::lossy(9, 0.5));
        let mut b = FaultInjector::new(FaultPlan::lossy(9, 0.5));
        for i in 0..50 {
            // `a` interleaves downlink draws; `b` does not.
            a.judge(LinkDir::Downlink, SimTime::from_secs(i));
        }
        let ua: Vec<Verdict> = (50..100)
            .map(|i| a.judge(LinkDir::Uplink, SimTime::from_secs(i)))
            .collect();
        let ub: Vec<Verdict> = (50..100)
            .map(|i| b.judge(LinkDir::Uplink, SimTime::from_secs(i)))
            .collect();
        assert_eq!(ua, ub);
    }
}
