//! Hardware sensors and their power draws.
//!
//! Power numbers are the ones the paper quotes (§1, citing Warden's
//! Galaxy S4 measurements): accelerometer 21 mW, gyroscope 130 mW,
//! barometer 110 mW, GPS 176 mW, microphone 101 mW, camera >1000 mW.
//! Sensor type codes mirror the Android `Sensor.TYPE_*` constants, since
//! the paper's task descriptor carries an Android `int sensor_type`
//! (Table 1).

use std::fmt;

use serde::{Deserialize, Serialize};

use senseaid_geo::GeoPoint;
use senseaid_sim::{SimDuration, SimTime};

/// A sensor a device may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sensor {
    /// Android `TYPE_ACCELEROMETER` (1).
    Accelerometer,
    /// Android `TYPE_MAGNETIC_FIELD` (2).
    Magnetometer,
    /// Android `TYPE_GYROSCOPE` (4).
    Gyroscope,
    /// Android `TYPE_LIGHT` (5).
    Light,
    /// Android `TYPE_PRESSURE` (6) — the barometer every study task uses.
    Barometer,
    /// Android `TYPE_RELATIVE_HUMIDITY` (12).
    Humidity,
    /// Android `TYPE_AMBIENT_TEMPERATURE` (13).
    Thermometer,
    /// GPS receiver (not an Android sensor type; code 100 here).
    Gps,
    /// Microphone (code 101 here).
    Microphone,
    /// Camera (code 102 here).
    Camera,
}

impl Sensor {
    /// Every sensor the simulator knows about.
    pub const ALL: [Sensor; 10] = [
        Sensor::Accelerometer,
        Sensor::Magnetometer,
        Sensor::Gyroscope,
        Sensor::Light,
        Sensor::Barometer,
        Sensor::Humidity,
        Sensor::Thermometer,
        Sensor::Gps,
        Sensor::Microphone,
        Sensor::Camera,
    ];

    /// The Android-style integer type code (Table 1's `int sensor_type`).
    pub fn type_code(self) -> i32 {
        match self {
            Sensor::Accelerometer => 1,
            Sensor::Magnetometer => 2,
            Sensor::Gyroscope => 4,
            Sensor::Light => 5,
            Sensor::Barometer => 6,
            Sensor::Humidity => 12,
            Sensor::Thermometer => 13,
            Sensor::Gps => 100,
            Sensor::Microphone => 101,
            Sensor::Camera => 102,
        }
    }

    /// Looks a sensor up by its integer type code.
    pub fn from_type_code(code: i32) -> Option<Sensor> {
        Sensor::ALL.into_iter().find(|s| s.type_code() == code)
    }

    /// Active power draw while sampling, in milliwatts.
    pub fn power_mw(self) -> f64 {
        match self {
            Sensor::Accelerometer => 21.0,
            Sensor::Magnetometer => 48.0,
            Sensor::Gyroscope => 130.0,
            Sensor::Light => 15.0,
            Sensor::Barometer => 110.0,
            Sensor::Humidity => 25.0,
            Sensor::Thermometer => 20.0,
            Sensor::Gps => 176.0,
            Sensor::Microphone => 101.0,
            Sensor::Camera => 1200.0,
        }
    }

    /// How long one sample keeps the sensor powered (warm-up + read).
    pub fn sample_duration(self) -> SimDuration {
        match self {
            Sensor::Gps => SimDuration::from_secs(8), // cold-ish fix
            Sensor::Camera => SimDuration::from_secs(2),
            Sensor::Microphone => SimDuration::from_secs(1),
            _ => SimDuration::from_millis(200),
        }
    }

    /// Energy of one sample in Joules.
    pub fn sample_energy_j(self) -> f64 {
        self.power_mw() * 1e-3 * self.sample_duration().as_secs_f64()
    }
}

impl fmt::Display for Sensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sensor::Accelerometer => "accelerometer",
            Sensor::Magnetometer => "magnetometer",
            Sensor::Gyroscope => "gyroscope",
            Sensor::Light => "light",
            Sensor::Barometer => "barometer",
            Sensor::Humidity => "humidity",
            Sensor::Thermometer => "thermometer",
            Sensor::Gps => "gps",
            Sensor::Microphone => "microphone",
            Sensor::Camera => "camera",
        };
        f.write_str(s)
    }
}

/// One sensed value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Which sensor produced it.
    pub sensor: Sensor,
    /// The value, in the sensor's natural unit (hPa for the barometer).
    pub value: f64,
    /// When it was taken.
    pub taken_at: SimTime,
    /// Where it was taken.
    pub position: GeoPoint,
}

/// Source of ground-truth values for sensors: given a sensor, a place and a
/// time, what would the hardware read?
///
/// The workload crate implements a spatially correlated weather field; this
/// crate ships only the trivial [`UniformEnvironment`].
pub trait SensorEnvironment {
    /// The true field value for `sensor` at `position` and `at`.
    fn truth(&self, sensor: Sensor, position: GeoPoint, at: SimTime) -> f64;
}

/// An environment where every sensor reads a constant (useful in tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformEnvironment {
    /// The constant every sensor reads.
    pub value: f64,
}

impl SensorEnvironment for UniformEnvironment {
    fn truth(&self, _sensor: Sensor, _position: GeoPoint, _at: SimTime) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_numbers() {
        assert_eq!(Sensor::Accelerometer.power_mw(), 21.0);
        assert_eq!(Sensor::Gyroscope.power_mw(), 130.0);
        assert_eq!(Sensor::Barometer.power_mw(), 110.0);
        assert_eq!(Sensor::Gps.power_mw(), 176.0);
        assert_eq!(Sensor::Microphone.power_mw(), 101.0);
        assert!(Sensor::Camera.power_mw() > 1000.0);
    }

    #[test]
    fn type_codes_round_trip() {
        for s in Sensor::ALL {
            assert_eq!(Sensor::from_type_code(s.type_code()), Some(s));
        }
        assert_eq!(Sensor::from_type_code(-1), None);
        // Barometer carries the Android TYPE_PRESSURE code.
        assert_eq!(Sensor::Barometer.type_code(), 6);
    }

    #[test]
    fn barometer_sample_is_cheap_compared_to_radio() {
        // One barometer sample ≈ 0.022 J; a cold LTE upload is ~12 J. The
        // paper's premise — network dominates sensing — must hold.
        let sample = Sensor::Barometer.sample_energy_j();
        assert!(sample < 0.05, "barometer sample {sample} J");
    }

    #[test]
    fn gps_much_more_expensive_than_barometer() {
        assert!(Sensor::Gps.sample_energy_j() > 10.0 * Sensor::Barometer.sample_energy_j());
    }

    #[test]
    fn uniform_environment_is_constant() {
        let env = UniformEnvironment { value: 1013.25 };
        let p = GeoPoint::new(40.0, -86.0);
        assert_eq!(env.truth(Sensor::Barometer, p, SimTime::ZERO), 1013.25);
        assert_eq!(env.truth(Sensor::Gps, p, SimTime::from_secs(100)), 1013.25);
    }

    #[test]
    fn display_names() {
        assert_eq!(Sensor::Barometer.to_string(), "barometer");
        assert_eq!(Sensor::Gps.to_string(), "gps");
    }
}
