//! Extension: data timeliness — the cost PCS pays for its energy.
//!
//! The paper compares frameworks "under the prerequisite of not harming
//! crowdsensing data" but never quantifies *when* the data arrives. This
//! study does: Periodic delivers instantly, Sense-Aid within the sampling
//! period (its deadline), and PCS — whose Fig 14 energy model lets a
//! correct prediction wait indefinitely for app traffic — trades
//! freshness away. This is the quantitative version of the paper's §1
//! critique of piggyback-only designs.

use senseaid_geo::NamedLocation;
use senseaid_sim::SimDuration;
use senseaid_workload::ScenarioConfig;

use crate::framework::FrameworkKind;
use crate::runner::run_scenario;

/// The study scenario (Experiment 2's middle point).
pub fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(120),
        sampling_period: SimDuration::from_mins(5),
        spatial_density: 3,
        area_radius_m: 500.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 20,
    }
}

/// Renders the timeliness study.
pub fn run(seed: u64) -> String {
    render(scenario(), seed)
}

/// Renders the timeliness study for an arbitrary scenario.
pub fn render(scenario: ScenarioConfig, seed: u64) -> String {
    let period_s = scenario.sampling_period.as_secs_f64();
    let mut out = String::from("=== Extension: data timeliness (sampling → delivery delay) ===\n");
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>16} {:>10}\n",
        "framework", "mean s", "p95 s", "within period", "energy J"
    ));
    for kind in FrameworkKind::study_set() {
        let r = run_scenario(kind, scenario, seed);
        out.push_str(&format!(
            "{:<14} {:>10.1} {:>10.1} {:>15.0}% {:>10.1}\n",
            kind.label(),
            r.mean_delay_s(),
            r.p95_delay_s(),
            100.0 * r.fraction_within(period_s),
            r.total_cs_j(),
        ));
    }
    out.push_str(&format!(
        "\nsampling period = {period_s:.0} s; Sense-Aid's deadline discipline keeps every reading within it,\nwhile PCS's piggyback waits run past it — energy saved by deferral, paid in freshness\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            test_duration: SimDuration::from_mins(40),
            group_size: 14,
            ..scenario()
        }
    }

    #[test]
    fn periodic_is_instant_senseaid_bounded_pcs_late() {
        let seed = 51;
        let periodic = run_scenario(FrameworkKind::Periodic, small(), seed);
        let senseaid = run_scenario(FrameworkKind::SenseAidComplete, small(), seed);
        let pcs = run_scenario(FrameworkKind::pcs_default(), small(), seed);

        assert!(
            periodic.mean_delay_s() < 1.0,
            "Periodic uploads immediately"
        );
        // Sense-Aid never exceeds its deadline (the sampling period),
        // modulo the 1-second tick.
        let period_s = small().sampling_period.as_secs_f64();
        assert!(
            senseaid.p95_delay_s() <= period_s + 1.5,
            "SA p95 {} vs period {period_s}",
            senseaid.p95_delay_s()
        );
        assert!(senseaid.fraction_within(period_s + 1.5) > 0.99);
        // PCS's piggyback waits push its tail beyond the period.
        assert!(
            pcs.p95_delay_s() > period_s,
            "PCS p95 {} should exceed the period {period_s}",
            pcs.p95_delay_s()
        );
        assert!(pcs.mean_delay_s() > senseaid.mean_delay_s());
    }

    #[test]
    fn senseaid_delay_is_nonzero_it_waits_for_tails() {
        let r = run_scenario(FrameworkKind::SenseAidComplete, small(), 52);
        assert!(
            r.mean_delay_s() > 5.0,
            "tail-waiting implies real (bounded) delay, got {}",
            r.mean_delay_s()
        );
    }
}
