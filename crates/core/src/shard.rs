//! One cell-group shard of the control plane.
//!
//! A shard owns the device index, the queued-request arena and the
//! run/wait queues for the cells assigned to it. Devices are homed on the
//! shard serving their last observed cell (unknown-cell devices live on
//! shard 0); requests are homed on the lowest-numbered shard their
//! region's cell coverage touches (shard 0 when no topology is attached).
//! The [`Coordinator`](crate::coordinator::Coordinator) fans requests out
//! across shards and merge-pops their queue heads in global
//! `(deadline, sample_at, id)` order, so scheduling output is identical
//! for any shard count.
//!
//! Queued requests are pinned in one [`RequestArena`] shared by both
//! queues: the heaps order POD [`QueueEntry`]s and resolve a request from
//! its slot only when it actually leaves a queue.

use senseaid_cellnet::CellId;
use senseaid_device::ImeiHash;
use senseaid_geo::GeoPoint;
use senseaid_sim::SimTime;

use crate::queues::{QueueEntry, RequestQueue};
use crate::request::Request;
use crate::store::device_store::DeviceRecord;
use crate::store::task_store::RequestArena;
use crate::store::{CandidateRow, DeviceIndex, QualificationProbe};
use crate::task::TaskId;

/// The heap key the queues order by; exposing it lets the coordinator
/// merge-pop shard heads in the exact order one global queue would use.
pub(crate) type QueueKey = (SimTime, SimTime, u64);

/// One shard: a device index plus its slice of the run and wait queues.
#[derive(Debug)]
pub(crate) struct Shard {
    index: Box<dyn DeviceIndex>,
    arena: RequestArena,
    run_queue: RequestQueue,
    wait_queue: RequestQueue,
}

impl Shard {
    pub fn new(index: Box<dyn DeviceIndex>) -> Self {
        Shard {
            index,
            arena: RequestArena::new(),
            run_queue: RequestQueue::new(),
            wait_queue: RequestQueue::new(),
        }
    }

    // ---- devices ----

    pub fn device_count(&self) -> usize {
        self.index.len()
    }

    pub fn insert_device(&mut self, record: DeviceRecord) {
        self.index.insert(record);
    }

    pub fn remove_device(&mut self, imei: ImeiHash) -> Option<DeviceRecord> {
        self.index.remove(imei)
    }

    pub fn device(&self, imei: ImeiHash) -> Option<DeviceRecord> {
        self.index.get(imei)
    }

    /// Read-and-write access to the device index's narrow mutators.
    pub fn devices(&mut self) -> &mut dyn DeviceIndex {
        self.index.as_mut()
    }

    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.index.set_dirty_tracking(on);
    }

    pub fn dirty_touched(&self) -> Option<&std::collections::BTreeSet<ImeiHash>> {
        self.index.dirty_touched()
    }

    pub fn clear_dirty(&mut self) {
        self.index.clear_dirty();
    }

    pub fn device_cell(&self, imei: ImeiHash) -> Option<CellId> {
        self.index.cell_of(imei)
    }

    pub fn observe(&mut self, imei: ImeiHash, position: GeoPoint, cell: Option<CellId>) -> bool {
        self.index.observe(imei, position, cell)
    }

    /// Appends this shard's qualified candidates to `out`, ascending by
    /// IMEI hash.
    pub fn candidates_into(&self, probe: &QualificationProbe, out: &mut Vec<CandidateRow>) {
        self.index.candidates_into(probe, out);
    }

    /// Appends this shard's qualified candidates to `out` in whatever
    /// order the index walks them — same rows as
    /// [`candidates_into`](Self::candidates_into), no ordering cost. Only
    /// sound for order-insensitive selection policies.
    pub fn candidates_unordered_into(
        &self,
        probe: &QualificationProbe,
        out: &mut Vec<CandidateRow>,
    ) {
        self.index.candidates_unordered_into(probe, out);
    }

    pub fn qualified_count(&self, probe: &QualificationProbe) -> usize {
        self.index.qualified_count(probe)
    }

    // ---- queues ----

    pub fn push_run(&mut self, request: Request) {
        let slot = self.arena.insert(request);
        let entry = QueueEntry::for_request(self.arena.get(slot).expect("just inserted"), slot);
        self.run_queue.push(entry);
    }

    pub fn push_wait(&mut self, request: Request) {
        let slot = self.arena.insert(request);
        let entry = QueueEntry::for_request(self.arena.get(slot).expect("just inserted"), slot);
        self.wait_queue.push(entry);
    }

    /// Key of the run-queue head, if any.
    pub fn run_head_key(&self) -> Option<QueueKey> {
        self.run_queue.peek().map(QueueEntry::key)
    }

    /// Key of the wait-queue head, if any.
    pub fn wait_head_key(&self) -> Option<QueueKey> {
        self.wait_queue.peek().map(QueueEntry::key)
    }

    pub fn pop_run(&mut self) -> Option<Request> {
        self.run_queue.pop().map(|e| self.arena.take(e.slot))
    }

    pub fn pop_wait(&mut self) -> Option<Request> {
        self.wait_queue.pop().map(|e| self.arena.take(e.slot))
    }

    pub fn run_queue_len(&self) -> usize {
        self.run_queue.len()
    }

    pub fn wait_queue_len(&self) -> usize {
        self.wait_queue.len()
    }

    /// Removes one parked request by id, if this shard holds it (used by
    /// the shed path to evict a victim chosen across all shards).
    pub fn remove_wait(&mut self, id: crate::request::RequestId) -> Option<Request> {
        self.wait_queue.remove(id).map(|e| self.arena.take(e.slot))
    }

    /// Purges a task's requests from both queues, releasing their slots.
    pub fn remove_task(&mut self, task: TaskId) {
        for entry in self.run_queue.remove_task(task) {
            self.arena.take(entry.slot);
        }
        for entry in self.wait_queue.remove_task(task) {
            self.arena.take(entry.slot);
        }
    }

    /// All requests queued on this shard (run then wait), for status
    /// bookkeeping.
    pub fn queued_requests(&self) -> impl Iterator<Item = &Request> {
        self.run_requests().chain(self.wait_requests())
    }

    /// Run-queue entries only (for snapshots, which must restore run and
    /// wait entries to the right queue kind).
    pub fn run_requests(&self) -> impl Iterator<Item = &Request> {
        self.run_queue
            .iter()
            .map(|e| self.arena.get(e.slot).expect("entry slots are live"))
    }

    /// Wait-queue entries only (see [`Shard::run_requests`]).
    pub fn wait_requests(&self) -> impl Iterator<Item = &Request> {
        self.wait_queue
            .iter()
            .map(|e| self.arena.get(e.slot).expect("entry slots are live"))
    }

    /// All device records on this shard (for snapshots), in IMEI order.
    pub fn device_records(&self) -> Vec<DeviceRecord> {
        self.index.snapshot_records()
    }
}
