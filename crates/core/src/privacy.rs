//! Privacy filtering at the Sense-Aid server.
//!
//! The paper routes crowdsensing data *through* the Sense-Aid server
//! rather than directly to the application server precisely "to maintain
//! user privacy by filtering out private information" (§3.2): "No
//! per-device data (such as, IMEI number) need to be made visible to the
//! crowdsensing application server" (§6).
//!
//! [`scrub`] converts a raw reading + device identity into the
//! [`DeliveredReading`] a CAS receives: value, timing, the *task's* region
//! and serving cell — and a per-CAS pseudonym that is stable (so the CAS
//! can de-duplicate a device's readings) but unlinkable across CASes and
//! to the IMEI hash.

use senseaid_cellnet::CellId;
use senseaid_device::{ImeiHash, SensorReading};

use crate::cas::{CasId, DeliveredReading};
use crate::request::Request;

/// Derives the pseudonym a CAS sees for a device: a keyed hash of the IMEI
/// hash under the CAS id, so two CASes cannot correlate devices and the
/// IMEI hash itself never leaves the middleware.
pub fn pseudonym(imei: ImeiHash, cas: CasId) -> u64 {
    // splitmix64 over (imei ⊕ rotated cas-key).
    let mut z = imei.0 ^ (cas.0).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Produces the privacy-scrubbed record delivered to the CAS that owns
/// `request`'s task.
pub fn scrub(
    reading: &SensorReading,
    imei: ImeiHash,
    request: &Request,
    cell: Option<CellId>,
    cas: CasId,
) -> DeliveredReading {
    DeliveredReading {
        task: request.task(),
        request: request.id(),
        sensor: reading.sensor,
        value: reading.value,
        taken_at: reading.taken_at,
        // Location is degraded to the task's own region centre + the
        // serving cell — never the device's precise position.
        region_centre: request.region().centre(),
        cell,
        device_pseudonym: pseudonym(imei, cas),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use crate::task::{TaskId, TaskSpec};
    use senseaid_device::Sensor;
    use senseaid_geo::{CircleRegion, GeoPoint};
    use senseaid_sim::{SimDuration, SimTime};

    fn request() -> Request {
        let spec = TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(GeoPoint::new(40.4284, -86.9138), 500.0))
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(30))
            .build()
            .unwrap();
        Request::new(
            RequestId(4),
            TaskId(2),
            spec,
            SimTime::from_mins(5),
            SimTime::from_mins(10),
        )
    }

    fn reading() -> SensorReading {
        SensorReading {
            sensor: Sensor::Barometer,
            value: 1011.7,
            taken_at: SimTime::from_mins(5),
            // Precise position inside the region — must NOT be delivered.
            position: GeoPoint::new(40.4284, -86.9138).offset_by_meters(123.0, -45.0),
        }
    }

    #[test]
    fn scrubbed_record_carries_no_identity() {
        let imei = ImeiHash(0xfeed_f00d);
        let out = scrub(&reading(), imei, &request(), Some(CellId(4)), CasId(1));
        assert_ne!(
            out.device_pseudonym, imei.0,
            "pseudonym must differ from IMEI hash"
        );
        // Location is the region centre, not the device position.
        assert!(
            out.region_centre
                .distance_to(request().region().centre())
                .value()
                < 1e-6
        );
        assert_ne!(
            out.region_centre.distance_to(reading().position).value(),
            0.0,
            "precise position must not leak"
        );
        assert_eq!(out.value, 1011.7);
        assert_eq!(out.cell, Some(CellId(4)));
    }

    #[test]
    fn pseudonym_is_stable_per_cas() {
        let imei = ImeiHash(42);
        assert_eq!(pseudonym(imei, CasId(1)), pseudonym(imei, CasId(1)));
    }

    #[test]
    fn pseudonym_differs_across_cases_and_devices() {
        let a = pseudonym(ImeiHash(42), CasId(1));
        let b = pseudonym(ImeiHash(42), CasId(2));
        let c = pseudonym(ImeiHash(43), CasId(1));
        assert_ne!(a, b, "same device must be unlinkable across CASes");
        assert_ne!(a, c, "different devices must differ");
    }
}
