//! Keystone: the live serving path is byte-identical to the sim.
//!
//! A recorded device-event trace is run twice — once through the sim
//! harness (ops applied directly with explicit timestamps) and once
//! through the live path (every op encoded to wire frames, pushed
//! through a loopback transport, reassembled, decoded, and applied by
//! the serve engine under a sim clock advanced to each event's
//! timestamp). Both runs end in `durable_digest`; the bytes must match.
//!
//! Equality here certifies that the wire codec, stream reassembly,
//! session layer, and receive-time stamping add zero semantics over the
//! coordinator — live mode is the sim with sockets plugged in.

use senseaid_serve::{record_sample_trace, run_live, run_sim};

/// The shard counts the control plane is exercised at elsewhere in the
/// suite (serial, small parallel, wide).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn live_digest_matches_sim_at_every_shard_count() {
    let trace = record_sample_trace(0xD16E57, 12, 40);
    for shards in SHARD_COUNTS {
        let sim = run_sim(&trace, shards);
        let live = run_live(&trace, shards);
        assert_eq!(sim, live, "sim and live digests diverge at shards={shards}");
        assert!(!sim.is_empty(), "digest must not be empty");
    }
}

#[test]
fn digest_is_shard_count_invariant() {
    // The PR 8 pipeline made commit order deterministic regardless of
    // worker/shard parallelism; the serving layer must preserve that.
    let trace = record_sample_trace(0xBEEF, 8, 30);
    let baseline = run_sim(&trace, 1);
    for shards in [2, 8] {
        assert_eq!(
            baseline,
            run_sim(&trace, shards),
            "sim digest differs between shards=1 and shards={shards}"
        );
        assert_eq!(
            baseline,
            run_live(&trace, shards),
            "live digest differs from shards=1 sim at shards={shards}"
        );
    }
}

#[test]
fn identity_holds_across_seeds() {
    // Different seeds drive different op mixes (battery decay paths,
    // duplicate batches, out-of-region observes); identity must not be
    // an artefact of one lucky trace.
    for seed in [1u64, 42, 0xFACE] {
        let trace = record_sample_trace(seed, 6, 25);
        assert_eq!(
            run_sim(&trace, 2),
            run_live(&trace, 2),
            "divergence at seed={seed:#x}"
        );
    }
}
