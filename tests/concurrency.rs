//! The Sense-Aid server as a shared service: many client threads
//! registering, reporting state, and submitting data against one server
//! behind a lock, with a scheduler thread polling — the deployment shape
//! of the paper's edge middleware.

use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;

use senseaid::core::TaskSpec;
use senseaid::core::{Assignment, SenseAidConfig, SenseAidServer};
use senseaid::device::{ImeiHash, Sensor, SensorReading};
use senseaid::geo::{CircleRegion, GeoPoint};
use senseaid::sim::{SimDuration, SimTime};

#[test]
fn concurrent_clients_and_scheduler() {
    let campus = GeoPoint::new(40.4284, -86.9138);
    // The scheduler thread races through simulated time far faster than
    // the worker threads answer; a long unresponsive grace keeps
    // assignments alive for them (in a real deployment wall-clock and
    // simulated time advance together).
    let config = SenseAidConfig {
        unresponsive_grace: SimDuration::from_hours(10),
        ..SenseAidConfig::default()
    };
    let server = Arc::new(Mutex::new(SenseAidServer::new(config)));

    // 16 client threads register and stream state updates.
    let mut handles = Vec::new();
    for thread_id in 0..16u64 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for k in 0..4u64 {
                let imei = ImeiHash(thread_id * 10 + k + 1);
                server
                    .lock()
                    .register_device(
                        imei,
                        495.0,
                        15.0,
                        90.0,
                        vec![Sensor::Barometer],
                        "GalaxyS4".to_owned(),
                        SimTime::ZERO,
                    )
                    .unwrap();
                server
                    .lock()
                    .observe_device(
                        imei,
                        campus.offset_by_meters(thread_id as f64, k as f64),
                        None,
                    )
                    .unwrap();
                for round in 0..25u64 {
                    server
                        .lock()
                        .update_device_state(
                            imei,
                            90.0 - round as f64,
                            round as f64,
                            SimTime::from_secs(round + 1),
                        )
                        .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.lock().device_count(), 64);

    // Submit a task and run a scheduler thread; a pool of worker threads
    // answers assignments through a channel.
    let spec = TaskSpec::builder(Sensor::Barometer)
        .region(CircleRegion::new(campus, 500.0))
        .spatial_density(4)
        .sampling_period(SimDuration::from_mins(1))
        .sampling_duration(SimDuration::from_mins(10))
        .build()
        .unwrap();
    server
        .lock()
        .submit_task(spec, SimTime::from_mins(1))
        .unwrap();

    let (tx, rx) = channel::unbounded::<Assignment>();
    let scheduler = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for minute in 1..=11u64 {
                for a in server.lock().poll(SimTime::from_mins(minute)).unwrap() {
                    tx.send(a).unwrap();
                }
            }
            // tx drops here, closing the channel.
        })
    };

    let mut workers = Vec::new();
    for _ in 0..4 {
        let server = Arc::clone(&server);
        let rx = rx.clone();
        workers.push(std::thread::spawn(move || {
            let mut answered = 0u64;
            while let Ok(a) = rx.recv() {
                for imei in a.devices.clone() {
                    let reading = SensorReading {
                        sensor: Sensor::Barometer,
                        value: 1011.0,
                        taken_at: a.sample_at,
                        position: GeoPoint::new(40.4284, -86.9138),
                    };
                    server
                        .lock()
                        .submit_sensed_data(imei, a.request, &reading, a.sample_at)
                        .unwrap();
                    answered += 1;
                }
            }
            answered
        }));
    }
    scheduler.join().unwrap();
    drop(rx);
    let answered: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    // 10 requests × 4 devices, every single one answered exactly once.
    assert_eq!(answered, 40);
    let stats = server.lock().stats();
    assert_eq!(stats.requests_fulfilled, 10);
    assert_eq!(stats.readings_accepted, 40);
    assert_eq!(server.lock().drain_outbox().len(), 40);
}

#[test]
fn server_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<SenseAidServer>();
    assert_send::<Assignment>();
    assert_send::<senseaid::core::SenseAidClient>();
    assert_send::<senseaid::device::Device>();
}
