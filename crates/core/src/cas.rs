//! The crowdsensing-application-server (CAS) library (paper §3.4).
//!
//! An application links against [`AppServer`] and uses the four calls the
//! paper defines: `task()` (create), `update_task_param()`,
//! `delete_task()`, and the `receive_sensed_data()` callback. Multiple
//! CASes can share one Sense-Aid server; each sees only privacy-scrubbed
//! readings.

use std::fmt;

use serde::{Deserialize, Serialize};

use senseaid_cellnet::CellId;
use senseaid_device::Sensor;
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_sim::{SimDuration, SimTime};

use crate::error::SenseAidError;
use crate::request::RequestId;
use crate::server::SenseAidServer;
use crate::task::{TaskId, TaskSpec};

/// Identifier of one crowdsensing application server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CasId(pub u64);

impl fmt::Display for CasId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cas{}", self.0)
    }
}

/// A privacy-scrubbed reading as delivered to a CAS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveredReading {
    /// The owning task.
    pub task: TaskId,
    /// The request this fulfils.
    pub request: RequestId,
    /// The sensor sampled.
    pub sensor: Sensor,
    /// The sensed value.
    pub value: f64,
    /// When the sample was taken.
    pub taken_at: SimTime,
    /// The task region's centre (the CAS never sees device positions).
    pub region_centre: GeoPoint,
    /// The serving cell, if known (tower granularity).
    pub cell: Option<CellId>,
    /// Per-CAS stable pseudonym of the reporting device.
    pub device_pseudonym: u64,
}

/// A crowdsensing application server.
///
/// # Example
///
/// ```
/// use senseaid_core::{AppServer, SenseAidConfig, SenseAidServer};
/// use senseaid_core::cas::CasId;
/// use senseaid_device::Sensor;
/// use senseaid_geo::{CircleRegion, GeoPoint};
/// use senseaid_sim::{SimDuration, SimTime};
///
/// let mut server = SenseAidServer::new(SenseAidConfig::default());
/// let mut app = AppServer::new(CasId(1), "pressure-map");
/// let task = app
///     .task(Sensor::Barometer)
///     .region(CircleRegion::new(GeoPoint::new(40.4284, -86.9138), 500.0))
///     .sampling_period(SimDuration::from_mins(5))
///     .sampling_duration(SimDuration::from_mins(90))
///     .spatial_density(2)
///     .submit(&mut server, SimTime::ZERO)?;
/// assert!(app.owns_task(task));
/// # Ok::<(), senseaid_core::SenseAidError>(())
/// ```
#[derive(Debug)]
pub struct AppServer {
    id: CasId,
    name: String,
    owned_tasks: Vec<TaskId>,
    received: Vec<DeliveredReading>,
}

impl AppServer {
    /// Creates an application server.
    pub fn new(id: CasId, name: impl Into<String>) -> Self {
        AppServer {
            id,
            name: name.into(),
            owned_tasks: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The CAS id.
    pub fn id(&self) -> CasId {
        self.id
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Starts describing a new task — the paper's `task()` API call.
    pub fn task(&mut self, sensor: Sensor) -> CasTaskBuilder<'_> {
        CasTaskBuilder {
            app: self,
            inner: TaskSpec::builder(sensor),
        }
    }

    /// The paper's `update_task_param()` API call.
    ///
    /// # Errors
    ///
    /// [`SenseAidError::UnknownTask`] if this CAS does not own `task`, or
    /// the underlying update fails validation.
    pub fn update_task_param(
        &mut self,
        server: &mut SenseAidServer,
        task: TaskId,
        spatial_density: Option<usize>,
        sampling_period: Option<SimDuration>,
        region: Option<CircleRegion>,
        now: SimTime,
    ) -> Result<(), SenseAidError> {
        if !self.owns_task(task) {
            return Err(SenseAidError::UnknownTask(task));
        }
        server.update_task_param(task, spatial_density, sampling_period, region, now)
    }

    /// The paper's `delete_task()` API call.
    ///
    /// # Errors
    ///
    /// [`SenseAidError::UnknownTask`] if this CAS does not own `task`.
    pub fn delete_task(
        &mut self,
        server: &mut SenseAidServer,
        task: TaskId,
    ) -> Result<(), SenseAidError> {
        if !self.owns_task(task) {
            return Err(SenseAidError::UnknownTask(task));
        }
        server.delete_task(task)?;
        self.owned_tasks.retain(|t| *t != task);
        Ok(())
    }

    /// The paper's `receive_sensed_data()` callback; invoked by the
    /// delivery loop for each scrubbed reading.
    pub fn receive_sensed_data(&mut self, reading: DeliveredReading) {
        self.received.push(reading);
    }

    /// All readings received so far, in delivery order.
    pub fn received(&self) -> &[DeliveredReading] {
        &self.received
    }

    /// Readings received for one task.
    pub fn received_for(&self, task: TaskId) -> impl Iterator<Item = &DeliveredReading> {
        self.received.iter().filter(move |r| r.task == task)
    }

    /// Whether this CAS created `task`.
    pub fn owns_task(&self, task: TaskId) -> bool {
        self.owned_tasks.contains(&task)
    }

    /// Tasks created by this CAS.
    pub fn tasks(&self) -> &[TaskId] {
        &self.owned_tasks
    }
}

/// Builder returned by [`AppServer::task`]; mirrors [`TaskSpec`]'s builder
/// and submits straight to a Sense-Aid server.
#[derive(Debug)]
pub struct CasTaskBuilder<'a> {
    app: &'a mut AppServer,
    inner: crate::task::TaskSpecBuilder,
}

impl CasTaskBuilder<'_> {
    /// Sets the area of interest (required).
    pub fn region(mut self, region: CircleRegion) -> Self {
        self.inner = self.inner.region(region);
        self
    }

    /// Sets the minimum number of reporting devices.
    pub fn spatial_density(mut self, n: usize) -> Self {
        self.inner = self.inner.spatial_density(n);
        self
    }

    /// Sets the sampling period.
    pub fn sampling_period(mut self, period: SimDuration) -> Self {
        self.inner = self.inner.sampling_period(period);
        self
    }

    /// Runs for `duration` starting at submission.
    pub fn sampling_duration(mut self, duration: SimDuration) -> Self {
        self.inner = self.inner.sampling_duration(duration);
        self
    }

    /// Runs inside an explicit window.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.inner = self.inner.window(start, end);
        self
    }

    /// Makes the task one-shot.
    pub fn one_shot(mut self) -> Self {
        self.inner = self.inner.one_shot();
        self
    }

    /// Restricts to one device type.
    pub fn device_type(mut self, device_type: impl Into<String>) -> Self {
        self.inner = self.inner.device_type(device_type);
        self
    }

    /// Validates the spec and submits it to `server`, recording ownership.
    ///
    /// # Errors
    ///
    /// Propagates validation and submission errors.
    pub fn submit(
        self,
        server: &mut SenseAidServer,
        now: SimTime,
    ) -> Result<TaskId, SenseAidError> {
        let spec = self.inner.build()?;
        let id = server.submit_task_for(self.app.id, spec, now)?;
        self.app.owned_tasks.push(id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SenseAidConfig;

    fn region() -> CircleRegion {
        CircleRegion::new(GeoPoint::new(40.4284, -86.9138), 500.0)
    }

    #[test]
    fn submit_records_ownership() {
        let mut server = SenseAidServer::new(SenseAidConfig::default());
        let mut app = AppServer::new(CasId(7), "noise-map");
        let id = app
            .task(Sensor::Microphone)
            .region(region())
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(30))
            .submit(&mut server, SimTime::ZERO)
            .unwrap();
        assert!(app.owns_task(id));
        assert_eq!(app.tasks(), &[id]);
        assert_eq!(app.name(), "noise-map");
    }

    #[test]
    fn cannot_touch_foreign_tasks() {
        let mut server = SenseAidServer::new(SenseAidConfig::default());
        let mut owner = AppServer::new(CasId(1), "owner");
        let mut outsider = AppServer::new(CasId(2), "outsider");
        let id = owner
            .task(Sensor::Barometer)
            .region(region())
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(30))
            .submit(&mut server, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            outsider.delete_task(&mut server, id),
            Err(SenseAidError::UnknownTask(id))
        );
        assert_eq!(
            outsider.update_task_param(&mut server, id, Some(5), None, None, SimTime::ZERO),
            Err(SenseAidError::UnknownTask(id))
        );
        // The owner can.
        assert!(owner.delete_task(&mut server, id).is_ok());
        assert!(!owner.owns_task(id));
    }

    #[test]
    fn receive_accumulates_in_order() {
        let mut app = AppServer::new(CasId(1), "x");
        for i in 0..3 {
            app.receive_sensed_data(DeliveredReading {
                task: TaskId(1),
                request: RequestId(i),
                sensor: Sensor::Barometer,
                value: 1000.0 + i as f64,
                taken_at: SimTime::from_mins(i),
                region_centre: GeoPoint::new(40.0, -86.0),
                cell: None,
                device_pseudonym: 9,
            });
        }
        assert_eq!(app.received().len(), 3);
        assert_eq!(app.received_for(TaskId(1)).count(), 3);
        assert_eq!(app.received_for(TaskId(2)).count(), 0);
        assert_eq!(app.received()[2].value, 1002.0);
    }
}
