//! Figure 2 — power-consumption case study of two real crowdsensing apps.
//!
//! Paper setup: Pressurenet and WeatherSignal on a Galaxy S4, 5-minute
//! updates for 4 hours and 10-minute updates for 8 hours (equal update
//! counts), on 3G and 4G LTE. Expected shape: every bar exceeds the 2 %
//! tolerated budget; LTE costs more than 3G; WeatherSignal (richer data)
//! costs more than Pressurenet.

use senseaid_device::battery::NOMINAL_CAPACITY_J;
use senseaid_device::Sensor;
use senseaid_radio::RadioPowerProfile;
use senseaid_sim::SimDuration;
use senseaid_workload::AppProfile;

use crate::chart::bar_chart;
use crate::report::two_pct_bar_j;

/// One bar of the case study.
#[derive(Debug, Clone)]
pub struct CaseStudyBar {
    /// Bar label (app / network / frequency).
    pub label: String,
    /// Battery percentage the run cost.
    pub battery_pct: f64,
}

/// Computes the eight bars of Fig 2.
pub fn bars() -> Vec<CaseStudyBar> {
    let apps = [AppProfile::pressurenet(), AppProfile::weathersignal()];
    let radios = [
        ("LTE", RadioPowerProfile::lte_galaxy_s4()),
        ("3G", RadioPowerProfile::threeg_galaxy_s4()),
    ];
    // (period, duration) pairs with equal update counts (48 each).
    let schedules = [
        (SimDuration::from_mins(5), SimDuration::from_hours(4)),
        (SimDuration::from_mins(10), SimDuration::from_hours(8)),
    ];
    let mut out = Vec::new();
    for app in &apps {
        for (net, radio) in &radios {
            for (period, duration) in &schedules {
                let updates = (duration.as_secs() / period.as_secs()) as f64;
                let per_update = radio.cold_upload_energy_j(app.payload_bytes)
                    + Sensor::Barometer.sample_energy_j()
                    + app.extra_sensor_energy_j
                    + app.overhead_j_per_update;
                let total_j = updates * per_update;
                out.push(CaseStudyBar {
                    label: format!("{} {} {}min", app.name, net, period.as_mins_f64() as u64),
                    battery_pct: 100.0 * total_j / NOMINAL_CAPACITY_J,
                });
            }
        }
    }
    out
}

/// Renders Fig 2.
pub fn run(_seed: u64) -> String {
    let bars = bars();
    let rows: Vec<(String, f64)> = bars
        .iter()
        .map(|b| (b.label.clone(), b.battery_pct))
        .collect();
    let mut out =
        String::from("=== Figure 2: app power case study (Galaxy S4, equal update counts) ===\n");
    out.push_str(&bar_chart(&rows, "% battery", 40));
    out.push_str(&format!(
        "\n2% tolerated-budget bar = {:.0} J = 2.0% battery\n",
        two_pct_bar_j()
    ));
    let min = bars.iter().map(|b| b.battery_pct).fold(f64::MAX, f64::min);
    out.push_str(&format!(
        "every configuration costs at least {min:.1}% battery — above the 2% budget\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(label_frag: &str) -> f64 {
        bars()
            .iter()
            .find(|b| b.label.contains(label_frag))
            .unwrap_or_else(|| panic!("no bar matching {label_frag}"))
            .battery_pct
    }

    #[test]
    fn every_bar_exceeds_the_2pct_budget() {
        for b in bars() {
            assert!(b.battery_pct > 2.0, "{}: {:.2}%", b.label, b.battery_pct);
        }
    }

    #[test]
    fn lte_costs_more_than_3g() {
        assert!(pct("Pressurenet LTE 5min") > pct("Pressurenet 3G 5min"));
        assert!(pct("WeatherSignal LTE 10min") > pct("WeatherSignal 3G 10min"));
    }

    #[test]
    fn weathersignal_costs_more_than_pressurenet() {
        assert!(pct("WeatherSignal LTE 5min") > pct("Pressurenet LTE 5min"));
        assert!(pct("WeatherSignal 3G 10min") > pct("Pressurenet 3G 10min"));
    }

    #[test]
    fn equal_update_counts_mean_equal_energy_per_schedule() {
        // 5-min/4-h and 10-min/8-h both perform 48 updates, so the bars
        // match within a whisker (the paper designed them to be
        // comparable).
        let a = pct("Pressurenet LTE 5min");
        let b = pct("Pressurenet LTE 10min");
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pressurenet_lte_near_papers_ten_percent() {
        // The paper observes Pressurenet on LTE costs "close to 10%".
        let p = pct("Pressurenet LTE 5min");
        assert!((2.0..15.0).contains(&p), "got {p:.2}%");
    }

    #[test]
    fn render_mentions_budget_bar() {
        assert!(super::run(0).contains("2% tolerated-budget bar"));
    }
}
