//! A hierarchical spatial grid index.
//!
//! `qualified_for` is the middleware's hottest query: *which registered
//! devices are inside this circle right now?* A linear scan is fine for
//! the study's 20 devices; a city-scale deployment (the paper's §8
//! scalability goal) wants an index. [`GridIndex`] buckets positions into
//! fixed-size fine cells grouped under coarse cells
//! ([`COARSE_FACTOR`]² fine cells each) and answers circle queries by
//! walking only the coarse cells the circle's bounding box touches:
//!
//! * an *empty* coarse cell skips 256 fine-cell probes with one hash
//!   lookup, so sparse city-scale maps stay sublinear in query area;
//! * a coarse or fine cell *provably inside* the circle is emitted whole,
//!   without per-point distance checks (the bound is conservative, so the
//!   answer is always byte-identical to a brute-force scan);
//! * only boundary cells pay the per-point `contains` filter.
//!
//! Positions are stored inline with their keys in the fine buckets, so the
//! hot query path never chases a side map.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::point::{GeoPoint, EARTH_RADIUS_M};
use crate::region::CircleRegion;

/// Metres per degree of latitude (WGS-84 mean).
const M_PER_DEG_LAT: f64 = 111_320.0;

/// Fine cells per coarse-cell edge. 16×16 fine cells per coarse cell puts
/// a 250 m fine grid under ~4 km coarse cells — one coarse lookup skips a
/// whole neighbourhood when it is empty.
const COARSE_FACTOR: i32 = 16;

/// One coarse cell: the occupied fine buckets under it plus a live count.
///
/// The fine map is a `BTreeMap` so traversal order is deterministic (the
/// workspace's shard-invariance suite byte-compares query-derived state).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoarseCell<K: Copy + Eq + Ord + std::hash::Hash> {
    total: usize,
    fine: BTreeMap<(i32, i32), Vec<(K, GeoPoint)>>,
}

impl<K: Copy + Eq + Ord + std::hash::Hash> Default for CoarseCell<K> {
    fn default() -> Self {
        CoarseCell {
            total: 0,
            fine: BTreeMap::new(),
        }
    }
}

/// A hierarchical-grid spatial index over keys of type `K`.
///
/// Keys are unique: inserting a key again moves it. Circle queries visit
/// keys in grid-bucket order; callers that need key order sort the handful
/// of matches themselves (the candidate gather does exactly that).
///
/// # Example
///
/// ```
/// use senseaid_geo::{CircleRegion, GeoPoint, GridIndex};
///
/// let mut idx = GridIndex::new(250.0);
/// let campus = GeoPoint::new(40.4284, -86.9138);
/// idx.insert(1u32, campus);
/// idx.insert(2u32, campus.offset_by_meters(2_000.0, 0.0));
/// let mut near = Vec::new();
/// idx.for_each_in_circle(&CircleRegion::new(campus, 500.0), |k| near.push(k));
/// assert_eq!(near, vec![1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex<K: Copy + Eq + Ord + std::hash::Hash> {
    /// Fine-cell edge length in degrees of latitude (longitude cells use
    /// the same degree size; the contains-filter restores exactness).
    cell_deg: f64,
    coarse: HashMap<(i32, i32), CoarseCell<K>>,
    positions: BTreeMap<K, GeoPoint>,
}

impl<K: Copy + Eq + Ord + std::hash::Hash> GridIndex<K> {
    /// Creates an index with roughly `cell_m`-sized fine cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite.
    pub fn new(cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "cell size {cell_m} must be positive"
        );
        GridIndex {
            cell_deg: cell_m / M_PER_DEG_LAT,
            coarse: HashMap::new(),
            positions: BTreeMap::new(),
        }
    }

    fn fine_cell_of(&self, p: GeoPoint) -> (i32, i32) {
        (
            (p.lat_deg() / self.cell_deg).floor() as i32,
            (p.lon_deg() / self.cell_deg).floor() as i32,
        )
    }

    fn coarse_cell_of(fine: (i32, i32)) -> (i32, i32) {
        (
            fine.0.div_euclid(COARSE_FACTOR),
            fine.1.div_euclid(COARSE_FACTOR),
        )
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The indexed position of `key`, if present.
    pub fn position(&self, key: K) -> Option<GeoPoint> {
        self.positions.get(&key).copied()
    }

    /// Inserts `key` at `position`, moving it if already present.
    ///
    /// Re-inserting a key at its current position is a no-op: the hot
    /// per-sample update path re-reports unchanged positions constantly,
    /// and rebucketing would churn the cell vectors for nothing.
    pub fn insert(&mut self, key: K, position: GeoPoint) {
        if self.positions.get(&key) == Some(&position) {
            return;
        }
        self.remove(key);
        let fine = self.fine_cell_of(position);
        let coarse = self.coarse.entry(Self::coarse_cell_of(fine)).or_default();
        coarse.fine.entry(fine).or_default().push((key, position));
        coarse.total += 1;
        self.positions.insert(key, position);
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let Some(old) = self.positions.remove(&key) else {
            return false;
        };
        let fine = self.fine_cell_of(old);
        let coarse_key = Self::coarse_cell_of(fine);
        if let Some(coarse) = self.coarse.get_mut(&coarse_key) {
            if let Some(bucket) = coarse.fine.get_mut(&fine) {
                let before = bucket.len();
                bucket.retain(|(k, _)| *k != key);
                coarse.total -= before - bucket.len();
                if bucket.is_empty() {
                    coarse.fine.remove(&fine);
                }
            }
            if coarse.total == 0 {
                self.coarse.remove(&coarse_key);
            }
        }
        true
    }

    /// Whether the fine-cell rectangle `[lat_lo..=lat_hi] × [lon_lo..=
    /// lon_hi]` lies *provably* inside `region` under the workspace's
    /// equirectangular metric. Conservative: `cos(mean_lat) ≤ 1` bounds
    /// the true distance from above for every point of the rectangle, and
    /// the relative slack swallows floating-point noise — so a `true`
    /// here can never disagree with a per-point `contains` check, while a
    /// borderline cell simply falls through to the exact filter.
    fn cells_definitely_inside(
        &self,
        region: &CircleRegion,
        lat_lo: i32,
        lat_hi: i32,
        lon_lo: i32,
        lon_hi: i32,
    ) -> bool {
        let c = region.centre();
        let lat0 = f64::from(lat_lo) * self.cell_deg;
        let lat1 = (f64::from(lat_hi) + 1.0) * self.cell_deg;
        let lon0 = f64::from(lon_lo) * self.cell_deg;
        let lon1 = (f64::from(lon_hi) + 1.0) * self.cell_deg;
        let dy = (c.lat_deg() - lat0)
            .abs()
            .max((c.lat_deg() - lat1).abs())
            .to_radians();
        let dx = (c.lon_deg() - lon0)
            .abs()
            .max((c.lon_deg() - lon1).abs())
            .to_radians();
        EARTH_RADIUS_M * (dy * dy + dx * dx).sqrt() <= region.radius_m() * (1.0 - 1e-6)
    }

    /// The traversal skeleton behind every circle query: calls `visit`
    /// once per occupied bucket the circle's bounding box touches, with
    /// `filter = false` when the bucket's cell is provably inside the
    /// circle (every member matches) and `filter = true` when the caller
    /// must still apply the per-point `contains` check.
    fn visit_buckets(&self, region: &CircleRegion, mut visit: impl FnMut(&[(K, GeoPoint)], bool)) {
        let centre = region.centre();
        let r = region.radius_m();
        let dlat = r / M_PER_DEG_LAT;
        let dlon = r / (M_PER_DEG_LAT * centre.lat_deg().to_radians().cos().abs().max(1e-9));
        let lat_lo = ((centre.lat_deg() - dlat) / self.cell_deg).floor() as i32;
        let lat_hi = ((centre.lat_deg() + dlat) / self.cell_deg).floor() as i32;
        let lon_lo = ((centre.lon_deg() - dlon) / self.cell_deg).floor() as i32;
        let lon_hi = ((centre.lon_deg() + dlon) / self.cell_deg).floor() as i32;
        for c_lat in lat_lo.div_euclid(COARSE_FACTOR)..=lat_hi.div_euclid(COARSE_FACTOR) {
            for c_lon in lon_lo.div_euclid(COARSE_FACTOR)..=lon_hi.div_euclid(COARSE_FACTOR) {
                let Some(cell) = self.coarse.get(&(c_lat, c_lon)) else {
                    continue;
                };
                let base_lat = c_lat * COARSE_FACTOR;
                let base_lon = c_lon * COARSE_FACTOR;
                if self.cells_definitely_inside(
                    region,
                    base_lat,
                    base_lat + COARSE_FACTOR - 1,
                    base_lon,
                    base_lon + COARSE_FACTOR - 1,
                ) {
                    for bucket in cell.fine.values() {
                        visit(bucket, false);
                    }
                    continue;
                }
                let f_lat_lo = lat_lo.max(base_lat);
                let f_lat_hi = lat_hi.min(base_lat + COARSE_FACTOR - 1);
                let f_lon_lo = lon_lo.max(base_lon);
                let f_lon_hi = lon_hi.min(base_lon + COARSE_FACTOR - 1);
                for (&(flat, flon), bucket) in
                    cell.fine.range((f_lat_lo, i32::MIN)..=(f_lat_hi, i32::MAX))
                {
                    if flon < f_lon_lo || flon > f_lon_hi {
                        continue;
                    }
                    let covered = self.cells_definitely_inside(region, flat, flat, flon, flon);
                    visit(bucket, !covered);
                }
            }
        }
    }

    /// Calls `f` for every key inside `region`, in grid-bucket order
    /// (*not* key order). The allocation-free primitive behind every
    /// circle query; counting callers use it directly and skip the sort.
    pub fn for_each_in_circle(&self, region: &CircleRegion, mut f: impl FnMut(K)) {
        self.visit_buckets(region, |bucket, filter| {
            if filter {
                for (k, p) in bucket {
                    if region.contains(*p) {
                        f(*k);
                    }
                }
            } else {
                for (k, _) in bucket {
                    f(*k);
                }
            }
        });
    }

    /// How many keys lie inside `region`, without allocating. Buckets
    /// provably inside the circle contribute their length without any
    /// per-point work.
    pub fn count_in_circle(&self, region: &CircleRegion) -> usize {
        let mut n = 0;
        self.visit_buckets(region, |bucket, filter| {
            n += if filter {
                bucket.iter().filter(|(_, p)| region.contains(*p)).count()
            } else {
                bucket.len()
            };
        });
        n
    }

    /// Iterates over `(key, position)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, GeoPoint)> + '_ {
        self.positions.iter().map(|(k, p)| (*k, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn campus() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    /// All keys inside `region`, sorted — the brute-force-comparable view
    /// the tests assert against, built on the visitor primitive.
    fn sorted_keys(idx: &GridIndex<u32>, region: &CircleRegion) -> Vec<u32> {
        let mut out = Vec::new();
        idx.for_each_in_circle(region, |k| out.push(k));
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_query_remove_round_trip() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(7u32, campus());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.position(7), Some(campus()));
        let region = CircleRegion::new(campus(), 100.0);
        assert_eq!(sorted_keys(&idx, &region), vec![7]);
        assert!(idx.remove(7));
        assert!(!idx.remove(7));
        assert!(idx.is_empty());
        assert!(sorted_keys(&idx, &region).is_empty());
    }

    #[test]
    fn reinsert_moves_the_key() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(1u32, campus());
        idx.insert(1u32, campus().offset_by_meters(5_000.0, 0.0));
        assert_eq!(idx.len(), 1);
        assert!(sorted_keys(&idx, &CircleRegion::new(campus(), 1_000.0)).is_empty());
        let far = CircleRegion::new(campus().offset_by_meters(5_000.0, 0.0), 100.0);
        assert_eq!(sorted_keys(&idx, &far), vec![1]);
    }

    #[test]
    fn reinsert_at_same_position_is_a_noop() {
        let mut idx = GridIndex::new(200.0);
        idx.insert(1u32, campus());
        idx.insert(2u32, campus());
        // Re-report device 1 at its unchanged position: it must neither
        // disappear nor change its bucket ordering relative to device 2.
        idx.insert(1u32, campus());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), Some(campus()));
        let region = CircleRegion::new(campus(), 100.0);
        assert_eq!(sorted_keys(&idx, &region), vec![1, 2]);
    }

    #[test]
    fn count_matches_query_len() {
        let mut idx = GridIndex::new(150.0);
        for i in 0..30u32 {
            idx.insert(i, campus().offset_by_meters(f64::from(i) * 40.0, 0.0));
        }
        for radius in [50.0, 300.0, 700.0, 2000.0] {
            let region = CircleRegion::new(campus(), radius);
            assert_eq!(
                idx.count_in_circle(&region),
                sorted_keys(&idx, &region).len()
            );
        }
    }

    #[test]
    fn results_are_sorted_and_exact_at_boundaries() {
        let mut idx = GridIndex::new(100.0);
        for i in 0..20u32 {
            idx.insert(i, campus().offset_by_meters(0.0, 50.0 * f64::from(i)));
        }
        // Radius 500 captures offsets 0..=500 → keys 0..=10.
        let got = sorted_keys(&idx, &CircleRegion::new(campus(), 501.0));
        assert_eq!(got, (0..=10).collect::<Vec<_>>());
    }

    #[test]
    fn covered_coarse_cells_are_emitted_whole() {
        // A big circle over a dense cluster: most cells sit provably
        // inside and skip per-point checks — the answer must not change.
        let mut idx = GridIndex::new(100.0);
        for i in 0..400u32 {
            let n = f64::from(i % 20) * 150.0 - 1500.0;
            let e = f64::from(i / 20) * 150.0 - 1500.0;
            idx.insert(i, campus().offset_by_meters(n, e));
        }
        for radius in [200.0, 900.0, 2500.0, 6000.0] {
            let region = CircleRegion::new(campus(), radius);
            let brute = (0..400u32)
                .filter(|i| region.contains(idx.position(*i).unwrap()))
                .count();
            assert_eq!(idx.count_in_circle(&region), brute, "radius {radius}");
        }
    }

    proptest! {
        /// The index answers every circle query exactly like a brute-force
        /// scan.
        #[test]
        fn matches_brute_force(
            offsets in prop::collection::vec((-3000.0f64..3000.0, -3000.0f64..3000.0), 1..60),
            q_north in -2500.0f64..2500.0,
            q_east in -2500.0f64..2500.0,
            radius in 10.0f64..2500.0,
            cell_m in 50.0f64..1500.0,
        ) {
            let mut idx = GridIndex::new(cell_m);
            let points: Vec<GeoPoint> = offsets
                .iter()
                .map(|(n, e)| campus().offset_by_meters(*n, *e))
                .collect();
            for (i, p) in points.iter().enumerate() {
                idx.insert(i as u32, *p);
            }
            let region = CircleRegion::new(campus().offset_by_meters(q_north, q_east), radius);
            let mut brute: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| region.contains(**p))
                .map(|(i, _)| i as u32)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(sorted_keys(&idx, &region), brute);
        }
    }
}
