//! Million-device hot-state extension study. Run with
//! `cargo bench -p senseaid-bench --bench ext_million`.

use senseaid_bench::experiments::{ext_million, DEFAULT_SEED};

fn main() {
    let seed = std::env::var("SENSEAID_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    print!("{}", ext_million::run(seed));
}
