//! The cell-sharded control plane behind [`SenseAidServer`].
//!
//! The coordinator owns the task/CAS registry and the shard set. Devices
//! are partitioned across shards by serving cell (`cell % shard_count`,
//! unknown-cell devices on shard 0) and migrate when a position
//! observation reports a new cell. Requests are fanned out to the shards
//! whose cells overlap the request region — computed from the attached
//! [`CellularNetwork`] topology when one is configured, or all shards
//! otherwise — and queued on one home shard.
//!
//! Scheduling pops shard queue heads in global `(deadline, sample_at, id)`
//! order and merges qualification candidates (sorted by IMEI hash) across
//! the target shards, so for a given workload the assignment stream is
//! byte-identical for any shard count, including the single-shard layout
//! the paper's prototype used.
//!
//! At two or more configured workers (`SENSEAID_SHARD_WORKERS` or
//! [`SenseAidConfig::shard_workers`]), `poll` runs as a two-phase
//! pipeline: per-request qualification and selection execute in parallel
//! on a [`ShardPool`], then a single-threaded commit replays the global
//! order — see DESIGN.md §14. Output stays byte-identical at any worker
//! count.
//!
//! [`SenseAidServer`]: crate::server::SenseAidServer
//! [`SenseAidConfig::shard_workers`]: crate::config::SenseAidConfig::shard_workers

use std::collections::{BTreeMap, BTreeSet, HashSet};

use serde::{Deserialize, Serialize};

use senseaid_cellnet::{CellId, CellularNetwork};
use senseaid_device::{ImeiHash, Sensor, SensorReading};
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_radio::ResetPolicy;
use senseaid_sim::{SimDuration, SimTime, TraceEntry, TraceLog};
use senseaid_telemetry::{Attr, Lane, SpanId, Telemetry};

use crate::cas::{CasId, DeliveredReading};
use crate::config::SenseAidConfig;
use crate::error::SenseAidError;
use crate::policy::{DropNewest, SelectionPolicy, ShedCandidate, ShedPolicy};
use crate::pool::ShardPool;
use crate::privacy;
use crate::request::{RejectReason, Request, RequestId, RequestStatus, ShedReason};
use crate::shard::{QueueKey, Shard};
use crate::store::device_store::DeviceRecord;
use crate::store::task_store::{TaskStatus, TaskStore};
use crate::store::{CandidateRow, DeviceIndex, QualificationProbe};
use crate::task::{TaskId, TaskSpec};
use crate::validation::ReadingValidator;

/// A scheduling decision handed to the client side: these devices sample
/// this sensor at this instant and upload by this deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The request being served.
    pub request: RequestId,
    /// The owning task.
    pub task: TaskId,
    /// Sensor to sample.
    pub sensor: Sensor,
    /// When to sample.
    pub sample_at: SimTime,
    /// Latest useful upload instant.
    pub deadline: SimTime,
    /// The selected devices.
    pub devices: Vec<ImeiHash>,
    /// Upload payload size (bytes).
    pub payload_bytes: u64,
    /// Tail policy crowdsensing uploads must use (variant-dependent).
    pub reset_policy: ResetPolicy,
}

/// One selector execution, kept for the fairness analysis (paper Fig 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionEvent {
    /// The request that triggered the selection.
    pub request: RequestId,
    /// Its task.
    pub task: TaskId,
    /// How many devices were qualified at that instant (`N`).
    pub qualified: usize,
    /// The devices picked (`n` of them).
    pub selected: Vec<ImeiHash>,
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests scheduled onto devices.
    pub requests_assigned: u64,
    /// Requests fulfilled (density met before deadline).
    pub requests_fulfilled: u64,
    /// Requests that expired unmet.
    pub requests_expired: u64,
    /// Requests parked in the wait queue at least once.
    pub requests_waited: u64,
    /// Readings rejected by validation.
    pub readings_rejected: u64,
    /// Readings accepted and delivered.
    pub readings_accepted: u64,
    /// Envelopes whose sequence number was already accepted (retransmits
    /// that raced their ack).
    pub envelopes_duplicate: u64,
    /// Envelopes received on their second or later transmission attempt.
    pub envelopes_retried: u64,
    /// Readings deduplicated at the reading level (same device, same
    /// request) — e.g. replays across a snapshot-restore boundary.
    pub readings_duplicate: u64,
    /// Readings clients reported dropping on-device (deadline passed
    /// before sampling, or batches abandoned unacked); see
    /// [`ClientStats`](crate::client::ClientStats).
    pub client_readings_dropped: u64,
    /// Requests turned away by admission control (`Rejected{..}`).
    pub requests_rejected: u64,
    /// Requests dropped by the shed policy (`Shed{..}`).
    pub requests_shed: u64,
    /// Requests that terminated `Degraded{..}`: served best-effort below
    /// density, with at least one reading delivered.
    pub requests_degraded: u64,
    /// Devices evicted because their liveness lease expired.
    pub leases_expired: u64,
}

impl ServerStats {
    /// `(name, value)` pairs for the unified telemetry registry.
    pub fn named_counters(&self) -> [(&'static str, u64); 14] {
        [
            ("requests_assigned", self.requests_assigned),
            ("requests_fulfilled", self.requests_fulfilled),
            ("requests_expired", self.requests_expired),
            ("requests_waited", self.requests_waited),
            ("readings_rejected", self.readings_rejected),
            ("readings_accepted", self.readings_accepted),
            ("envelopes_duplicate", self.envelopes_duplicate),
            ("envelopes_retried", self.envelopes_retried),
            ("readings_duplicate", self.readings_duplicate),
            ("client_readings_dropped", self.client_readings_dropped),
            ("requests_rejected", self.requests_rejected),
            ("requests_shed", self.requests_shed),
            ("requests_degraded", self.requests_degraded),
            ("leases_expired", self.leases_expired),
        ]
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ActiveRequest {
    pub(crate) request: Request,
    pub(crate) cas: CasId,
    pub(crate) assigned: Vec<ImeiHash>,
    pub(crate) received: BTreeSet<ImeiHash>,
    /// Served best-effort below density (degraded mode): on expiry with
    /// any data, the request finalises `Degraded{..}` instead of
    /// `Expired`.
    pub(crate) degraded: bool,
}

/// Per-task degraded-mode hysteresis (see [`DegradedConfig`]).
///
/// Keyed by task, not by shard: shard layouts split cells differently, so
/// any per-shard mode flag would break the shard-count byte-identity
/// invariant. Task-keyed state is layout-independent.
///
/// [`DegradedConfig`]: crate::config::DegradedConfig
#[derive(Debug, Clone, Copy, Default)]
struct DegradeState {
    degraded: bool,
    /// First failed full selection of the current stress streak.
    stressed_since: Option<SimTime>,
    /// First successful full selection of the current recovery streak.
    healthy_since: Option<SimTime>,
}

/// Per-device envelope bookkeeping: the highest contiguously accepted
/// sequence number (the cumulative ack) plus any accepted-out-of-order
/// sequence numbers still ahead of it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct SeqLedger {
    pub(crate) floor: u64,
    pub(crate) ahead: BTreeSet<u64>,
}

impl SeqLedger {
    /// Accepts `seq` if unseen, advancing the cumulative floor over any
    /// now-contiguous run. Returns `false` for a replay.
    fn accept(&mut self, seq: u64) -> bool {
        if seq <= self.floor || self.ahead.contains(&seq) {
            return false;
        }
        self.ahead.insert(seq);
        while self.ahead.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        true
    }

    /// The cumulative ack: every sequence number ≤ this was accepted.
    fn cumulative(&self) -> u64 {
        self.floor
    }
}

/// What became of one reading inside a delivered envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryOutcome {
    /// Fresh reading, validated and queued for the CAS. `fulfilled` is
    /// true when it met the request's spatial density.
    Accepted {
        /// Whether this reading fulfilled the request.
        fulfilled: bool,
    },
    /// The server already holds this `(request, device)` reading — a
    /// retransmit or a replay across a snapshot restore. Safe to ack.
    Duplicate,
    /// The request is no longer active (fulfilled by others, expired, or
    /// cancelled); the reading is acked so the client stops retrying, but
    /// nothing is delivered.
    Obsolete,
    /// The server definitively rejected the reading (validation failure,
    /// unknown request, not assigned). Acked — retrying cannot help.
    Rejected(SenseAidError),
}

/// The server's response to one delivery envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReceipt {
    /// Cumulative ack for the sending device: every envelope sequence
    /// number ≤ this has been received.
    pub ack: u64,
    /// Per-reading outcomes, in the order submitted. Empty when the whole
    /// envelope was a duplicate.
    pub outcomes: Vec<DeliveryOutcome>,
}

/// A point-in-time copy of the control plane's durable state — what a
/// production deployment would persist at the edge. Taken periodically by
/// [`SenseAidServer::enable_snapshots`](crate::server::SenseAidServer::enable_snapshots)
/// and replayed by
/// [`recover_at`](crate::server::SenseAidServer::recover_at) after a
/// crash; anything newer than the snapshot is reconstructed from client
/// re-registration/re-announce and retransmitted envelopes.
#[derive(Debug, Clone)]
pub struct ControlSnapshot {
    pub(crate) taken_at: SimTime,
    pub(crate) tasks: TaskStore,
    pub(crate) next_request_id: u64,
    pub(crate) statuses: BTreeMap<RequestId, RequestStatus>,
    pub(crate) task_owner: BTreeMap<TaskId, CasId>,
    pub(crate) queued_run: Vec<Request>,
    pub(crate) queued_wait: Vec<Request>,
    pub(crate) active: Vec<(RequestId, ActiveRequest)>,
    pub(crate) devices: Vec<DeviceRecord>,
    pub(crate) seq_ledger: BTreeMap<ImeiHash, SeqLedger>,
    pub(crate) delivered_log: BTreeSet<(RequestId, ImeiHash)>,
    pub(crate) stats: ServerStats,
    pub(crate) selections: TraceLog<SelectionEvent>,
}

impl ControlSnapshot {
    /// When the snapshot was taken.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// How many device records the snapshot holds.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// How many requests were queued (run + wait) at snapshot time.
    pub fn queued_count(&self) -> usize {
        self.queued_run.len() + self.queued_wait.len()
    }

    /// How many requests were assigned and in flight at snapshot time.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

/// Everything dirtied since the last persisted generation, plus the small
/// always-full sections — the in-memory shape of a delta snapshot. Device
/// columns (the 10^6-scale state) appear only for touched IMEIs; the
/// request-scale state rides along whole because it is orders of
/// magnitude smaller. Built by [`Coordinator::snapshot_delta`], encoded
/// by `persist::snapshot`.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotDelta {
    pub(crate) taken_at: SimTime,
    pub(crate) next_request_id: u64,
    pub(crate) tasks: TaskStore,
    pub(crate) task_owner: BTreeMap<TaskId, CasId>,
    pub(crate) queued_run: Vec<Request>,
    pub(crate) queued_wait: Vec<Request>,
    pub(crate) active: Vec<(RequestId, ActiveRequest)>,
    pub(crate) stats: ServerStats,
    pub(crate) devices_changed: Vec<DeviceRecord>,
    pub(crate) devices_removed: Vec<ImeiHash>,
    pub(crate) statuses_changed: Vec<(RequestId, RequestStatus)>,
    pub(crate) seq_changed: Vec<(ImeiHash, SeqLedger)>,
    pub(crate) delivered_appended: Vec<(RequestId, ImeiHash)>,
    pub(crate) selections_base_len: usize,
    pub(crate) selections_appended: Vec<TraceEntry<SelectionEvent>>,
}

/// The set of shards a request fans out to.
///
/// For layouts up to 64 shards — every configuration the workspace runs —
/// this is one bitmask word on the stack: `target_shards` executes for
/// every request of every poll, and the per-request `Vec` it used to
/// allocate was measurable at million-device scale. Wider layouts fall
/// back to a sorted vector. Iteration always ascends, matching the sorted
/// vector the bitset replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardTargets {
    /// Bit `i` set ⇔ shard `i` is targeted.
    Bits(u64),
    /// Sorted, deduplicated shard indices (more than 64 shards).
    Many(Vec<usize>),
}

impl ShardTargets {
    /// Ascending iterator over the targeted shard indices.
    fn iter(&self) -> ShardTargetIter<'_> {
        match self {
            ShardTargets::Bits(word) => ShardTargetIter::Bits(*word),
            ShardTargets::Many(v) => ShardTargetIter::Many(v.iter()),
        }
    }

    /// The sole targeted shard, when there is exactly one.
    fn single(&self) -> Option<usize> {
        match self {
            ShardTargets::Bits(word) if word.is_power_of_two() => {
                Some(word.trailing_zeros() as usize)
            }
            ShardTargets::Many(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }
}

enum ShardTargetIter<'a> {
    Bits(u64),
    Many(std::slice::Iter<'a, usize>),
}

impl Iterator for ShardTargetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            ShardTargetIter::Bits(word) => {
                if *word == 0 {
                    return None;
                }
                let i = word.trailing_zeros() as usize;
                *word &= *word - 1;
                Some(i)
            }
            ShardTargetIter::Many(it) => it.next().copied(),
        }
    }
}

/// The compact phase-1 outcome for one due request (DESIGN.md §14):
/// everything the serial commit needs, with the candidate rows themselves
/// discarded so a large poll never holds per-request row buffers across
/// the phase boundary.
#[derive(Debug, Clone)]
struct AssignPlan {
    /// Candidate count at gather time (the `N` of the selection event).
    qualified: usize,
    /// Full selection: the picked devices, or `Err` when the policy could
    /// not field a complete set (the serial path discards the shortfall
    /// detail too).
    outcome: Result<Vec<ImeiHash>, ()>,
}

/// The sharded scheduling core. All methods assume the surrounding server
/// facade has already checked availability.
#[derive(Debug)]
pub(crate) struct Coordinator {
    config: SenseAidConfig,
    policy: Box<dyn SelectionPolicy>,
    validator: ReadingValidator,
    /// Kept so a snapshot restore can rebuild empty shard indexes.
    index_factory: fn() -> Box<dyn DeviceIndex>,
    shards: Vec<Shard>,
    /// Which shard each registered device is homed on.
    home: BTreeMap<ImeiHash, usize>,
    /// Region→cell fan-out oracle; without it every request targets every
    /// shard (always sound, never minimal).
    topology: Option<CellularNetwork>,
    tasks: TaskStore,
    next_request_id: u64,
    active: BTreeMap<RequestId, ActiveRequest>,
    statuses: BTreeMap<RequestId, RequestStatus>,
    task_owner: BTreeMap<TaskId, CasId>,
    outbox: Vec<(CasId, DeliveredReading)>,
    selections: TraceLog<SelectionEvent>,
    stats: ServerStats,
    /// Per-device envelope sequence tracking for the reliable path.
    seq_ledger: BTreeMap<ImeiHash, SeqLedger>,
    /// `(request, device)` pairs already delivered — the reading-level
    /// dedup that makes retried `send_sense_data` idempotent.
    delivered_log: BTreeSet<(RequestId, ImeiHash)>,
    /// Set when device state changed in a way that could requalify a
    /// parked request; cleared by a poll that finds nothing more to do.
    wait_dirty: bool,
    /// Monotone counter bumped whenever device columns change in a way
    /// that could alter qualification (registration, state updates,
    /// position moves, evictions, responsiveness flips). The wait-queue
    /// recheck memoises per-request verdicts against it, so parked
    /// requests are only re-qualified when something actually changed.
    qual_epoch: u64,
    /// Per parked request: the epoch its last recheck ran at, and whether
    /// partial selection could field at least one device then. Entries
    /// are pruned to the currently parked set on every recheck pass.
    recheck_memo: BTreeMap<RequestId, (u64, bool)>,
    /// Victim chooser for wait-queue overflow (see `park_request`).
    shed_policy: Box<dyn ShedPolicy>,
    /// Lease bookkeeping, populated only when `config.device_lease` is
    /// set: per-device expiry instant plus a cached minimum. Renewals are
    /// the hot path (every radio contact lands here), so they do one map
    /// insert and an O(1) min update; the full map is only scanned when
    /// the minimum itself is displaced (an eviction, or the rare renewal
    /// of the earliest-expiry device). Kept at the coordinator (not per
    /// shard) so lease decisions are shard-layout invariant by
    /// construction.
    lease_expiry: BTreeMap<ImeiHash, SimTime>,
    /// Cached minimum of `lease_expiry`'s values. The scheduler's wakeup
    /// term reads this once per tick, so it must be a field load.
    earliest_lease: Option<SimTime>,
    /// Per-task degraded-mode hysteresis (see [`DegradeState`]).
    degrade_state: BTreeMap<TaskId, DegradeState>,
    /// Telemetry handle; off unless the embedding harness enables it.
    tel: Telemetry,
    /// Open request spans (assignment → fulfilment/expiry). Survives a
    /// snapshot restore so requests that outlive a crash still close.
    request_spans: BTreeMap<RequestId, SpanId>,
    /// Dirty-column tracking for delta snapshots (see `persist`). Off by
    /// default so the hot paths pay nothing; persistence turns it on and
    /// each mutation then marks what it touched.
    track_dirty: bool,
    /// Request ids whose status changed since the last persisted
    /// generation.
    dirty_statuses: BTreeSet<RequestId>,
    /// Devices whose sequence ledger changed since the last generation.
    dirty_seq: BTreeSet<ImeiHash>,
    /// `(request, device)` pairs appended to the delivered log since the
    /// last generation (the log is insert-only, so appends suffice).
    delivered_since: Vec<(RequestId, ImeiHash)>,
    /// Length of `selections` at the last persisted generation (the log
    /// is append-only, so a delta carries only entries past the mark).
    selections_mark: usize,
    /// Worker pool for the poll pipeline's parallel phase 1 (DESIGN.md
    /// §14). One worker pins the serial legacy path; output is
    /// byte-identical at any count.
    pool: ShardPool,
}

impl Coordinator {
    pub fn new(
        config: SenseAidConfig,
        policy: Box<dyn SelectionPolicy>,
        index_factory: fn() -> Box<dyn DeviceIndex>,
    ) -> Self {
        let shard_count = config.shard_count.max(1);
        let pool = ShardPool::from_config(config.shard_workers);
        Coordinator {
            config,
            policy,
            validator: ReadingValidator::new(),
            index_factory,
            shards: (0..shard_count)
                .map(|_| Shard::new(index_factory()))
                .collect(),
            home: BTreeMap::new(),
            topology: None,
            tasks: TaskStore::new(),
            next_request_id: 0,
            active: BTreeMap::new(),
            statuses: BTreeMap::new(),
            task_owner: BTreeMap::new(),
            outbox: Vec::new(),
            selections: TraceLog::new(),
            stats: ServerStats::default(),
            seq_ledger: BTreeMap::new(),
            delivered_log: BTreeSet::new(),
            wait_dirty: false,
            qual_epoch: 0,
            recheck_memo: BTreeMap::new(),
            shed_policy: Box::new(DropNewest),
            lease_expiry: BTreeMap::new(),
            earliest_lease: None,
            degrade_state: BTreeMap::new(),
            tel: Telemetry::off(),
            request_spans: BTreeMap::new(),
            track_dirty: false,
            dirty_statuses: BTreeSet::new(),
            dirty_seq: BTreeSet::new(),
            delivered_since: Vec::new(),
            selections_mark: 0,
            pool,
        }
    }

    /// The worker count the poll pipeline resolved at construction.
    pub fn shard_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Swaps the wait-queue overflow victim chooser (default:
    /// [`DropNewest`]). Only consulted when `config.wait_queue_bound` is
    /// set.
    pub fn set_shed_policy(&mut self, policy: Box<dyn ShedPolicy>) {
        self.shed_policy = policy;
    }

    /// Routes this coordinator's instrumentation into `tel`.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn config(&self) -> &SenseAidConfig {
        &self.config
    }

    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn device_count(&self) -> usize {
        self.shards.iter().map(Shard::device_count).sum()
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    pub fn wait_queue_len(&self) -> usize {
        self.shards.iter().map(Shard::wait_queue_len).sum()
    }

    pub fn run_queue_len(&self) -> usize {
        self.shards.iter().map(Shard::run_queue_len).sum()
    }

    pub fn selections(&self) -> &TraceLog<SelectionEvent> {
        &self.selections
    }

    pub fn request_status(&self, id: RequestId) -> Option<RequestStatus> {
        self.statuses.get(&id).copied()
    }

    pub fn device(&self, imei: ImeiHash) -> Option<DeviceRecord> {
        let shard = *self.home.get(&imei)?;
        self.shards[shard].device(imei)
    }

    /// The shard `imei` is homed on, for telemetry lane assignment.
    pub fn device_home_shard(&self, imei: ImeiHash) -> Option<usize> {
        self.home.get(&imei).copied()
    }

    /// The device index holding `imei`, for the narrow column mutators.
    fn device_index_mut(&mut self, imei: ImeiHash) -> Option<&mut dyn DeviceIndex> {
        let shard = *self.home.get(&imei)?;
        Some(self.shards[shard].devices())
    }

    /// How many known requests are not yet in a terminal status. Zero at
    /// the end of a run means nothing was left parked forever.
    pub fn unresolved_request_count(&self) -> usize {
        self.statuses.values().filter(|s| !s.is_terminal()).count()
    }

    /// Every known request's status, in id order (for invariant checks).
    pub fn request_statuses(&self) -> impl Iterator<Item = (RequestId, RequestStatus)> + '_ {
        self.statuses.iter().map(|(id, s)| (*id, *s))
    }

    // ------------------------------------------------------------------
    // Status discipline
    // ------------------------------------------------------------------

    /// Writes `status` for `id` unless the current status is terminal.
    /// Terminal statuses (`Fulfilled`/`Expired`/`Cancelled`/`Rejected`/
    /// `Shed`/`Degraded`) are never overwritten, so a request the shed
    /// policy dropped or that finalised degraded cannot be silently
    /// resurrected by a later `update_task_param` or queue churn — the
    /// same truthfulness rule the `Cancelled` fix established. Returns
    /// whether the write happened.
    fn set_status(&mut self, id: RequestId, status: RequestStatus) -> bool {
        if self.statuses.get(&id).is_some_and(|s| s.is_terminal()) {
            return false;
        }
        self.statuses.insert(id, status);
        if self.track_dirty {
            self.dirty_statuses.insert(id);
        }
        true
    }

    // ------------------------------------------------------------------
    // Device leases
    // ------------------------------------------------------------------

    /// Grants or renews `imei`'s liveness lease from a radio contact at
    /// `contact`. No-op unless `config.device_lease` is set.
    fn renew_lease(&mut self, imei: ImeiHash, contact: SimTime) {
        let Some(lease) = self.config.device_lease else {
            return;
        };
        let expiry = contact + lease;
        let old = self.lease_expiry.insert(imei, expiry);
        // Contacts only push expiries forward, so the renewing device is
        // almost never the cached minimum; when it is, recompute.
        if old.is_some() && old == self.earliest_lease {
            self.recompute_earliest_lease();
        } else if self.earliest_lease.is_none_or(|e| expiry < e) {
            self.earliest_lease = Some(expiry);
        }
    }

    /// Forgets `imei`'s lease (deregistration or eviction).
    fn drop_lease(&mut self, imei: ImeiHash) {
        let old = self.lease_expiry.remove(&imei);
        if old.is_some() && old == self.earliest_lease {
            self.recompute_earliest_lease();
        }
    }

    /// Re-derives the cached earliest expiry by scanning the lease map —
    /// only called when the current minimum is displaced.
    fn recompute_earliest_lease(&mut self) {
        self.earliest_lease = self.lease_expiry.values().min().copied();
    }

    /// The earliest lease expiry across all devices — the scheduler's
    /// `lease_expiry` wakeup term. A cached field load: the wakeup
    /// computation runs on every driver tick, renewals only on contact.
    pub(crate) fn next_lease_expiry(&self) -> Option<SimTime> {
        self.earliest_lease
    }

    /// The lazy lease sweep, run at the top of every poll: devices whose
    /// lease expired by `now` are evicted — record removed, lease
    /// dropped, and any in-flight assignment that can no longer reach its
    /// density released back to the run queue so selection re-runs over
    /// the surviving population. Event-driven, not polled: the scheduler's
    /// `lease_expiry` term arms a wakeup at the earliest expiry, so silent
    /// devices cost nothing until one actually lapses.
    fn expire_leases(&mut self, now: SimTime) {
        // Field-load fast path: polls between expiries pay nothing.
        if self.earliest_lease.is_none_or(|e| e > now) {
            return;
        }
        // A sweep is actually due: gather the lapsed leases and evict in
        // ascending (expiry, imei) order, so eviction order is identical
        // for any shard layout.
        let mut lapsed: Vec<(SimTime, ImeiHash)> = self
            .lease_expiry
            .iter()
            .filter(|(_, &expiry)| expiry <= now)
            .map(|(&imei, &expiry)| (expiry, imei))
            .collect();
        lapsed.sort_unstable();
        for (expiry, imei) in lapsed {
            self.lease_expiry.remove(&imei);
            self.stats.leases_expired += 1;
            if let Some(shard) = self.home.remove(&imei) {
                self.shards[shard].remove_device(imei);
                self.tel.instant(
                    "lease.expired",
                    now,
                    Lane::device(shard as u64, imei.0),
                    SpanId::NONE,
                    vec![
                        Attr::u64("imei", imei.0),
                        Attr::u64("expiry_us", expiry.as_micros()),
                    ],
                );
            }
            // Strip the evictee from in-flight assignments; release any
            // assignment that lost its ability to meet density back to
            // the run queue. Progress survives the round trip: re-assign
            // seeds `received` from the delivered log.
            let mut released: Vec<RequestId> = Vec::new();
            for (id, active) in self.active.iter_mut() {
                let before = active.assigned.len();
                active.assigned.retain(|d| *d != imei);
                if active.assigned.len() == before {
                    continue;
                }
                let reachable = active.received.len()
                    + active
                        .assigned
                        .iter()
                        .filter(|d| !active.received.contains(d))
                        .count();
                if reachable < active.request.density() {
                    released.push(*id);
                }
            }
            for id in released {
                let active = self.active.remove(&id).expect("listed above");
                if let Some(span) = self.request_spans.remove(&id) {
                    self.tel.instant(
                        "lease.released",
                        now,
                        Lane::control(0),
                        span,
                        vec![Attr::u64("request", id.0), Attr::u64("imei", imei.0)],
                    );
                    self.tel.exit(span, now);
                }
                if self.set_status(id, RequestStatus::Pending) {
                    self.enqueue_run(active.request);
                }
            }
            self.qual_epoch += 1;
            self.wait_dirty = true;
        }
        self.recompute_earliest_lease();
    }

    // ------------------------------------------------------------------
    // Degraded-mode hysteresis
    // ------------------------------------------------------------------

    /// Notes a failed full selection for `task`. Returns whether the task
    /// is (now) in degraded mode and partial service should be attempted.
    /// Static over the split fields so callers can hold shard borrows.
    fn note_selection_failure(
        states: &mut BTreeMap<TaskId, DegradeState>,
        config: &SenseAidConfig,
        tel: &Telemetry,
        task: TaskId,
        now: SimTime,
    ) -> bool {
        let Some(cfg) = config.degraded else {
            return false;
        };
        let state = states.entry(task).or_default();
        state.healthy_since = None;
        if state.degraded {
            return true;
        }
        let since = *state.stressed_since.get_or_insert(now);
        if now >= since + cfg.enter_after {
            state.degraded = true;
            tel.instant(
                "degraded.enter",
                now,
                Lane::control(0),
                SpanId::NONE,
                vec![
                    Attr::u64("task", task.0),
                    Attr::u64("stressed_since_us", since.as_micros()),
                ],
            );
            true
        } else {
            false
        }
    }

    /// Notes a successful full selection for `task`; sustained health for
    /// `exit_after` leaves degraded mode (the hysteresis that stops a
    /// borderline cell from flapping).
    fn note_selection_success(
        states: &mut BTreeMap<TaskId, DegradeState>,
        config: &SenseAidConfig,
        tel: &Telemetry,
        task: TaskId,
        now: SimTime,
    ) {
        let Some(cfg) = config.degraded else {
            return;
        };
        let Some(state) = states.get_mut(&task) else {
            return;
        };
        state.stressed_since = None;
        if !state.degraded {
            return;
        }
        let since = *state.healthy_since.get_or_insert(now);
        if now >= since + cfg.exit_after {
            state.degraded = false;
            state.healthy_since = None;
            tel.instant(
                "degraded.exit",
                now,
                Lane::control(0),
                SpanId::NONE,
                vec![
                    Attr::u64("task", task.0),
                    Attr::u64("healthy_since_us", since.as_micros()),
                ],
            );
        }
    }

    // ------------------------------------------------------------------
    // Sharding geometry
    // ------------------------------------------------------------------

    pub fn set_topology(&mut self, network: CellularNetwork) {
        self.topology = Some(network);
        // Target-shard fan-out depends on the topology, so memoised
        // recheck verdicts are stale.
        self.qual_epoch += 1;
        self.wait_dirty = true;
    }

    fn shard_of_cell(&self, cell: Option<CellId>) -> usize {
        cell.map_or(0, |c| c.0 % self.shards.len())
    }

    /// The shards whose devices could qualify for a request over `region`.
    ///
    /// Soundness: a device qualifies only when its observed position lies
    /// inside `region`; its serving cell's tower covers that position, so
    /// that tower's coverage intersects `region` and its cell is in
    /// `cells_covering(region)`. Devices with no observed cell are homed
    /// on shard 0, which is always targeted.
    ///
    /// Runs on every request of every poll, so the common case (at most
    /// 64 shards) builds a stack bitmask via the topology's allocation-free
    /// cell visitor; only wider layouts fall back to a sorted vector.
    fn target_shards(&self, region: &CircleRegion) -> ShardTargets {
        let n = self.shards.len();
        if n == 1 {
            return ShardTargets::Bits(1);
        }
        match &self.topology {
            Some(net) if n <= 64 => {
                // Shard 0 (bit 0) is always targeted: unknown-cell devices
                // live there.
                let mut bits: u64 = 1;
                net.for_each_cell_covering(region, |c| bits |= 1u64 << (c.0 % n));
                ShardTargets::Bits(bits)
            }
            Some(net) => {
                let mut targets: Vec<usize> = vec![0];
                net.for_each_cell_covering(region, |c| targets.push(c.0 % n));
                targets.sort_unstable();
                targets.dedup();
                ShardTargets::Many(targets)
            }
            None if n <= 64 => ShardTargets::Bits(if n == 64 { u64::MAX } else { (1u64 << n) - 1 }),
            None => ShardTargets::Many((0..n).collect()),
        }
    }

    /// Qualified candidate rows across the target shards, merged into
    /// ascending IMEI-hash order (the order one unsharded store returns).
    fn candidates_across(
        shards: &[Shard],
        targets: &ShardTargets,
        probe: &QualificationProbe,
    ) -> Vec<CandidateRow> {
        // Single-target fast path: one shard's rows already arrive in
        // ascending IMEI order, straight into the output buffer.
        if let Some(only) = targets.single() {
            let mut out = Vec::new();
            shards[only].candidates_into(probe, &mut out);
            return out;
        }
        // Each shard already returns its candidates in ascending IMEI
        // order, so a k-way merge of the per-shard lists reproduces the
        // single-store order without re-sorting the concatenation.
        let per_shard: Vec<Vec<CandidateRow>> = targets
            .iter()
            .map(|s| {
                let mut rows = Vec::new();
                shards[s].candidates_into(probe, &mut rows);
                rows
            })
            .collect();
        let total = per_shard.iter().map(Vec::len).sum();
        let mut merged: Vec<CandidateRow> = Vec::with_capacity(total);
        let mut cursors = vec![0usize; per_shard.len()];
        for _ in 0..total {
            let next = per_shard
                .iter()
                .zip(&cursors)
                .enumerate()
                .filter_map(|(i, (list, &c))| list.get(c).map(|r| (i, r.imei)))
                .min_by_key(|&(_, imei)| imei)
                .map(|(i, _)| i)
                .expect("total counts remaining elements");
            merged.push(per_shard[next][cursors[next]]);
            cursors[next] += 1;
        }
        merged
    }

    /// Candidate rows for `probe` across the target shards: the canonical
    /// ascending-IMEI merge for order-sensitive policies, or a plain
    /// shard-walk concatenation — no per-shard sort, no cross-shard merge
    /// — when the policy declared
    /// [order-insensitivity](SelectionPolicy::candidate_order_insensitive).
    /// The two differ only in row order, never in the row set, so every
    /// answer such a policy computes is identical either way; skipping the
    /// sort+merge is what makes the pipeline's gather phase cheap.
    fn gather_for(
        shards: &[Shard],
        targets: &ShardTargets,
        probe: &QualificationProbe,
        order_insensitive: bool,
    ) -> Vec<CandidateRow> {
        if !order_insensitive {
            return Self::candidates_across(shards, targets, probe);
        }
        let mut out = Vec::new();
        for s in targets.iter() {
            shards[s].candidates_unordered_into(probe, &mut out);
        }
        out
    }

    pub fn qualified_devices(&self, request: &Request) -> Vec<ImeiHash> {
        let probe = QualificationProbe::for_request(request);
        let targets = self.target_shards(&probe.region);
        Self::candidates_across(&self.shards, &targets, &probe)
            .into_iter()
            .map(|r| r.imei)
            .collect()
    }

    pub fn qualified_count(&self, probe: &QualificationProbe) -> usize {
        let targets = self.target_shards(&probe.region);
        targets
            .iter()
            .map(|s| self.shards[s].qualified_count(probe))
            .sum()
    }

    /// The shard a request over `region` is homed on: the lowest-numbered
    /// shard among those serving the region's covered cells. Without a
    /// topology (or with a single shard) everything homes on shard 0.
    /// Homing places the queue entry; scheduling order is unaffected
    /// because the coordinator merge-pops heads across all shards.
    fn home_shard(&self, region: &CircleRegion) -> usize {
        match &self.topology {
            Some(net) if self.shards.len() > 1 => {
                let mut min: Option<usize> = None;
                net.for_each_cell_covering(region, |c| {
                    let s = c.0 % self.shards.len();
                    if min.is_none_or(|m| s < m) {
                        min = Some(s);
                    }
                });
                min.unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Queues `request` on its home shard's run queue.
    fn enqueue_run(&mut self, request: Request) {
        let home = self.home_shard(&request.region());
        self.shards[home].push_run(request);
    }

    /// Parks `request` on its home shard's wait queue.
    fn enqueue_wait(&mut self, request: Request) {
        let home = self.home_shard(&request.region());
        self.shards[home].push_wait(request);
    }

    /// The shard holding the globally smallest head key, per `head`.
    fn min_head(
        shards: &[Shard],
        head: impl Fn(&Shard) -> Option<QueueKey>,
    ) -> Option<(usize, QueueKey)> {
        let mut best: Option<(usize, QueueKey)> = None;
        for (i, shard) in shards.iter().enumerate() {
            if let Some(key) = head(shard) {
                if best.is_none_or(|(_, b)| key < b) {
                    best = Some((i, key));
                }
            }
        }
        best
    }

    /// Pops the globally next due request across all shard run queues,
    /// replicating a single queue's `pop_due`: the head (by key order)
    /// pops only once its sampling instant has arrived.
    fn pop_due_global(&mut self, now: SimTime) -> Option<Request> {
        let (shard, key) = Self::min_head(&self.shards, Shard::run_head_key)?;
        if key.1 > now {
            return None;
        }
        self.shards[shard].pop_run()
    }

    // ------------------------------------------------------------------
    // Device lifecycle
    // ------------------------------------------------------------------

    /// Registers a device, or — when it is already registered — refreshes
    /// its preferences and state while preserving the history the fresh
    /// record cannot know (selection count, spent energy, position/cell).
    /// A client re-`register()` after losing an ack is therefore
    /// idempotent: it never resets fairness or budget accounting.
    pub fn register_device(&mut self, record: DeviceRecord) {
        let imei = record.imei;
        let contact = record.last_comm;
        if self.home.contains_key(&imei) {
            let refreshed = self
                .device_index_mut(imei)
                .expect("home map tracks membership")
                .refresh_registration(&record);
            debug_assert!(refreshed, "home map tracks membership");
            self.renew_lease(imei, contact);
            self.qual_epoch += 1;
            self.wait_dirty = true;
            return;
        }
        let shard = self.shard_of_cell(record.cell);
        self.home.insert(imei, shard);
        self.shards[shard].insert_device(record);
        self.renew_lease(imei, contact);
        self.qual_epoch += 1;
        self.wait_dirty = true;
    }

    pub fn deregister_device(&mut self, imei: ImeiHash) -> Result<(), SenseAidError> {
        let shard = self
            .home
            .remove(&imei)
            .ok_or(SenseAidError::UnknownDevice(imei))?;
        self.shards[shard].remove_device(imei);
        self.drop_lease(imei);
        // Drop it from any in-flight assignments.
        for active in self.active.values_mut() {
            active.assigned.retain(|d| *d != imei);
        }
        self.qual_epoch += 1;
        self.wait_dirty = true;
        Ok(())
    }

    pub fn update_preferences(
        &mut self,
        imei: ImeiHash,
        energy_budget_j: f64,
        critical_battery_pct: f64,
    ) -> Result<(), SenseAidError> {
        let updated = self
            .device_index_mut(imei)
            .is_some_and(|idx| idx.update_preferences(imei, energy_budget_j, critical_battery_pct));
        if !updated {
            return Err(SenseAidError::UnknownDevice(imei));
        }
        self.qual_epoch += 1;
        self.wait_dirty = true;
        Ok(())
    }

    pub fn update_device_state(
        &mut self,
        imei: ImeiHash,
        battery_pct: f64,
        cs_energy_j: f64,
        now: SimTime,
    ) -> Result<(), SenseAidError> {
        let updated = self
            .device_index_mut(imei)
            .is_some_and(|idx| idx.update_state(imei, battery_pct, cs_energy_j, now));
        if !updated {
            return Err(SenseAidError::UnknownDevice(imei));
        }
        self.renew_lease(imei, now);
        self.qual_epoch += 1;
        self.wait_dirty = true;
        Ok(())
    }

    /// Records an observed position/cell, migrating the device to the
    /// shard serving its new cell when that changed.
    pub fn observe_device(
        &mut self,
        imei: ImeiHash,
        position: GeoPoint,
        cell: Option<CellId>,
    ) -> Result<(), SenseAidError> {
        let current = *self
            .home
            .get(&imei)
            .ok_or(SenseAidError::UnknownDevice(imei))?;
        let target = self.shard_of_cell(cell);
        if target != current {
            let mut record = self.shards[current]
                .remove_device(imei)
                .expect("home map tracks shard membership");
            record.position = Some(position);
            record.cell = cell;
            self.shards[target].insert_device(record);
            self.home.insert(imei, target);
        } else if !self.shards[current].observe(imei, position, cell) {
            return Err(SenseAidError::UnknownDevice(imei));
        }
        self.qual_epoch += 1;
        self.wait_dirty = true;
        Ok(())
    }

    pub fn record_device_comm(
        &mut self,
        imei: ImeiHash,
        now: SimTime,
    ) -> Result<(), SenseAidError> {
        let updated = self
            .device_index_mut(imei)
            .is_some_and(|idx| idx.record_comm(imei, now));
        if !updated {
            return Err(SenseAidError::UnknownDevice(imei));
        }
        self.renew_lease(imei, now);
        self.qual_epoch += 1;
        self.wait_dirty = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    pub fn submit_task_for(&mut self, cas: CasId, spec: TaskSpec, now: SimTime) -> TaskId {
        let id = self.tasks.insert(spec.clone(), now);
        self.task_owner.insert(id, cas);
        let next_request_id = &mut self.next_request_id;
        let requests = spec.expand_requests(id, now, || {
            *next_request_id += 1;
            RequestId(*next_request_id)
        });
        self.tasks
            .get_mut(id)
            .expect("just inserted")
            .requests_generated = requests.len();
        for r in requests {
            self.admit_run(r, now);
        }
        id
    }

    /// Admission control: queues `request` on its home run queue, or turns
    /// it away with `Rejected{QueueFull}` when the control plane's run
    /// queues are at the configured bound. The bound applies to the global
    /// run-queue population (summed over shards), not per shard slice —
    /// shard layouts split cells differently, so a per-slice bound would
    /// break the shard-count byte-identity invariant.
    fn admit_run(&mut self, request: Request, now: SimTime) {
        if let Some(bound) = self.config.run_queue_bound {
            if self.run_queue_len() >= bound {
                let id = request.id();
                self.stats.requests_rejected += 1;
                self.set_status(
                    id,
                    RequestStatus::Rejected {
                        reason: RejectReason::QueueFull,
                    },
                );
                self.tel.instant(
                    "shed.rejected",
                    now,
                    Lane::control(0),
                    SpanId::NONE,
                    vec![
                        Attr::u64("request", id.0),
                        Attr::u64("task", request.task().0),
                        Attr::u64("run_queue", self.run_queue_len() as u64),
                    ],
                );
                return;
            }
        }
        self.set_status(request.id(), RequestStatus::Pending);
        self.enqueue_run(request);
    }

    pub fn update_task_param(
        &mut self,
        task: TaskId,
        spatial_density: Option<usize>,
        sampling_period: Option<SimDuration>,
        region: Option<CircleRegion>,
        now: SimTime,
    ) -> Result<(), SenseAidError> {
        let (new_spec, submitted_at) = {
            let state = self.tasks.get_mut(task)?;
            (
                state
                    .spec
                    .with_updates(spatial_density, sampling_period, region)?,
                state.submitted_at,
            )
        };
        // Drop queued (not yet assigned) requests and regenerate the
        // future ones under the new spec. The dropped requests are
        // superseded, never served: mark them cancelled so
        // `request_status` stays truthful (as `delete_task` does).
        let superseded: Vec<RequestId> = self
            .shards
            .iter()
            .flat_map(Shard::queued_requests)
            .filter(|r| r.task() == task)
            .map(Request::id)
            .collect();
        for id in superseded {
            // `set_status` refuses terminal overwrites, so a request the
            // shed policy already dropped (or that finalised degraded)
            // stays in its truthful state instead of flipping to
            // `Cancelled`.
            self.set_status(id, RequestStatus::Cancelled);
        }
        for shard in &mut self.shards {
            shard.remove_task(task);
        }
        let next_request_id = &mut self.next_request_id;
        let regenerated: Vec<Request> = new_spec
            .expand_requests(task, submitted_at, || {
                *next_request_id += 1;
                RequestId(*next_request_id)
            })
            .into_iter()
            .filter(|r| r.sample_at() >= now)
            .collect();
        let state = self.tasks.get_mut(task)?;
        state.spec = new_spec;
        state.requests_generated += regenerated.len();
        for r in regenerated {
            self.admit_run(r, now);
        }
        Ok(())
    }

    pub fn delete_task(&mut self, task: TaskId) -> Result<(), SenseAidError> {
        self.tasks.delete(task)?;
        // Every unresolved request of the task — queued or in flight — is
        // now cancelled.
        let cancelled: Vec<RequestId> = self
            .shards
            .iter()
            .flat_map(Shard::queued_requests)
            .filter(|r| r.task() == task)
            .map(Request::id)
            .chain(
                self.active
                    .values()
                    .filter(|a| a.request.task() == task)
                    .map(|a| a.request.id()),
            )
            .collect();
        for id in cancelled {
            self.set_status(id, RequestStatus::Cancelled);
        }
        for shard in &mut self.shards {
            shard.remove_task(task);
        }
        self.active.retain(|_, a| a.request.task() != task);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The scheduling loop (Algorithm 1)
    // ------------------------------------------------------------------

    pub fn poll(&mut self, now: SimTime) -> Vec<Assignment> {
        let stats_before = self.stats;
        let poll_span = self.enter_poll_span(now);
        self.expire_leases(now);
        self.expire_overdue(now);
        // The two-phase pipeline (DESIGN.md §14) speculates with plain
        // `select`, so policy-internal instants (`selector.select`) would
        // be lost under recording; telemetry-active polls therefore take
        // the canonical serial path — recording is an analysis mode, and
        // this makes trace byte-identity across worker counts true by
        // construction rather than by argument.
        let pipelined = !self.pool.is_serial() && !self.tel.active();
        if pipelined {
            self.recheck_wait_queue_pipelined(now);
        } else {
            self.recheck_wait_queue(now);
        }

        let mut assignments = Vec::new();
        if pipelined {
            self.assign_due_pipelined(now, &mut assignments);
        } else {
            while let Some(request) = self.pop_due_global(now) {
                if request.deadline() <= now {
                    self.expire_request(&request, now);
                    continue;
                }
                if self
                    .tasks
                    .get(request.task())
                    .map(|t| t.status != TaskStatus::Active)
                    .unwrap_or(true)
                {
                    continue; // deleted while queued
                }
                match self.try_assign(request, now) {
                    Ok(assignment) => {
                        self.set_status(assignment.request, RequestStatus::Assigned);
                        assignments.push(assignment);
                    }
                    Err(request) => {
                        self.park_request(request, now);
                    }
                }
            }
        }
        // A round that made progress may have enabled further work (e.g.
        // freshly-marked-unresponsive devices or assignments bumping
        // fairness counters); keep wakeups hot until a round runs dry,
        // matching a fixed-period poller's behaviour. Parking a request is
        // *not* progress: counting `requests_waited` here would arm a
        // same-instant wakeup every time a request fails selection and
        // re-parks, livelocking an event-driven driver at one instant.
        let progress = ServerStats {
            requests_waited: stats_before.requests_waited,
            ..self.stats
        };
        self.wait_dirty = progress != stats_before;
        if poll_span.is_some() {
            self.record_next_wakeup(now, poll_span);
            self.tel.exit(poll_span, now);
        }
        assignments
    }

    /// Opens the per-poll scheduler span with one queue-depth instant per
    /// shard on that shard's control lane.
    fn enter_poll_span(&self, now: SimTime) -> SpanId {
        if !self.tel.active() {
            return SpanId::NONE;
        }
        let span = self.tel.enter(
            "poll",
            now,
            Lane::control(0),
            SpanId::NONE,
            vec![
                Attr::u64("run_queue", self.run_queue_len() as u64),
                Attr::u64("wait_queue", self.wait_queue_len() as u64),
                Attr::u64("active", self.active.len() as u64),
            ],
        );
        for (i, shard) in self.shards.iter().enumerate() {
            self.tel.instant(
                "shard.queues",
                now,
                Lane::control(i as u64),
                span,
                vec![
                    Attr::u64("run", shard.run_queue_len() as u64),
                    Attr::u64("wait", shard.wait_queue_len() as u64),
                    Attr::u64("devices", shard.device_count() as u64),
                ],
            );
        }
        span
    }

    /// Parks `request` in the wait queue, shedding under overload: when
    /// the global wait-queue population is at `config.wait_queue_bound`,
    /// the shed policy picks a victim — the incoming request or a parked
    /// one — which terminates `Shed{WaitQueueFull}` instead of occupying
    /// the queue. Like admission, the bound is global (summed over
    /// shards), keeping shed decisions shard-layout invariant; the parked
    /// candidates are handed to the policy in global `(deadline,
    /// sample_at, id)` order for the same reason.
    fn park_request(&mut self, request: Request, now: SimTime) {
        if let Some(bound) = self.config.wait_queue_bound {
            if self.wait_queue_len() >= bound {
                let victim = self.choose_shed_victim(&request, now);
                let (shed, parked_incoming) = if victim == request.id() {
                    (request, None)
                } else {
                    let evicted = self
                        .shards
                        .iter_mut()
                        .find_map(|s| s.remove_wait(victim))
                        .expect("victim was drawn from the parked set");
                    (evicted, Some(request))
                };
                self.stats.requests_shed += 1;
                self.set_status(
                    shed.id(),
                    RequestStatus::Shed {
                        reason: ShedReason::WaitQueueFull,
                    },
                );
                self.tel.instant(
                    "shed.dropped",
                    now,
                    Lane::control(0),
                    SpanId::NONE,
                    vec![
                        Attr::u64("request", shed.id().0),
                        Attr::u64("task", shed.task().0),
                        Attr::u64("wait_queue", self.wait_queue_len() as u64),
                    ],
                );
                let Some(request) = parked_incoming else {
                    return; // the incoming request was the victim
                };
                self.stats.requests_waited += 1;
                self.set_status(request.id(), RequestStatus::Waiting);
                self.enqueue_wait(request);
                return;
            }
        }
        self.stats.requests_waited += 1;
        self.set_status(request.id(), RequestStatus::Waiting);
        self.enqueue_wait(request);
    }

    /// Asks the shed policy for the overflow victim, feeding it the
    /// incoming request plus every parked one (global key order), each
    /// with its current qualified-device supply.
    fn choose_shed_victim(&self, incoming: &Request, now: SimTime) -> RequestId {
        let mut parked: Vec<&Request> = self.shards.iter().flat_map(Shard::wait_requests).collect();
        parked.sort_unstable_by_key(|r| (r.deadline(), r.sample_at(), r.id().0));
        let supply = |r: &Request| {
            let probe = QualificationProbe::for_request(r);
            self.qualified_count(&probe)
        };
        let incoming_candidate = ShedCandidate {
            request: incoming,
            qualified: supply(incoming),
        };
        let parked_candidates: Vec<ShedCandidate<'_>> = parked
            .into_iter()
            .map(|r| ShedCandidate {
                request: r,
                qualified: supply(r),
            })
            .collect();
        self.shed_policy
            .choose_victim(&incoming_candidate, &parked_candidates, now)
    }

    /// Assigns `request`, or returns it for parking when the policy cannot
    /// field a viable device set.
    // The Err variant hands the request back by value so the caller can
    // park it without a clone; its size is the point, not a problem.
    #[allow(clippy::result_large_err)]
    fn try_assign(&mut self, request: Request, now: SimTime) -> Result<Assignment, Request> {
        self.try_assign_with(request, now, None)
    }

    /// [`try_assign`](Self::try_assign), optionally consuming a phase-1
    /// speculative [`AssignPlan`]. A plan replaces the inline gather +
    /// selection; the caller vouches it is still fresh (no committed
    /// assignment may have bumped a device in the plan's own selection —
    /// see [`assign_due_pipelined`](Self::assign_due_pipelined) for why
    /// that is the exact staleness condition) and that telemetry is off
    /// (plans are computed with plain `select`, so policy-internal
    /// instants would be lost). Everything after the selection outcome —
    /// degraded gating, fairness bumps, bookkeeping — is the one shared
    /// serial path.
    #[allow(clippy::result_large_err)]
    fn try_assign_with(
        &mut self,
        request: Request,
        now: SimTime,
        plan: Option<AssignPlan>,
    ) -> Result<Assignment, Request> {
        let task = request.task();
        let (qualified, selected, degraded) = match plan {
            Some(plan) => match plan.outcome {
                Ok(selected) => {
                    Self::note_selection_success(
                        &mut self.degrade_state,
                        &self.config,
                        &self.tel,
                        task,
                        now,
                    );
                    (plan.qualified, selected, false)
                }
                Err(()) => {
                    if !Self::note_selection_failure(
                        &mut self.degrade_state,
                        &self.config,
                        &self.tel,
                        task,
                        now,
                    ) {
                        return Err(request);
                    }
                    // Degraded-mode partial service needs the actual rows,
                    // which phase 1 discarded: re-gather inline, through
                    // the same fast path the plan used.
                    let probe = QualificationProbe::for_request(&request);
                    let targets = self.target_shards(&probe.region);
                    let candidates = Self::gather_for(
                        &self.shards,
                        &targets,
                        &probe,
                        self.policy.candidate_order_insensitive(),
                    );
                    let selected = self.policy.select_partial(&request, &candidates, now);
                    if selected.is_empty() {
                        return Err(request);
                    }
                    (plan.qualified, selected, true)
                }
            },
            None => {
                let probe = QualificationProbe::for_request(&request);
                let targets = self.target_shards(&probe.region);
                let candidates = Self::candidates_across(&self.shards, &targets, &probe);
                let qualified = candidates.len();
                match self
                    .policy
                    .select_traced(&request, &candidates, now, &self.tel)
                {
                    Ok(selected) => {
                        Self::note_selection_success(
                            &mut self.degrade_state,
                            &self.config,
                            &self.tel,
                            task,
                            now,
                        );
                        (qualified, selected, false)
                    }
                    Err(_) => {
                        // Full selection failed. Once the task's stress
                        // streak has lasted `degraded.enter_after`, serve
                        // the best available subset instead of parking
                        // forever; otherwise hand the request back for the
                        // wait queue.
                        if !Self::note_selection_failure(
                            &mut self.degrade_state,
                            &self.config,
                            &self.tel,
                            task,
                            now,
                        ) {
                            return Err(request);
                        }
                        let selected = self.policy.select_partial(&request, &candidates, now);
                        if selected.is_empty() {
                            return Err(request);
                        }
                        (qualified, selected, true)
                    }
                }
            }
        };
        for imei in &selected {
            if let Some(idx) = self.device_index_mut(*imei) {
                idx.bump_selected(*imei);
            }
        }
        if self.tel.active() {
            let shard = self
                .target_shards(&request.region())
                .iter()
                .next()
                .unwrap_or(0) as u64;
            let span = self.tel.enter(
                "request",
                now,
                Lane::control(shard),
                SpanId::NONE,
                vec![
                    Attr::u64("request", request.id().0),
                    Attr::u64("task", request.task().0),
                    Attr::u64("density", request.density() as u64),
                    Attr::u64("deadline_us", request.deadline().as_micros()),
                ],
            );
            self.request_spans.insert(request.id(), span);
            let selection = self.tel.instant(
                "selection",
                now,
                Lane::control(shard),
                span,
                vec![
                    Attr::u64("qualified", qualified as u64),
                    Attr::u64("selected", selected.len() as u64),
                ],
            );
            if degraded {
                self.tel.instant(
                    "degraded.assign",
                    now,
                    Lane::control(shard),
                    span,
                    vec![
                        Attr::u64("request", request.id().0),
                        Attr::u64("density", request.density() as u64),
                        Attr::u64("achieved", selected.len() as u64),
                    ],
                );
            }
            for imei in &selected {
                let home = self.home.get(imei).copied().unwrap_or(0) as u64;
                let tasking = self.tel.instant(
                    "tasking",
                    now,
                    Lane::device(home, imei.0),
                    selection,
                    vec![
                        Attr::u64("request", request.id().0),
                        Attr::u64("imei", imei.0),
                    ],
                );
                self.tel.note_tasking(request.id().0, imei.0, tasking);
            }
        }
        self.selections.push(
            now,
            SelectionEvent {
                request: request.id(),
                task: request.task(),
                qualified,
                selected: selected.clone(),
            },
        );
        let cas = self
            .task_owner
            .get(&request.task())
            .copied()
            .unwrap_or(CasId(0));
        let assignment = Assignment {
            request: request.id(),
            task: request.task(),
            sensor: request.sensor(),
            sample_at: request.sample_at(),
            deadline: request.deadline(),
            devices: selected.clone(),
            payload_bytes: self.config.payload_bytes,
            reset_policy: self.config.variant.reset_policy(),
        };
        self.stats.requests_assigned += 1;
        // Seed the received set from the delivered log: a request released
        // back to the queue after a lease eviction keeps the readings its
        // surviving contributors already delivered.
        let received: BTreeSet<ImeiHash> = self
            .delivered_log
            .range((request.id(), ImeiHash(u64::MIN))..=(request.id(), ImeiHash(u64::MAX)))
            .map(|&(_, imei)| imei)
            .collect();
        self.active.insert(
            request.id(),
            ActiveRequest {
                request,
                cas,
                assigned: selected,
                received,
                degraded,
            },
        );
        Ok(assignment)
    }

    fn expire_request(&mut self, request: &Request, now: SimTime) {
        self.stats.requests_expired += 1;
        self.set_status(request.id(), RequestStatus::Expired);
        if let Ok(t) = self.tasks.get_mut(request.task()) {
            t.requests_expired += 1;
        }
        if let Some(span) = self.request_spans.remove(&request.id()) {
            self.tel
                .instant("request.expired", now, Lane::control(0), span, Vec::new());
            self.tel.exit(span, now);
        }
    }

    /// Finalises a degraded-mode assignment that delivered *some* data by
    /// its deadline: the truthful outcome is `Degraded{achieved_density}`,
    /// not `Expired` — the CAS did receive readings, just fewer than
    /// asked.
    fn finalise_degraded(&mut self, request: &Request, achieved: usize, now: SimTime) {
        self.stats.requests_degraded += 1;
        self.set_status(
            request.id(),
            RequestStatus::Degraded {
                achieved_density: achieved,
            },
        );
        if let Some(span) = self.request_spans.remove(&request.id()) {
            self.tel.instant(
                "request.degraded",
                now,
                Lane::control(0),
                span,
                vec![
                    Attr::u64("density", request.density() as u64),
                    Attr::u64("achieved", achieved as u64),
                ],
            );
            self.tel.exit(span, now);
        }
    }

    fn expire_overdue(&mut self, now: SimTime) {
        let grace = self.config.unresponsive_grace;
        let overdue: Vec<RequestId> = self
            .active
            .iter()
            .filter(|(_, a)| a.request.deadline() + grace <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let active = self.active.remove(&id).expect("just listed");
            // Devices that never delivered are marked unresponsive (paper
            // §3.2: excluded from future selections until they speak).
            for imei in &active.assigned {
                if !active.received.contains(imei) {
                    if let Some(idx) = self.device_index_mut(*imei) {
                        idx.set_responsive(*imei, false);
                        self.qual_epoch += 1;
                    }
                }
            }
            if active.received.len() >= active.request.density() {
                // Density was met; counted at fulfilment time already.
                continue;
            }
            if active.degraded && !active.received.is_empty() {
                self.finalise_degraded(&active.request, active.received.len(), now);
                continue;
            }
            self.expire_request(&active.request, now);
        }
    }

    /// Re-examines every parked request, in the global key order a single
    /// wait queue would use: expired ones are failed, now-satisfiable ones
    /// move to their home run queue, the rest stay parked. Candidates are
    /// gathered across all target shards, so a request parked on one
    /// shard drains when devices appear in a neighbouring cell; the
    /// policy's own [`would_select`](SelectionPolicy::would_select) is the
    /// promotion predicate, so a request is only promoted when selection
    /// will actually succeed (a raw qualified-count check would bounce
    /// requests whose candidates fail the hard cutoffs back and forth).
    fn recheck_wait_queue(&mut self, now: SimTime) {
        let mut parked: Vec<Request> = Vec::new();
        let epoch = self.qual_epoch;
        while let Some((shard, _)) = Self::min_head(&self.shards, Shard::wait_head_key) {
            let request = self.shards[shard].pop_wait().expect("head key seen");
            if request.deadline() <= now {
                self.expire_request(&request, now);
                continue;
            }
            let memo = self.recheck_memo.get(&request.id()).copied();
            let promote = match memo {
                // No device column changed since this request's last
                // recheck decided not to promote, and qualification is
                // time-independent: full selection still fails. Degraded-
                // mode entry *is* time-driven, so the failure is still
                // recorded and the memoised partial verdict gates the
                // degraded promotion — without re-gathering candidates.
                Some((e, partial)) if e == epoch => {
                    Self::note_selection_failure(
                        &mut self.degrade_state,
                        &self.config,
                        &self.tel,
                        request.task(),
                        now,
                    ) && partial
                }
                _ => {
                    let probe = QualificationProbe::for_request(&request);
                    let targets = self.target_shards(&probe.region);
                    let candidates = Self::candidates_across(&self.shards, &targets, &probe);
                    if self.policy.would_select(&request, &candidates, now) {
                        true
                    } else {
                        // An unsatisfiable park is selection stress: record
                        // it so a task whose requests only ever sit parked
                        // still accrues time towards degraded mode. Once
                        // degraded, promote whenever partial service could
                        // field at least one device.
                        let partial = self.policy.would_select_partial(&request, &candidates, now);
                        self.recheck_memo.insert(request.id(), (epoch, partial));
                        Self::note_selection_failure(
                            &mut self.degrade_state,
                            &self.config,
                            &self.tel,
                            request.task(),
                            now,
                        ) && partial
                    }
                }
            };
            if promote {
                self.recheck_memo.remove(&request.id());
                self.enqueue_run(request);
            } else {
                parked.push(request);
            }
        }
        // Prune memo entries for requests that left the wait queue by any
        // path (promotion, expiry, shedding, task deletion).
        if !self.recheck_memo.is_empty() {
            let parked_ids: BTreeSet<RequestId> = parked.iter().map(Request::id).collect();
            self.recheck_memo.retain(|id, _| parked_ids.contains(id));
        }
        for request in parked {
            self.enqueue_wait(request);
        }
    }

    // ------------------------------------------------------------------
    // The two-phase poll pipeline (DESIGN.md §14)
    // ------------------------------------------------------------------
    //
    // Phase 1 runs the expensive, read-only per-request work — shard
    // fan-out, candidate gathering, selection scoring — in parallel on the
    // coordinator's worker pool, producing compact plans. Phase 2 is a
    // single-threaded commit that walks the requests in the exact global
    // `(deadline, sample_at, id)` order the serial loop uses, applying
    // each plan (or recomputing inline when a prior commit could have
    // invalidated it). Every observable output — assignments, statuses,
    // stats, the WAL, persistence digests — is byte-identical to the
    // serial path at any worker count.

    /// Phase-1 worker body for one due request: gather candidates across
    /// its target shards and run full selection. Read-only over the
    /// control plane; safe to run concurrently with other plans.
    fn plan_assign(&self, request: &Request, now: SimTime, order_insensitive: bool) -> AssignPlan {
        let probe = QualificationProbe::for_request(request);
        let targets = self.target_shards(&probe.region);
        let candidates = Self::gather_for(&self.shards, &targets, &probe, order_insensitive);
        AssignPlan {
            qualified: candidates.len(),
            outcome: self
                .policy
                .select(request, &candidates, now)
                .map_err(|_| ()),
        }
    }

    /// The due-request loop, pipelined. Equivalence to the serial loop:
    ///
    /// * Nothing in the loop pushes run-queue entries (success activates,
    ///   failure parks on the *wait* queue, expiry drops), so draining
    ///   every due request up front yields exactly the sequence the serial
    ///   loop would have popped.
    /// * Deadlines are data and no commit mutates a task's status, so the
    ///   expire/skip/assign classification is fixed before phase 1.
    /// * The only candidate-affecting mutation a commit performs is
    ///   `bump_selected` on the devices it assigned. A bump never changes
    ///   qualification (the gather reads flags/sensor/type only) — it
    ///   strictly *worsens* the device: the fairness score term grows and
    ///   the max-selections cutoff can only newly exclude it. So a later
    ///   `Ok` plan stays valid unless a bumped device sits in its own
    ///   selection — every selected member's score is untouched and every
    ///   outsider's only got worse, so the top-k is unchanged — and an
    ///   `Err` plan can never turn `Ok` (supply only shrank). Stale plans
    ///   are recomputed serially at commit time, which is exactly the
    ///   serial computation at the serial point in time.
    fn assign_due_pipelined(&mut self, now: SimTime, assignments: &mut Vec<Assignment>) {
        let mut due: Vec<Request> = Vec::new();
        while let Some(request) = self.pop_due_global(now) {
            due.push(request);
        }
        if due.is_empty() {
            return;
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Disposition {
            Expire,
            Skip,
            Assign,
        }
        let dispositions: Vec<Disposition> = due
            .iter()
            .map(|request| {
                if request.deadline() <= now {
                    Disposition::Expire
                } else if self
                    .tasks
                    .get(request.task())
                    .map(|t| t.status != TaskStatus::Active)
                    .unwrap_or(true)
                {
                    Disposition::Skip // deleted while queued
                } else {
                    Disposition::Assign
                }
            })
            .collect();
        let work: Vec<usize> = dispositions
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == Disposition::Assign)
            .map(|(i, _)| i)
            .collect();
        let order_insensitive = self.policy.candidate_order_insensitive();
        let plans: Vec<AssignPlan> = {
            let this: &Coordinator = self;
            let due = &due;
            this.pool.map(work.clone(), |_, i| {
                this.plan_assign(&due[i], now, order_insensitive)
            })
        };
        let mut plan_of: Vec<Option<AssignPlan>> = vec![None; due.len()];
        for (i, plan) in work.into_iter().zip(plans) {
            plan_of[i] = Some(plan);
        }
        // Phase 2: deterministic serial commit in the drained order. A
        // speculative plan survives earlier commits unless one of them
        // bumped a device in the plan's own selection (see the staleness
        // argument above); stale plans are recomputed here, at the serial
        // point in time, through the same fast gather the workers used.
        let mut bumped: HashSet<ImeiHash> = HashSet::new();
        for (i, request) in due.into_iter().enumerate() {
            match dispositions[i] {
                Disposition::Expire => self.expire_request(&request, now),
                Disposition::Skip => {}
                Disposition::Assign => {
                    let mut plan = plan_of[i].take();
                    let stale = plan.as_ref().is_some_and(
                        |p| matches!(&p.outcome, Ok(sel) if sel.iter().any(|d| bumped.contains(d))),
                    );
                    if stale {
                        plan = Some(self.plan_assign(&request, now, order_insensitive));
                    }
                    match self.try_assign_with(request, now, plan) {
                        Ok(assignment) => {
                            bumped.extend(assignment.devices.iter().copied());
                            self.set_status(assignment.request, RequestStatus::Assigned);
                            assignments.push(assignment);
                        }
                        Err(request) => self.park_request(request, now),
                    }
                }
            }
        }
    }

    /// Phase-1 worker body for one parked request: the promotion probes,
    /// computed exactly as the serial recheck would (`would_select_partial`
    /// only evaluated when full selection would fail).
    fn plan_recheck(
        &self,
        request: &Request,
        now: SimTime,
        order_insensitive: bool,
    ) -> (bool, bool) {
        let probe = QualificationProbe::for_request(request);
        let targets = self.target_shards(&probe.region);
        let candidates = Self::gather_for(&self.shards, &targets, &probe, order_insensitive);
        if self.policy.would_select(request, &candidates, now) {
            (true, false)
        } else {
            (
                false,
                self.policy.would_select_partial(request, &candidates, now),
            )
        }
    }

    /// [`recheck_wait_queue`](Self::recheck_wait_queue), pipelined: the
    /// memo-missed qualification probes run in parallel, everything else
    /// (expiry, memo upkeep, degraded-mode accounting, promotion) replays
    /// serially in the drained global order. Sound because the recheck
    /// loop never pushes wait entries (drain-first sees the same
    /// sequence) and nothing between drain and commit mutates device
    /// columns or `qual_epoch`, so the probes cannot go stale.
    fn recheck_wait_queue_pipelined(&mut self, now: SimTime) {
        let epoch = self.qual_epoch;
        let mut waiting: Vec<Request> = Vec::new();
        while let Some((shard, _)) = Self::min_head(&self.shards, Shard::wait_head_key) {
            waiting.push(self.shards[shard].pop_wait().expect("head key seen"));
        }
        if waiting.is_empty() {
            return;
        }
        #[derive(Clone, Copy)]
        enum Verdict {
            Expire,
            MemoHit(bool),
            Fresh,
        }
        let verdicts: Vec<Verdict> = waiting
            .iter()
            .map(|request| {
                if request.deadline() <= now {
                    Verdict::Expire
                } else {
                    match self.recheck_memo.get(&request.id()).copied() {
                        Some((e, partial)) if e == epoch => Verdict::MemoHit(partial),
                        _ => Verdict::Fresh,
                    }
                }
            })
            .collect();
        let fresh: Vec<usize> = verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v, Verdict::Fresh))
            .map(|(i, _)| i)
            .collect();
        let order_insensitive = self.policy.candidate_order_insensitive();
        let probes: Vec<(bool, bool)> = {
            let this: &Coordinator = self;
            let waiting = &waiting;
            this.pool.map(fresh.clone(), |_, i| {
                this.plan_recheck(&waiting[i], now, order_insensitive)
            })
        };
        let mut probe_of: Vec<Option<(bool, bool)>> = vec![None; waiting.len()];
        for (i, p) in fresh.into_iter().zip(probes) {
            probe_of[i] = Some(p);
        }
        let mut parked: Vec<Request> = Vec::new();
        for (i, request) in waiting.into_iter().enumerate() {
            let promote = match verdicts[i] {
                Verdict::Expire => {
                    self.expire_request(&request, now);
                    continue;
                }
                Verdict::MemoHit(partial) => {
                    Self::note_selection_failure(
                        &mut self.degrade_state,
                        &self.config,
                        &self.tel,
                        request.task(),
                        now,
                    ) && partial
                }
                Verdict::Fresh => {
                    let (would, partial) = probe_of[i].take().expect("planned above");
                    if would {
                        true
                    } else {
                        self.recheck_memo.insert(request.id(), (epoch, partial));
                        Self::note_selection_failure(
                            &mut self.degrade_state,
                            &self.config,
                            &self.tel,
                            request.task(),
                            now,
                        ) && partial
                    }
                }
            };
            if promote {
                self.recheck_memo.remove(&request.id());
                self.enqueue_run(request);
            } else {
                parked.push(request);
            }
        }
        if !self.recheck_memo.is_empty() {
            let parked_ids: BTreeSet<RequestId> = parked.iter().map(Request::id).collect();
            self.recheck_memo.retain(|id, _| parked_ids.contains(id));
        }
        for request in parked {
            self.enqueue_wait(request);
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    pub fn submit_sensed_data(
        &mut self,
        imei: ImeiHash,
        request_id: RequestId,
        reading: &SensorReading,
        now: SimTime,
    ) -> Result<bool, SenseAidError> {
        let active = self
            .active
            .get(&request_id)
            .ok_or(SenseAidError::UnknownRequest(request_id))?;
        if !active.assigned.contains(&imei) {
            return Err(SenseAidError::NotAssigned(imei, request_id));
        }
        if let Err(e) = self.validator.validate(reading) {
            self.stats.readings_rejected += 1;
            if let Some(idx) = self.device_index_mut(imei) {
                idx.set_data_valid(imei, false);
                self.qual_epoch += 1;
            }
            return Err(e);
        }
        let cell = self
            .home
            .get(&imei)
            .and_then(|&s| self.shards[s].device_cell(imei));
        let active = self.active.get_mut(&request_id).expect("looked up above");
        let delivered = privacy::scrub(reading, imei, &active.request, cell, active.cas);
        self.outbox.push((active.cas, delivered));
        active.received.insert(imei);
        if self.delivered_log.insert((request_id, imei)) && self.track_dirty {
            self.delivered_since.push((request_id, imei));
        }
        self.stats.readings_accepted += 1;
        let fulfilled = active.received.len() >= active.request.density();
        let task = active.request.task();
        if fulfilled {
            self.active.remove(&request_id);
            self.set_status(request_id, RequestStatus::Fulfilled);
            self.stats.requests_fulfilled += 1;
            if let Ok(t) = self.tasks.get_mut(task) {
                t.requests_fulfilled += 1;
            }
            if let Some(span) = self.request_spans.remove(&request_id) {
                self.tel
                    .instant("request.fulfilled", now, Lane::control(0), span, Vec::new());
                self.tel.exit(span, now);
            }
        }
        self.record_device_comm(imei, now)?;
        Ok(fulfilled)
    }

    /// Ingests one delivery envelope: a sequenced batch of readings from
    /// `imei`. Replayed envelopes (known sequence number) and replayed
    /// readings (known `(request, device)` pair) are deduplicated, and
    /// every outcome — including definitive rejections — is covered by the
    /// returned cumulative ack, so a client never retries in vain.
    pub fn submit_batch(
        &mut self,
        imei: ImeiHash,
        seq: u64,
        attempt: u32,
        readings: &[(RequestId, SensorReading)],
        now: SimTime,
    ) -> BatchReceipt {
        if attempt > 1 {
            self.stats.envelopes_retried += 1;
        }
        let lane = Lane::device(self.home.get(&imei).copied().unwrap_or(0) as u64, imei.0);
        if self.track_dirty {
            // Mark unconditionally: even a duplicate envelope can create
            // the per-device ledger entry, and a delta must capture it.
            self.dirty_seq.insert(imei);
        }
        let ledger = self.seq_ledger.entry(imei).or_default();
        if !ledger.accept(seq) {
            self.stats.envelopes_duplicate += 1;
            self.tel.instant(
                "envelope.duplicate",
                now,
                lane,
                SpanId::NONE,
                vec![
                    Attr::u64("seq", seq),
                    Attr::u64("attempt", u64::from(attempt)),
                ],
            );
            let ack = self.seq_ledger[&imei].cumulative();
            return BatchReceipt {
                ack,
                outcomes: Vec::new(),
            };
        }
        if self.tel.active() {
            let parent = readings
                .first()
                .map(|(r, _)| self.tel.tasking_span(r.0, imei.0))
                .unwrap_or(SpanId::NONE);
            self.tel.instant(
                "envelope.recv",
                now,
                lane,
                parent,
                vec![
                    Attr::u64("seq", seq),
                    Attr::u64("attempt", u64::from(attempt)),
                    Attr::u64("readings", readings.len() as u64),
                ],
            );
        }
        let mut outcomes = Vec::with_capacity(readings.len());
        for (request_id, reading) in readings {
            let outcome = if self.delivered_log.contains(&(*request_id, imei)) {
                self.stats.readings_duplicate += 1;
                DeliveryOutcome::Duplicate
            } else {
                match self.submit_sensed_data(imei, *request_id, reading, now) {
                    Ok(fulfilled) => DeliveryOutcome::Accepted { fulfilled },
                    // The request resolved without this device (fulfilled
                    // by others, expired, cancelled): nothing to deliver,
                    // but the envelope still counts as received.
                    Err(SenseAidError::UnknownRequest(id)) if self.statuses.contains_key(&id) => {
                        let _ = self.record_device_comm(imei, now);
                        DeliveryOutcome::Obsolete
                    }
                    Err(e) => DeliveryOutcome::Rejected(e),
                }
            };
            outcomes.push(outcome);
        }
        BatchReceipt {
            ack: self.seq_ledger[&imei].cumulative(),
            outcomes,
        }
    }

    /// Folds client-side drop totals into the server statistics (clients
    /// report them inside state updates).
    pub fn note_client_drops(&mut self, dropped: u64) {
        self.stats.client_readings_dropped += dropped;
    }

    pub fn drain_outbox(&mut self) -> Vec<(CasId, DeliveredReading)> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Crash snapshot / recovery
    // ------------------------------------------------------------------

    /// Copies the control plane's durable state (see [`ControlSnapshot`]).
    /// The outbox is intentionally excluded: the harness drains it every
    /// tick, so un-forwarded readings at crash time are genuinely lost and
    /// must be re-covered by client retransmission.
    pub fn snapshot(&self, now: SimTime) -> ControlSnapshot {
        ControlSnapshot {
            taken_at: now,
            tasks: self.tasks.clone(),
            next_request_id: self.next_request_id,
            statuses: self.statuses.clone(),
            task_owner: self.task_owner.clone(),
            queued_run: self
                .shards
                .iter()
                .flat_map(Shard::run_requests)
                .cloned()
                .collect(),
            queued_wait: self
                .shards
                .iter()
                .flat_map(Shard::wait_requests)
                .cloned()
                .collect(),
            active: self.active.iter().map(|(id, a)| (*id, a.clone())).collect(),
            devices: {
                let mut records: Vec<DeviceRecord> = self
                    .shards
                    .iter()
                    .flat_map(|s| s.device_records())
                    .collect();
                records.sort_unstable_by_key(|r| r.imei);
                records
            },
            seq_ledger: self.seq_ledger.clone(),
            delivered_log: self.delivered_log.clone(),
            stats: self.stats,
            selections: self.selections.clone(),
        }
    }

    /// Rebuilds the control plane from `snapshot`, then reconciles against
    /// `now`: requests whose deadlines passed during the outage — queued
    /// or assigned — are expired with truthful statuses, and silent
    /// assignees are marked unresponsive. Requests are re-homed through
    /// the normal enqueue path, so recovery is shard-count invariant.
    pub fn restore(&mut self, snapshot: ControlSnapshot, now: SimTime) {
        self.restore_base(snapshot);
        self.finish_restore(now);
    }

    /// The state-loading half of [`restore`](Self::restore): rebuilds the
    /// control plane from `snapshot` but runs no reconciliation pass.
    /// Durable recovery interposes journal replay between this and
    /// [`finish_restore`](Self::finish_restore) so replayed mutations see
    /// exactly the state they originally ran against.
    pub(crate) fn restore_base(&mut self, snapshot: ControlSnapshot) {
        let shard_count = self.shards.len();
        self.shards = (0..shard_count)
            .map(|_| Shard::new((self.index_factory)()))
            .collect();
        if self.track_dirty {
            for shard in &mut self.shards {
                shard.set_dirty_tracking(true);
            }
        }
        self.dirty_statuses.clear();
        self.dirty_seq.clear();
        self.delivered_since.clear();
        self.home.clear();
        self.tasks = snapshot.tasks;
        self.next_request_id = snapshot.next_request_id;
        self.statuses = snapshot.statuses;
        self.task_owner = snapshot.task_owner;
        self.stats = snapshot.stats;
        self.seq_ledger = snapshot.seq_ledger;
        self.delivered_log = snapshot.delivered_log;
        self.selections = snapshot.selections;
        self.selections_mark = self.selections.len();
        self.active = snapshot.active.into_iter().collect();
        // Leases are re-armed from each restored record's last contact,
        // so a device that went silent across the crash still expires on
        // schedule — restore must never mint immortal devices. Hysteresis
        // state is in-memory only and restarts clean.
        self.lease_expiry.clear();
        self.earliest_lease = None;
        self.degrade_state.clear();
        for record in snapshot.devices {
            let imei = record.imei;
            let contact = record.last_comm;
            let shard = self.shard_of_cell(record.cell);
            self.home.insert(imei, shard);
            self.shards[shard].insert_device(record);
            self.renew_lease(imei, contact);
        }
        for request in snapshot.queued_run {
            self.enqueue_run(request);
        }
        for request in snapshot.queued_wait {
            self.enqueue_wait(request);
        }
    }

    /// The truth-pass half of [`restore`](Self::restore): reconciles the
    /// loaded state against `now` and invalidates memoised qualification.
    pub(crate) fn finish_restore(&mut self, now: SimTime) {
        self.reconcile(now);
        self.recheck_memo.clear();
        self.qual_epoch += 1;
        self.wait_dirty = true;
    }

    /// Deterministic cold start: recovery found *no* usable snapshot, so
    /// whatever the process still holds (or nothing, on a fresh boot) is
    /// all there is. Registered devices and their leases survive —
    /// registration state is the paper's "server owns it" claim — but
    /// in-flight tasking died with the process: every assignment is
    /// cleared, requests whose deadline passed are expired truthfully
    /// (degraded ones that delivered data finalise `Degraded`), and the
    /// rest return to the run queue to be re-announced on the next poll.
    pub fn cold_start(&mut self, now: SimTime) {
        let lost: Vec<(RequestId, ActiveRequest)> =
            std::mem::take(&mut self.active).into_iter().collect();
        for (id, active) in lost {
            if active.request.deadline() <= now {
                if active.received.len() >= active.request.density() {
                    continue;
                }
                if active.degraded && !active.received.is_empty() {
                    self.finalise_degraded(&active.request, active.received.len(), now);
                    continue;
                }
                self.expire_request(&active.request, now);
                continue;
            }
            if let Some(span) = self.request_spans.remove(&id) {
                self.tel
                    .instant("request.orphaned", now, Lane::control(0), span, Vec::new());
                self.tel.exit(span, now);
            }
            // Still viable: re-announce through the normal queue path.
            // Progress survives — re-assignment seeds `received` from the
            // delivered log, exactly like a lease release.
            if self.set_status(id, RequestStatus::Pending) {
                self.enqueue_run(active.request);
            }
        }
        self.degrade_state.clear();
        self.finish_restore(now);
    }

    // ------------------------------------------------------------------
    // Dirty-column tracking (delta snapshots; see `persist`)
    // ------------------------------------------------------------------

    /// Turns dirty-column tracking on or off, here and in every shard's
    /// device index. Off clears all marks.
    pub(crate) fn set_dirty_tracking(&mut self, on: bool) {
        self.track_dirty = on;
        for shard in &mut self.shards {
            shard.set_dirty_tracking(on);
        }
        if !on {
            self.dirty_statuses.clear();
            self.dirty_seq.clear();
            self.delivered_since.clear();
        }
    }

    /// Forgets all dirty marks, called after a generation persisted
    /// successfully. The next delta is relative to that generation.
    pub(crate) fn clear_dirty(&mut self) {
        for shard in &mut self.shards {
            shard.clear_dirty();
        }
        self.dirty_statuses.clear();
        self.dirty_seq.clear();
        self.delivered_since.clear();
        self.selections_mark = self.selections.len();
    }

    /// Collects everything dirtied since the last [`clear_dirty`]
    /// (Self::clear_dirty) into a delta against that generation, or
    /// `None` when tracking is off or a shard's index cannot report
    /// (the caller then falls back to a full snapshot).
    pub(crate) fn snapshot_delta(&self, now: SimTime) -> Option<SnapshotDelta> {
        if !self.track_dirty {
            return None;
        }
        let mut touched: BTreeSet<ImeiHash> = BTreeSet::new();
        for shard in &self.shards {
            touched.extend(shard.dirty_touched()?);
        }
        let mut devices_changed = Vec::new();
        let mut devices_removed = Vec::new();
        for imei in touched {
            match self.device(imei) {
                Some(record) => devices_changed.push(record),
                None => devices_removed.push(imei),
            }
        }
        Some(SnapshotDelta {
            taken_at: now,
            next_request_id: self.next_request_id,
            tasks: self.tasks.clone(),
            task_owner: self.task_owner.clone(),
            queued_run: self
                .shards
                .iter()
                .flat_map(Shard::run_requests)
                .cloned()
                .collect(),
            queued_wait: self
                .shards
                .iter()
                .flat_map(Shard::wait_requests)
                .cloned()
                .collect(),
            active: self.active.iter().map(|(id, a)| (*id, a.clone())).collect(),
            stats: self.stats,
            devices_changed,
            devices_removed,
            statuses_changed: self
                .dirty_statuses
                .iter()
                .filter_map(|id| self.statuses.get(id).map(|s| (*id, *s)))
                .collect(),
            seq_changed: self
                .dirty_seq
                .iter()
                .map(|imei| {
                    (
                        *imei,
                        self.seq_ledger.get(imei).cloned().unwrap_or_default(),
                    )
                })
                .collect(),
            delivered_appended: self.delivered_since.clone(),
            selections_base_len: self.selections_mark,
            selections_appended: self.selections.entries()[self.selections_mark..].to_vec(),
        })
    }

    /// Swaps the telemetry handle, returning the previous one. Journal
    /// replay silences instrumentation (the events already fired in the
    /// original timeline) and restores the caller's handle afterwards.
    pub(crate) fn swap_telemetry(&mut self, tel: Telemetry) -> Telemetry {
        std::mem::replace(&mut self.tel, tel)
    }

    /// Emits an instant on behalf of the persistence layer, which has no
    /// telemetry handle of its own.
    pub(crate) fn persist_instant(&self, name: &str, now: SimTime, attrs: Vec<Attr>) {
        self.tel
            .instant(name, now, Lane::control(0), SpanId::NONE, attrs);
    }

    /// Expires everything the outage made hopeless: in-flight assignments
    /// past their grace window and queued requests past their deadline.
    /// Also run on a recovery without a snapshot, where the surviving
    /// in-memory state needs the same truth pass.
    pub fn reconcile(&mut self, now: SimTime) {
        self.expire_leases(now);
        self.expire_overdue(now);
        while let Some((shard, key)) = Self::min_head(&self.shards, Shard::run_head_key) {
            if key.0 > now {
                break;
            }
            let request = self.shards[shard].pop_run().expect("head key seen");
            self.expire_request(&request, now);
        }
        while let Some((shard, key)) = Self::min_head(&self.shards, Shard::wait_head_key) {
            if key.0 > now {
                break;
            }
            let request = self.shards[shard].pop_wait().expect("head key seen");
            self.expire_request(&request, now);
        }
    }

    // ------------------------------------------------------------------
    // Wakeup support (see `scheduler`)
    // ------------------------------------------------------------------

    pub fn wait_dirty(&self) -> bool {
        self.wait_dirty
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    pub(crate) fn active_deadlines(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.active.values().map(|a| a.request.deadline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ScoredPolicy;
    use crate::store::device_store::DeviceStore;
    use senseaid_geo::TowerSite;

    fn index() -> Box<dyn DeviceIndex> {
        Box::new(DeviceStore::new())
    }

    fn coordinator(shards: usize) -> Coordinator {
        let config = SenseAidConfig {
            shard_count: shards,
            ..SenseAidConfig::default()
        };
        let policy = ScoredPolicy::new(config.weights, config.cutoffs);
        Coordinator::new(config, Box::new(policy), index)
    }

    fn centre() -> GeoPoint {
        GeoPoint::new(40.4284, -86.9138)
    }

    /// Two disjoint cells 2 km apart; with two shards, cell 0 maps to
    /// shard 0 and cell 1 to shard 1.
    fn two_cell_network() -> (CellularNetwork, GeoPoint, GeoPoint) {
        let a = centre();
        let b = centre().offset_by_meters(0.0, 2000.0);
        let net = CellularNetwork::new(vec![
            TowerSite {
                index: 0,
                position: a,
                coverage_m: 900.0,
            },
            TowerSite {
                index: 1,
                position: b,
                coverage_m: 900.0,
            },
        ]);
        (net, a, b)
    }

    fn spec_at(centre: GeoPoint, radius: f64) -> TaskSpec {
        TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(centre, radius))
            .spatial_density(1)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(10))
            .build()
            .unwrap()
    }

    #[test]
    fn requests_home_on_their_regions_shard() {
        let (net, _, b) = two_cell_network();
        let mut coord = coordinator(2);
        coord.set_topology(net);

        // A region covered only by cell 1 homes its requests on shard 1,
        // not unconditionally on shard 0.
        coord.submit_task_for(CasId(0), spec_at(b, 100.0), SimTime::ZERO);
        assert_eq!(coord.shards()[0].run_queue_len(), 0);
        assert!(coord.shards()[1].run_queue_len() > 0);

        // With no qualifying device the due request parks — on that same
        // home shard.
        assert!(coord.poll(SimTime::ZERO).is_empty());
        assert_eq!(coord.shards()[0].wait_queue_len(), 0);
        assert_eq!(coord.shards()[1].wait_queue_len(), 1);
    }

    #[test]
    fn spanning_requests_home_on_lowest_covered_shard() {
        let (net, a, _) = two_cell_network();
        let mut coord = coordinator(2);
        coord.set_topology(net);

        // A region touching both cells homes on the lowest covered shard.
        let midpoint = a.offset_by_meters(0.0, 1000.0);
        coord.submit_task_for(CasId(0), spec_at(midpoint, 1900.0), SimTime::ZERO);
        assert!(coord.shards()[0].run_queue_len() > 0);
        assert_eq!(coord.shards()[1].run_queue_len(), 0);
    }

    // ---- delivery envelopes & crash recovery ----

    use crate::store::device_store::new_record;

    fn register(coord: &mut Coordinator, imei: u64) {
        coord.register_device(new_record(
            ImeiHash(imei),
            495.0,
            15.0,
            90.0,
            vec![Sensor::Barometer],
            "GalaxyS4".to_owned(),
            SimTime::ZERO,
        ));
        coord
            .observe_device(ImeiHash(imei), centre(), None)
            .unwrap();
    }

    fn reading() -> SensorReading {
        SensorReading {
            sensor: Sensor::Barometer,
            value: 1000.0,
            taken_at: SimTime::ZERO,
            position: centre(),
        }
    }

    #[test]
    fn seq_ledger_tracks_cumulative_and_out_of_order() {
        let mut ledger = SeqLedger::default();
        assert!(ledger.accept(1));
        assert!(!ledger.accept(1), "replay rejected");
        assert_eq!(ledger.cumulative(), 1);
        assert!(ledger.accept(3), "gap is held ahead");
        assert_eq!(ledger.cumulative(), 1, "gap blocks the cumulative ack");
        assert!(ledger.accept(2), "gap fills");
        assert_eq!(ledger.cumulative(), 3);
        assert!(!ledger.accept(2), "filled gap is a replay");
    }

    #[test]
    fn submit_batch_dedups_envelopes_and_readings() {
        let mut coord = coordinator(1);
        register(&mut coord, 1);
        coord.submit_task_for(CasId(0), spec_at(centre(), 500.0), SimTime::ZERO);
        let assignments = coord.poll(SimTime::ZERO);
        let request = assignments[0].request;

        let batch = [(request, reading())];
        let receipt = coord.submit_batch(ImeiHash(1), 1, 1, &batch, SimTime::ZERO);
        assert_eq!(receipt.ack, 1);
        assert!(matches!(
            receipt.outcomes[..],
            [DeliveryOutcome::Accepted { fulfilled: true }]
        ));

        // The exact retransmit is swallowed at the envelope layer.
        let replay = coord.submit_batch(ImeiHash(1), 1, 2, &batch, SimTime::ZERO);
        assert_eq!(replay.ack, 1);
        assert!(replay.outcomes.is_empty());
        assert_eq!(coord.stats().envelopes_duplicate, 1);
        assert_eq!(coord.stats().envelopes_retried, 1);
        assert_eq!(coord.stats().readings_accepted, 1, "no double count");
    }

    #[test]
    fn submit_batch_marks_resolved_requests_obsolete() {
        let mut coord = coordinator(1);
        register(&mut coord, 1);
        coord.submit_task_for(CasId(0), spec_at(centre(), 500.0), SimTime::ZERO);
        let request = coord.poll(SimTime::ZERO)[0].request;
        let batch = [(request, reading())];
        coord.submit_batch(ImeiHash(1), 1, 1, &batch, SimTime::ZERO);

        // A late copy of the fulfilled request from another device is
        // acked as obsolete, not an error — the sender must stop retrying.
        let late = coord.submit_batch(ImeiHash(2), 1, 1, &batch, SimTime::ZERO);
        assert!(matches!(late.outcomes[..], [DeliveryOutcome::Obsolete]));

        // The same device re-sending under a fresh seq dedups per reading.
        let fresh = coord.submit_batch(ImeiHash(1), 2, 1, &batch, SimTime::ZERO);
        assert_eq!(fresh.ack, 2);
        assert!(matches!(fresh.outcomes[..], [DeliveryOutcome::Duplicate]));
        assert_eq!(coord.stats().readings_duplicate, 1);
    }

    #[test]
    fn restore_rebuilds_devices_queues_and_dedup_state() {
        let mut coord = coordinator(2);
        register(&mut coord, 1);
        register(&mut coord, 2);
        coord.submit_task_for(CasId(0), spec_at(centre(), 500.0), SimTime::ZERO);
        let request = coord.poll(SimTime::ZERO)[0].request;
        let batch = [(request, reading())];
        coord.submit_batch(ImeiHash(1), 1, 1, &batch, SimTime::ZERO);

        let snapshot = coord.snapshot(SimTime::from_secs(1));
        assert_eq!(snapshot.device_count(), 2);

        // Post-snapshot state is rolled back by restore…
        register(&mut coord, 3);
        coord.restore(snapshot, SimTime::from_secs(2));
        assert!(coord.device(ImeiHash(3)).is_none());
        assert_eq!(coord.device_count(), 2);
        // …and the dedup ledgers survive the crash: the retransmit of the
        // pre-crash envelope is still swallowed.
        let replay = coord.submit_batch(ImeiHash(1), 1, 2, &batch, SimTime::from_secs(2));
        assert!(replay.outcomes.is_empty());
        // Future requests are still queued (sampling_duration 10 min).
        assert!(coord.run_queue_len() > 0);
    }

    #[test]
    fn restore_expires_requests_whose_deadlines_passed_in_the_outage() {
        let mut coord = coordinator(1);
        register(&mut coord, 1);
        let task = coord.submit_task_for(CasId(0), spec_at(centre(), 500.0), SimTime::ZERO);
        let queued_before = coord.run_queue_len();
        assert!(queued_before > 0);
        let snapshot = coord.snapshot(SimTime::ZERO);

        // Recover an hour later: every deadline passed during the outage.
        coord.restore(snapshot, SimTime::from_mins(60));
        assert_eq!(coord.run_queue_len(), 0);
        assert_eq!(coord.wait_queue_len(), 0);
        assert_eq!(
            coord.stats().requests_expired as usize,
            queued_before,
            "outage-overrun requests expire truthfully"
        );
        let state = coord.tasks.get(task).unwrap();
        assert_eq!(state.requests_expired, queued_before);
    }
}
