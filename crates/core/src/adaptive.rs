//! Adaptive tasks: requirements that react to the data (paper §8).
//!
//! The paper closes with "dynamic tasks that can alter their requirements
//! based on received data" as ongoing work. [`AdaptiveController`] is that
//! feature, CAS-side: it watches the spatial *spread* of each sampling
//! window's readings and tunes the task's `spatial_density` through the
//! existing `update_task_param` API. Calm field → readings agree → fewer
//! devices suffice; a weather front crossing the region → readings
//! disagree → more devices are needed to resolve the structure.

use serde::{Deserialize, Serialize};

use senseaid_sim::SimTime;

use crate::cas::DeliveredReading;
use crate::task::TaskId;

/// Tuning for an [`AdaptiveController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Readings per evaluation window. Spanning ~two sampling rounds lets
    /// the spread capture *temporal* change (a front sweeping the region
    /// between rounds) as well as spatial disagreement within one round.
    pub window: usize,
    /// Raise the density when a window's spread (max − min) exceeds this.
    pub high_spread: f64,
    /// Lower the density when a window's spread falls below this.
    pub low_spread: f64,
    /// Density floor.
    pub min_density: usize,
    /// Density ceiling.
    pub max_density: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 4,
            high_spread: 1.0, // hPa across the region: something is moving
            low_spread: 0.4,
            min_density: 2,
            max_density: 8,
        }
    }
}

impl AdaptiveConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if thresholds or bounds are inverted, or the window is zero.
    pub fn validate(&self) {
        assert!(self.window >= 1, "window must be at least 1");
        assert!(
            self.low_spread <= self.high_spread,
            "low_spread must not exceed high_spread"
        );
        assert!(
            1 <= self.min_density && self.min_density <= self.max_density,
            "density bounds inverted"
        );
    }
}

/// One density adjustment the controller made.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adjustment {
    /// When the adjustment was recommended.
    pub at: SimTime,
    /// The window's observed spread.
    pub spread: f64,
    /// The new density.
    pub density: usize,
}

/// CAS-side feedback controller for one task's spatial density.
///
/// # Example
///
/// ```
/// use senseaid_core::adaptive::{AdaptiveConfig, AdaptiveController};
/// use senseaid_core::TaskId;
///
/// let mut ctl = AdaptiveController::new(TaskId(1), 2, AdaptiveConfig::default());
/// assert_eq!(ctl.current_density(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    task: TaskId,
    config: AdaptiveConfig,
    current_density: usize,
    buffer: Vec<f64>,
    adjustments: Vec<Adjustment>,
    window_history: Vec<(SimTime, f64)>,
}

impl AdaptiveController {
    /// Creates a controller for `task`, currently at `initial_density`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`AdaptiveConfig::validate`].
    pub fn new(task: TaskId, initial_density: usize, config: AdaptiveConfig) -> Self {
        config.validate();
        AdaptiveController {
            task,
            config,
            current_density: initial_density.clamp(config.min_density, config.max_density),
            buffer: Vec::new(),
            adjustments: Vec::new(),
            window_history: Vec::new(),
        }
    }

    /// The controlled task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The density the controller currently wants.
    pub fn current_density(&self) -> usize {
        self.current_density
    }

    /// Every adjustment made so far.
    pub fn adjustments(&self) -> &[Adjustment] {
        &self.adjustments
    }

    /// Every evaluated window as `(when, spread)` — the controller's raw
    /// view of the field.
    pub fn window_history(&self) -> &[(SimTime, f64)] {
        &self.window_history
    }

    /// Feeds one delivered reading. Returns the new density when a full
    /// window has been evaluated and the controller wants a change — the
    /// caller then pushes it to the server via `update_task_param`.
    pub fn observe(&mut self, reading: &DeliveredReading, now: SimTime) -> Option<usize> {
        if reading.task != self.task {
            return None;
        }
        self.buffer.push(reading.value);
        if self.buffer.len() < self.config.window.max(self.current_density) {
            return None;
        }
        let spread = self.buffer.iter().copied().fold(f64::MIN, f64::max)
            - self.buffer.iter().copied().fold(f64::MAX, f64::min);
        self.buffer.clear();
        self.window_history.push((now, spread));

        let wanted = if spread > self.config.high_spread {
            // Escalate hard: double toward the ceiling so a fast-moving
            // front is resolved within one round.
            (self.current_density * 2).min(self.config.max_density)
        } else if spread < self.config.low_spread {
            (self.current_density - 1).max(self.config.min_density)
        } else {
            self.current_density
        };
        if wanted != self.current_density {
            self.current_density = wanted;
            self.adjustments.push(Adjustment {
                at: now,
                spread,
                density: wanted,
            });
            Some(wanted)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_device::Sensor;
    use senseaid_geo::GeoPoint;

    fn reading(task: TaskId, value: f64, at: SimTime) -> DeliveredReading {
        DeliveredReading {
            task,
            request: crate::request::RequestId(1),
            sensor: Sensor::Barometer,
            value,
            taken_at: at,
            region_centre: GeoPoint::new(40.0, -86.0),
            cell: None,
            device_pseudonym: 1,
        }
    }

    fn controller() -> AdaptiveController {
        AdaptiveController::new(TaskId(1), 2, AdaptiveConfig::default())
    }

    #[test]
    fn calm_windows_shrink_density_to_floor() {
        let mut ctl = AdaptiveController::new(
            TaskId(1),
            4,
            AdaptiveConfig {
                min_density: 2,
                ..AdaptiveConfig::default()
            },
        );
        let mut changes = Vec::new();
        for round in 0..8u64 {
            let t = SimTime::from_mins(round * 5);
            // Four near-identical readings per round.
            for k in 0..4 {
                if let Some(d) = ctl.observe(&reading(TaskId(1), 1010.0 + 0.01 * k as f64, t), t) {
                    changes.push(d);
                }
            }
        }
        assert_eq!(ctl.current_density(), 2, "decayed to the floor");
        assert_eq!(changes, vec![3, 2]);
    }

    #[test]
    fn stormy_window_escalates_density() {
        let mut ctl = controller();
        let t = SimTime::from_mins(10);
        // A window whose readings sit 3 hPa apart: a front is crossing.
        for v in [1010.0, 1010.1, 1007.1] {
            assert_eq!(ctl.observe(&reading(TaskId(1), v, t), t), None);
        }
        let change = ctl.observe(&reading(TaskId(1), 1007.0, t), t);
        assert_eq!(change, Some(4), "density doubles");
        assert_eq!(ctl.adjustments().len(), 1);
        assert!(ctl.adjustments()[0].spread > 2.9);
        assert_eq!(ctl.window_history().len(), 1);
    }

    #[test]
    fn escalation_saturates_at_ceiling() {
        let mut ctl = controller();
        for round in 0..8u64 {
            let t = SimTime::from_mins(round * 5);
            let n = ctl.current_density().max(4);
            for k in 0..n {
                // Always wide spread.
                ctl.observe(&reading(TaskId(1), 1005.0 + 3.0 * (k % 2) as f64, t), t);
            }
        }
        assert_eq!(ctl.current_density(), AdaptiveConfig::default().max_density);
    }

    #[test]
    fn moderate_spread_holds_steady() {
        let mut ctl = controller();
        let t = SimTime::from_mins(5);
        // 0.6 hPa window spread: between the two thresholds.
        for v in [1010.0, 1010.2, 1010.4] {
            ctl.observe(&reading(TaskId(1), v, t), t);
        }
        let change = ctl.observe(&reading(TaskId(1), 1010.6, t), t);
        assert_eq!(change, None);
        assert_eq!(ctl.current_density(), 2);
        assert_eq!(ctl.window_history().len(), 1);
    }

    #[test]
    fn ignores_other_tasks() {
        let mut ctl = controller();
        let t = SimTime::from_mins(5);
        for _ in 0..10 {
            assert_eq!(ctl.observe(&reading(TaskId(9), 1000.0, t), t), None);
        }
        assert_eq!(ctl.current_density(), 2);
    }

    #[test]
    #[should_panic(expected = "density bounds inverted")]
    fn validates_config() {
        let _ = AdaptiveController::new(
            TaskId(1),
            2,
            AdaptiveConfig {
                min_density: 5,
                max_density: 3,
                ..AdaptiveConfig::default()
            },
        );
    }
}
