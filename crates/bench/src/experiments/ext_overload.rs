//! Extension: overload — resilience under offered load and device churn.
//!
//! The paper evaluates Sense-Aid with a stable, adequately-provisioned
//! population. This study stresses the control plane on both axes at
//! once: offered load (1×/2×/4× the task count) crossed with a churn
//! wave (half the population silently leaves a third of the way in, then
//! rejoins at two thirds). The resilience layer is fully engaged —
//! device leases, bounded queues with a shed policy, and degraded-mode
//! scheduling — and the question is *truthfulness under stress*: every
//! request must reach a final status (fulfilled, expired, rejected,
//! shed, or degraded), silent departures must be reclaimed by lease
//! expiry rather than pinning their tasking forever, and goodput should
//! degrade gracefully instead of collapsing.

use senseaid_cellnet::{ChurnKind, ChurnWave, FaultPlan};
use senseaid_core::{DegradedConfig, ShedPolicyKind};
use senseaid_geo::NamedLocation;
use senseaid_sim::{SimDuration, SimTime};
use senseaid_workload::ScenarioConfig;

use crate::framework::FrameworkKind;
use crate::runner::{run_scenario_with, HarnessOptions};

/// Offered-load multipliers swept (task count relative to the 1× base).
pub const LOAD_POINTS: [usize; 3] = [1, 2, 4];

/// Churn fractions swept: a stable population vs. a wave where half the
/// devices silently leave (and later rejoin).
pub const CHURN_POINTS: [f64; 2] = [0.0, 0.5];

/// The 1× study scenario: denser demand over a smaller group than the
/// chaos study, so the 4× column genuinely outstrips supply.
pub fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(120),
        sampling_period: SimDuration::from_mins(5),
        spatial_density: 3,
        area_radius_m: 500.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 12,
    }
}

/// The device lease used throughout the sweep. Six sampling periods:
/// device traffic is Poisson with a ~9-minute mean gap, so the lease has
/// to sit well past that mean or it evicts devices that are merely
/// between sessions — at 30 minutes a normal quiet spell survives
/// (~3.6% of gaps exceed it) while a churned-out device is reclaimed
/// well before the rejoin wave.
pub fn lease(scenario: &ScenarioConfig) -> SimDuration {
    scenario.sampling_period * 6
}

/// The fault plan for one sweep point: an otherwise clean network with a
/// leave wave of `churn` at one third of the run and a matching rejoin
/// wave at two thirds. `churn == 0` schedules no waves at all.
pub fn plan(fault_seed: u64, churn: f64, scenario: &ScenarioConfig) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: fault_seed,
        ..FaultPlan::none()
    };
    if churn > 0.0 {
        let leave_at = SimTime::ZERO + scenario.test_duration / 3;
        let rejoin_at = SimTime::ZERO + (scenario.test_duration / 3) * 2;
        plan.churn_waves = vec![
            ChurnWave {
                at: leave_at,
                kind: ChurnKind::Leave,
                fraction: churn,
            },
            ChurnWave {
                at: rejoin_at,
                kind: ChurnKind::Join,
                fraction: churn,
            },
        ];
    }
    plan
}

/// The harness options for one sweep point: resilience layer fully on.
///
/// The run-queue bound caps the *committed backlog* — a submitted task
/// expands its whole sampling schedule into the run queue up front, so
/// the bound is sized against schedules, not instantaneous load: 64
/// admits the 1x and 2x sweeps whole and truncates only the 4x column's
/// excess at admission time. Runtime overload (supply that cannot meet
/// density) then shows up in the wait queue, where the shed policy and
/// degraded mode take over.
pub fn options(fault_seed: u64, churn: f64, scenario: &ScenarioConfig) -> HarnessOptions {
    HarnessOptions {
        fault_plan: Some(plan(fault_seed, churn, scenario)),
        device_lease: Some(lease(scenario)),
        run_queue_bound: Some(64),
        wait_queue_bound: Some(4),
        shed_policy: Some(ShedPolicyKind::DeadlineAware),
        degraded: Some(DegradedConfig::default()),
        ..HarnessOptions::default()
    }
}

/// Renders the overload sweep.
pub fn run(seed: u64) -> String {
    render(scenario(), seed)
}

/// Renders the overload sweep for an arbitrary 1× base scenario.
pub fn render(base: ScenarioConfig, seed: u64) -> String {
    let mut out = String::from(
        "=== Extension: overload (offered load x churn, resilience layer engaged) ===\n",
    );
    out.push_str(&format!(
        "{:<6} {:>6} {:>9} {:>9} {:>7} {:>9} {:>7} {:>7}\n",
        "load", "churn", "requests", "goodput", "shed", "degraded", "leases", "missed"
    ));
    let cells: Vec<(usize, f64)> = LOAD_POINTS
        .into_iter()
        .flat_map(|load| CHURN_POINTS.into_iter().map(move |churn| (load, churn)))
        .collect();
    let results = crate::parallel::map(cells, |_, (load, churn)| {
        let scenario = ScenarioConfig {
            tasks: base.tasks * load,
            ..base
        };
        let opts = options(seed ^ 0x10AD, churn, &scenario);
        (
            load,
            churn,
            run_scenario_with(FrameworkKind::SenseAidComplete, scenario, seed, opts),
        )
    });
    for (load, churn, r) in results {
        out.push_str(&format!(
            "{:<6} {:>5.0}% {:>9} {:>8.0}% {:>6.0}% {:>8.0}% {:>7} {:>7}\n",
            format!("{load}x"),
            churn * 100.0,
            r.total_requests(),
            100.0 * r.goodput(),
            100.0 * r.shed_rate(),
            100.0 * r.degraded_fraction(),
            r.leases_expired,
            r.rounds_missed,
        ));
    }
    out.push_str(
        "\nGoodput degrades gracefully as load outstrips supply: excess demand terminates\n\
         truthfully (rejected/shed/degraded) instead of parking forever, and the churn\n\
         columns show leases reclaiming silent leavers within two sampling periods\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::GroupReport;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            test_duration: SimDuration::from_mins(60),
            ..scenario()
        }
    }

    fn run_at(load: usize, churn: f64, seed: u64) -> GroupReport {
        let base = small();
        let s = ScenarioConfig {
            tasks: base.tasks * load,
            ..base
        };
        let opts = options(7, churn, &s);
        run_scenario_with(FrameworkKind::SenseAidComplete, s, seed, opts)
    }

    /// Churned-out devices are reclaimed by lease expiry. The stable
    /// column can also see a few evictions — device traffic is Poisson,
    /// so the occasional quiet spell outlasts the lease and the client
    /// re-announces on its next contact — but a 50% leave wave must
    /// strictly add to the count.
    #[test]
    fn leases_reclaim_silent_leavers() {
        let stable = run_at(1, 0.0, 41);
        let churned = run_at(1, 0.5, 41);
        assert!(
            churned.leases_expired > stable.leases_expired,
            "a 50% leave wave must trip extra lease expiries ({} vs {})",
            churned.leases_expired,
            stable.leases_expired
        );
    }

    /// Under 4x load with churn the control plane sheds or degrades
    /// rather than wedging: every request reaches a terminal status and
    /// the overflow shows up in the shed/degraded books.
    #[test]
    fn overload_terminates_truthfully() {
        let r = run_at(4, 0.5, 42);
        assert!(
            r.requests_shed + r.requests_rejected + r.requests_degraded > 0,
            "4x load with churn must trip the overload paths"
        );
        // The books are complete: every generated request is accounted
        // for in exactly one terminal bucket.
        assert_eq!(
            r.total_requests(),
            r.rounds_fulfilled
                + r.rounds_missed
                + r.requests_rejected
                + r.requests_shed
                + r.requests_degraded
        );
        assert!(r.goodput() > 0.0, "the plane must not collapse outright");
    }

    /// The sweep is a pure function of its seed: rendering twice is
    /// byte-identical (churn membership, leases, and shedding all replay).
    #[test]
    fn sweep_is_deterministic() {
        let a = render(small(), 43);
        let b = render(small(), 43);
        assert_eq!(a, b);
    }
}
