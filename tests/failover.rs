//! Fail-safe behaviour when the Sense-Aid server crashes mid-study
//! (paper Fig 4: path 1 is the fallback path).

use proptest::prelude::*;
use senseaid::bench::{run_scenario_with, FrameworkKind, HarnessOptions};
use senseaid::cellnet::{CoreNetwork, FaultPlan, RoutePath};
use senseaid::core::cas::CasId;
use senseaid::core::{AppServer, RequestId, RequestStatus, SenseAidConfig, SenseAidServer};
use senseaid::device::{ImeiHash, Sensor};
use senseaid::geo::{CampusMap, CircleRegion, NamedLocation};
use senseaid::sim::{SimDuration, SimTime};
use senseaid::workload::ScenarioConfig;

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(45),
        sampling_period: SimDuration::from_mins(5),
        spatial_density: 2,
        area_radius_m: 1000.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 12,
    }
}

#[test]
fn outage_pauses_crowdsensing_and_recovers() {
    let seed = 77;
    let healthy = run_scenario_with(
        FrameworkKind::SenseAidComplete,
        scenario(),
        seed,
        HarnessOptions::default(),
    );
    let crash_at = SimTime::from_mins(15);
    let recover_at = SimTime::from_mins(30);
    let outage = run_scenario_with(
        FrameworkKind::SenseAidComplete,
        scenario(),
        seed,
        HarnessOptions {
            server_outage: Some((crash_at, recover_at)),
            ..HarnessOptions::default()
        },
    );

    // Rounds during the outage are lost...
    assert!(outage.rounds_fulfilled < healthy.rounds_fulfilled);
    assert!(outage.rounds_missed > healthy.rounds_missed);
    assert!(
        !outage
            .rounds
            .iter()
            .any(|r| r.at >= crash_at && r.at < recover_at),
        "no scheduling can happen while the server is down"
    );
    // ...but scheduling resumes after recovery,
    assert!(
        outage.rounds.iter().any(|r| r.at >= recover_at),
        "rounds must resume after recovery"
    );
    // ...and rounds before the crash are identical to the healthy run
    // (the outage cannot retroactively change anything).
    for (h, o) in healthy
        .rounds
        .iter()
        .zip(&outage.rounds)
        .take_while(|(h, _)| h.at < crash_at)
    {
        assert_eq!(h.at, o.at);
        assert_eq!(h.participating, o.participating);
    }
    // Crowdsensing energy only goes down during an outage.
    assert!(outage.total_cs_j() <= healthy.total_cs_j() + 1e-9);
}

/// A crash while requests are parked in the wait queue must not strand
/// them: recovery restores the snapshot, re-homes the parked requests,
/// and — once their deadlines have passed during the outage — expires
/// them with truthful statuses instead of leaving stale `Waiting`s.
#[test]
fn crash_while_requests_are_parked_expires_them_truthfully() {
    let map = CampusMap::standard();
    let mut server = SenseAidServer::new(SenseAidConfig::default());

    // One registered device that carries no barometer, so barometer
    // requests can never be satisfied and park in the wait queue.
    server
        .register_device(
            ImeiHash(42),
            500.0,
            10.0,
            80.0,
            vec![Sensor::Accelerometer],
            "GalaxyS4".to_string(),
            SimTime::ZERO,
        )
        .unwrap();
    server
        .observe_device(
            ImeiHash(42),
            map.location(NamedLocation::CsDepartment),
            None,
        )
        .unwrap();

    let mut app = AppServer::new(CasId(1), "parked-requests");
    app.task(Sensor::Barometer)
        .region(CircleRegion::new(
            map.location(NamedLocation::CsDepartment),
            400.0,
        ))
        .spatial_density(1)
        .sampling_period(SimDuration::from_mins(5))
        .sampling_duration(SimDuration::from_mins(20))
        .submit(&mut server, SimTime::ZERO)
        .unwrap();

    // The due request cannot be matched: it parks in the wait queue.
    assert!(server.poll(SimTime::ZERO).unwrap().is_empty());
    assert!(server.wait_queue_len() >= 1, "request should be parked");
    assert_eq!(
        server.request_status(RequestId(1)),
        Some(RequestStatus::Waiting)
    );

    // Periodic snapshotting captures the parked state, then the server
    // dies and stays down until long after every deadline has passed.
    server.enable_snapshots(SimDuration::from_mins(1));
    assert!(server.tick_snapshot(SimTime::ZERO));
    server.crash();
    server.recover_at(SimTime::from_mins(60));

    // Recovery restored the registered device and the queued requests,
    // then reconciliation expired everything whose deadline fell inside
    // the outage — no request may claim to still be pending or waiting.
    assert_eq!(server.device_count(), 1, "device survives via snapshot");
    assert_eq!(server.wait_queue_len(), 0);
    assert_eq!(server.run_queue_len(), 0);
    let statuses: Vec<RequestStatus> = (1..=32)
        .filter_map(|id| server.request_status(RequestId(id)))
        .collect();
    assert!(statuses.len() >= 3, "the task expands to several requests");
    assert!(
        statuses.iter().all(|s| *s == RequestStatus::Expired),
        "every parked request must be truthfully expired: {statuses:?}"
    );
    assert_eq!(server.stats().requests_expired as usize, statuses.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Under an arbitrary fault seed (loss + duplication + jitter + one
    /// mid-run crash), the sharded control plane is still an
    /// implementation detail: shard counts 1, 2 and 8 produce
    /// bit-identical studies.
    #[test]
    fn fault_seeded_studies_are_shard_invariant(
        sim_seed in 1u64..1000,
        fault_seed in 1u64..1000,
    ) {
        let s = ScenarioConfig {
            test_duration: SimDuration::from_mins(20),
            sampling_period: SimDuration::from_mins(5),
            spatial_density: 2,
            area_radius_m: 800.0,
            tasks: 1,
            location: NamedLocation::CsDepartment,
            group_size: 8,
        };
        let plan = FaultPlan {
            seed: fault_seed,
            loss: 0.15,
            jitter_max: SimDuration::from_millis(200),
            duplicate: 0.02,
            reorder: 0.01,
            server_outages: vec![(SimTime::from_mins(9), SimTime::from_mins(11))],
            ..FaultPlan::none()
        };
        let run = |shards: usize| {
            run_scenario_with(
                FrameworkKind::SenseAidComplete,
                s,
                sim_seed,
                HarnessOptions {
                    shard_count: Some(shards),
                    fault_plan: Some(plan.clone()),
                    ..HarnessOptions::default()
                },
            )
        };
        let single = run(1);
        for shards in [2usize, 8] {
            let sharded = run(shards);
            prop_assert_eq!(&single.per_device_cs_j, &sharded.per_device_cs_j);
            prop_assert_eq!(single.uploads, sharded.uploads);
            prop_assert_eq!(single.readings_delivered, sharded.readings_delivered);
            prop_assert_eq!(single.readings_lost, sharded.readings_lost);
            prop_assert_eq!(single.rounds.len(), sharded.rounds.len());
            for (a, b) in single.rounds.iter().zip(&sharded.rounds) {
                prop_assert_eq!(a.at, b.at);
                prop_assert_eq!(&a.participating, &b.participating);
            }
        }
    }
}

#[test]
fn core_network_falls_back_to_path1() {
    let mut core = CoreNetwork::new();
    // Healthy: crowdsensing flows take path 2, ordinary flows path 1.
    assert_eq!(core.route(true), RoutePath::Path2ViaSenseAid);
    assert_eq!(core.route(false), RoutePath::Path1Direct);

    core.crash_senseaid_server(SimTime::from_mins(10));
    // During the outage even crowdsensing-bearing flows use path 1 — the
    // network never depends on the middleware being alive.
    for _ in 0..5 {
        assert_eq!(core.route(true), RoutePath::Path1Direct);
    }

    core.recover_senseaid_server(SimTime::from_mins(20));
    assert_eq!(core.route(true), RoutePath::Path2ViaSenseAid);
    let (p1, p2) = core.flow_counts();
    assert_eq!(p1 + p2, 8);
    assert_eq!(
        core.outage_window(),
        (Some(SimTime::from_mins(10)), Some(SimTime::from_mins(20)))
    );
}
