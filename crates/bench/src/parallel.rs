//! Parallel, determinism-preserving execution of experiment cells.
//!
//! Every figure/ablation/chaos experiment is a grid of independent
//! `run_scenario` cells (framework × seed × sweep point). Each cell is a
//! pure function of its inputs — the simulation carries its own seeded RNG
//! streams and shares nothing — so the cells can run on any number of
//! worker threads without changing a single byte of output, provided the
//! results are reassembled by cell index rather than completion order.
//!
//! The pool mechanics live in [`senseaid_core::pool::map_indexed`] — the
//! coordinator's poll pipeline (DESIGN.md §14) needs the same
//! scope/cursor/mailbox contract, so the implementation was promoted to
//! core and this module keeps only the bench-facing worker-count policy:
//! `SENSEAID_WORKERS` when set, otherwise the machine's available
//! parallelism — so CI and the determinism tests can pin it without code
//! changes.

use senseaid_core::pool::map_indexed;

/// Worker threads to use: the `SENSEAID_WORKERS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
///
/// # Panics
///
/// Panics when the variable is set but malformed, naming the variable
/// and the offending value (see [`senseaid_core::env`]) — a typo'd
/// override must not silently run a different worker count.
pub fn configured_workers() -> usize {
    senseaid_core::env::positive_env("SENSEAID_WORKERS")
        .unwrap_or_else(|err| panic!("{err}"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `f(index, item)` for every item on [`configured_workers`] worker
/// threads, returning results in input order. See [`map_cells`].
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_cells(items, configured_workers(), f)
}

/// Runs `f(index, item)` for every item on up to `workers` threads,
/// returning results in input order regardless of completion order.
///
/// Determinism: each cell's index is its key. Workers claim indices from
/// a shared atomic cursor, so which *thread* runs a cell varies between
/// runs — but the cell's inputs and its slot in the output depend only on
/// the index, so the assembled vector is byte-identical at any worker
/// count. `workers <= 1` (or a single item) short-circuits to a plain
/// serial loop on the calling thread.
///
/// A panic inside `f` propagates out of the scope and fails the caller,
/// matching the serial behaviour.
pub fn map_cells<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_indexed(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 2, 8, 64] {
            let out = map_cells(items.clone(), workers, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            let expected: Vec<usize> = (0..40).map(|x| x * 3).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        use senseaid_sim::SharedCounter;
        let calls = SharedCounter::new();
        let out = map_cells((0..100).collect::<Vec<u64>>(), 8, |_, x| {
            calls.add(1);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.value(), 100);
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert_eq!(map_cells(none, 8, |_, x| x), Vec::<u8>::new());
        assert_eq!(map_cells(vec![7u8], 8, |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn configured_workers_is_positive() {
        assert!(configured_workers() >= 1);
    }
}
