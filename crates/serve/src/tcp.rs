//! Live mode: the TCP front-end.
//!
//! No async runtime is available in this build environment, so the live
//! layer is explicit event loops over non-blocking `std::net` sockets —
//! which is also the honest shape of the design: per-shard worker
//! threads own their sockets outright (the same ownership discipline as
//! `ShardPool` workers owning their items), pump bytes through the
//! shared [`Connection`] reassembly, and forward whole frames to a
//! single engine thread that owns the coordinator. All control-plane
//! mutation is serial in that one thread — concurrency lives at the
//! edges, exactly like the sim's deterministic serial commit.
//!
//! ```text
//!  clients ──TCP──▶ worker 0 ─┐  frames                ┌─▶ worker 0 ──▶ clients
//!  clients ──TCP──▶ worker 1 ─┼────────▶ engine thread ┼─▶ worker 1 ──▶ clients
//!  clients ──TCP──▶ worker N ─┘   (SenseAidServer +    └─▶ worker N ──▶ clients
//!                                  WallClock + WAL)
//! ```
//!
//! Graceful shutdown (duration elapsed, [`ServeHandle::shutdown`], or a
//! wire `Shutdown` request): the engine advances the scheduler to "now",
//! persists a final snapshot when a WAL is armed, workers flush pending
//! writes, and the summary reports the flush so operators (and the CI
//! smoke job) can assert it was clean.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use senseaid_core::persist::{DirStorage, PersistConfig};
use senseaid_core::runtime::{Transport, TransportError, WallClock};
use senseaid_sim::SimTime;

use crate::conn::{ConnError, Connection};
use crate::engine::{ConnId, FlushSummary, ServeEngine};
use crate::trace::trace_server;
use crate::wire::{
    decode_frame, encode_push, WireFrame, WirePush, DISCONNECT_IDLE, DISCONNECT_WRITE_OVERFLOW,
};

/// Configuration for a live server.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServeHandle::addr`]).
    pub addr: String,
    /// Control-plane shard count.
    pub shards: usize,
    /// Socket event-loop worker threads.
    pub workers: usize,
    /// Arm the WAL in this directory (created if needed).
    pub persist_dir: Option<PathBuf>,
    /// Stop serving after this long (a safety net for smoke runs);
    /// `None` serves until [`ServeHandle::shutdown`] or a wire
    /// `Shutdown`.
    pub duration: Option<Duration>,
    /// Disconnect a connection that completes no frame for this long.
    /// Slow-trickled bytes that never finish a frame count as idle — a
    /// slowloris peer cannot hold a slot open by dribbling.
    pub idle_timeout: Duration,
    /// Disconnect a connection whose outbound queue has made no progress
    /// for this long (the peer stopped reading).
    pub write_stall_timeout: Duration,
    /// Disconnect a connection whose outbound queue exceeds this many
    /// bytes (the peer reads slower than it provokes pushes).
    pub max_outbuf_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            workers: 2,
            persist_dir: None,
            duration: None,
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(10),
            max_outbuf_bytes: 1 << 20,
        }
    }
}

/// What a serve run did, reported at graceful shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeSummary {
    /// Requests decoded and applied.
    pub requests: u64,
    /// Connections accepted over the lifetime.
    pub connections: u64,
    /// Frames rejected (corrupt stream, unknown kind, undecodable
    /// payload). The stream resyncs past corruption, so a bad frame
    /// costs itself, not its connection.
    pub bad_frames: u64,
    /// Assignment pushes delivered to live sessions.
    pub assignments_pushed: u64,
    /// Connections reaped for completing no frame within the idle
    /// deadline.
    pub idle_disconnects: u64,
    /// Connections reaped for a stalled or over-budget outbound queue
    /// (slow peers).
    pub overflow_disconnects: u64,
    /// The shutdown WAL flush.
    pub flush: FlushSummary,
}

impl ServeSummary {
    /// One-line operator rendering; the CI smoke job greps
    /// `flush=clean`.
    pub fn render(&self) -> String {
        format!(
            "serve: shutdown requests={} connections={} bad_frames={} pushes={} reaped_idle={} reaped_slow={} wal_records={} snapshots={} generation={} flush={}",
            self.requests,
            self.connections,
            self.bad_frames,
            self.assignments_pushed,
            self.idle_disconnects,
            self.overflow_disconnects,
            self.flush.journal_records,
            self.flush.snapshots_persisted,
            self.flush
                .generation
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".to_owned()),
            if self.flush.persistence_armed {
                "clean"
            } else {
                "volatile"
            }
        )
    }
}

/// A running server: its bound address plus the means to stop it.
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<ServeSummary>,
}

impl ServeHandle {
    /// The actually bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and waits for the summary.
    pub fn shutdown(self) -> ServeSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the server to stop on its own (duration elapsed or a
    /// wire `Shutdown` request).
    pub fn join(self) -> ServeSummary {
        self.thread.join().expect("serve thread panicked")
    }
}

/// [`Transport`] over a non-blocking TCP stream.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    open: bool,
}

impl TcpTransport {
    /// Wraps a stream, switching it to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failures.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream, open: true })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        use std::io::Write as _;
        if !self.open {
            return Err(TransportError::Closed);
        }
        match self.stream.write(bytes) {
            Ok(0) => {
                self.open = false;
                Err(TransportError::Closed)
            }
            Ok(n) => Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(0)
            }
            Err(e) => {
                self.open = false;
                Err(TransportError::Io(e.to_string()))
            }
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        use std::io::Read as _;
        if !self.open {
            return Err(TransportError::Closed);
        }
        match self.stream.read(buf) {
            Ok(0) => {
                self.open = false;
                Err(TransportError::Closed)
            }
            Ok(n) => Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(0)
            }
            Err(e) => {
                self.open = false;
                Err(TransportError::Io(e.to_string()))
            }
        }
    }

    fn is_open(&self) -> bool {
        self.open
    }
}

/// Worker → engine notifications.
enum Event {
    Frame {
        conn: ConnId,
        kind: u8,
        payload: Vec<u8>,
    },
    BadFrame,
    Disconnect {
        conn: ConnId,
    },
    /// The supervisor reaped the connection; `reason` is the
    /// `DISCONNECT_*` code already sent (best-effort) on the wire.
    Reaped {
        conn: ConnId,
        reason: u8,
    },
}

/// The per-worker supervision knobs, copied out of [`ServeOptions`].
#[derive(Debug, Clone, Copy)]
struct Supervision {
    idle_timeout: Duration,
    write_stall_timeout: Duration,
    max_outbuf_bytes: usize,
}

/// How often the lazy reaper sweeps a worker's connections.
const REAP_INTERVAL: Duration = Duration::from_millis(250);

/// One supervised connection: the pump plus the deadlines the reaper
/// checks.
struct Supervised {
    conn: Connection<TcpTransport>,
    /// Last instant a complete frame (or counted bad frame) arrived.
    last_frame: Instant,
    /// When the outbound queue first failed to drain fully, if it is
    /// still backed up.
    stalled_since: Option<Instant>,
}

impl Supervised {
    fn new(conn: Connection<TcpTransport>) -> Self {
        Supervised {
            conn,
            last_frame: Instant::now(),
            stalled_since: None,
        }
    }

    /// Why this connection should be reaped right now, if any reason.
    fn reap_reason(&self, sup: &Supervision, now: Instant) -> Option<u8> {
        if self.conn.unsent() > sup.max_outbuf_bytes {
            return Some(DISCONNECT_WRITE_OVERFLOW);
        }
        if let Some(since) = self.stalled_since {
            if now.duration_since(since) >= sup.write_stall_timeout {
                return Some(DISCONNECT_WRITE_OVERFLOW);
            }
        }
        if now.duration_since(self.last_frame) >= sup.idle_timeout {
            return Some(DISCONNECT_IDLE);
        }
        None
    }
}

/// Engine → worker commands.
enum WorkerMsg {
    Conn { conn: ConnId, stream: TcpStream },
    Send { conn: ConnId, frame: Vec<u8> },
    Shutdown,
}

/// Starts a live server; returns once the listener is bound.
///
/// # Errors
///
/// Bind/configuration failures, including an unopenable persist
/// directory.
pub fn serve(options: ServeOptions) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&options.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let storage = match &options.persist_dir {
        Some(dir) => Some(
            DirStorage::open(dir.clone())
                .map_err(|e| io::Error::other(format!("persist dir: {e}")))?,
        ),
        None => None,
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("senseaid-serve".to_owned())
        .spawn(move || run(listener, options, storage, flag))?;
    Ok(ServeHandle {
        addr,
        shutdown,
        thread,
    })
}

fn worker_loop(rx: Receiver<WorkerMsg>, events: Sender<Event>, sup: Supervision) {
    let mut conns: HashMap<ConnId, Supervised> = HashMap::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut next_reap = Instant::now() + REAP_INTERVAL;
    loop {
        let mut did_work = false;
        let mut shutting_down = false;
        loop {
            match rx.try_recv() {
                Ok(WorkerMsg::Conn { conn, stream }) => {
                    did_work = true;
                    if let Ok(transport) = TcpTransport::new(stream) {
                        conns.insert(conn, Supervised::new(Connection::new(transport)));
                    }
                }
                Ok(WorkerMsg::Send { conn, frame }) => {
                    did_work = true;
                    if let Some(s) = conns.get_mut(&conn) {
                        s.conn.queue(&frame);
                    }
                }
                Ok(WorkerMsg::Shutdown) => shutting_down = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => shutting_down = true,
            }
            if shutting_down {
                break;
            }
        }
        if shutting_down {
            // Final courtesy flush of anything already queued, then out.
            for s in conns.values_mut() {
                let _ = s.conn.flush();
            }
            return;
        }

        let mut dead: Vec<ConnId> = Vec::new();
        for (&conn, s) in conns.iter_mut() {
            match s.conn.pump_reads(&mut scratch) {
                Ok(frames) => {
                    // Corrupt stretches were resynced past, not fatal:
                    // report them for the stats, keep the connection.
                    let bad = s.conn.take_bad_frames();
                    for _ in 0..bad {
                        did_work = true;
                        let _ = events.send(Event::BadFrame);
                    }
                    if bad > 0 || !frames.is_empty() {
                        s.last_frame = Instant::now();
                    }
                    for (kind, payload) in frames {
                        did_work = true;
                        let _ = events.send(Event::Frame {
                            conn,
                            kind,
                            payload,
                        });
                    }
                }
                Err(ConnError::Transport(TransportError::Closed)) => {
                    dead.push(conn);
                    let _ = events.send(Event::Disconnect { conn });
                    continue;
                }
                Err(_) => {
                    // I/O failure: the stream has no continuation.
                    dead.push(conn);
                    let _ = events.send(Event::Disconnect { conn });
                    continue;
                }
            }
            match s.conn.flush() {
                Ok(true) => s.stalled_since = None,
                Ok(false) => {
                    s.stalled_since.get_or_insert_with(Instant::now);
                }
                Err(_) => {
                    dead.push(conn);
                    let _ = events.send(Event::Disconnect { conn });
                }
            }
        }
        for conn in dead {
            conns.remove(&conn);
        }

        // Lazy reaper: piggybacks on the loop's existing wakeups instead
        // of owning a timer thread; deadlines are only as fine-grained as
        // REAP_INTERVAL, which is the honest cost of laziness.
        let now = Instant::now();
        if now >= next_reap {
            next_reap = now + REAP_INTERVAL;
            let mut reaped: Vec<(ConnId, u8)> = Vec::new();
            for (&conn, s) in conns.iter_mut() {
                if let Some(reason) = s.reap_reason(&sup, now) {
                    // Truthful teardown: tell the peer why, best-effort
                    // (an overflowing peer likely will not read it, but
                    // the frame is on the wire if it ever does).
                    s.conn.queue(&encode_push(&WirePush::Disconnect {
                        code: reason,
                        detail: String::new(),
                    }));
                    let _ = s.conn.flush();
                    reaped.push((conn, reason));
                }
            }
            for (conn, reason) in reaped {
                conns.remove(&conn);
                did_work = true;
                let _ = events.send(Event::Reaped { conn, reason });
            }
        }

        if !did_work {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

fn run(
    listener: TcpListener,
    options: ServeOptions,
    storage: Option<DirStorage>,
    shutdown_flag: Arc<AtomicBool>,
) -> ServeSummary {
    let mut server = trace_server(options.shards);
    let clock = if let Some(storage) = storage {
        // Recover whatever the directory holds — a fresh directory is a
        // truthful cold start — and anchor the wall clock at the durable
        // horizon so a restart never reads earlier than the WAL it
        // replayed.
        let report = server
            .recover_from_storage(Box::new(storage), PersistConfig::default(), SimTime::ZERO)
            .expect("persist directory recovers");
        WallClock::starting_at(report.recovered_at)
    } else {
        WallClock::new()
    };
    let mut engine = ServeEngine::new(server, Arc::new(clock));

    let workers = options.workers.max(1);
    let supervision = Supervision {
        idle_timeout: options.idle_timeout,
        write_stall_timeout: options.write_stall_timeout,
        max_outbuf_bytes: options.max_outbuf_bytes,
    };
    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let mut worker_txs: Vec<Sender<WorkerMsg>> = Vec::with_capacity(workers);
    let mut worker_joins: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
    for i in 0..workers {
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        let events = event_tx.clone();
        worker_txs.push(tx);
        worker_joins.push(
            std::thread::Builder::new()
                .name(format!("senseaid-serve-worker-{i}"))
                .spawn(move || worker_loop(rx, events, supervision))
                .expect("spawn worker thread"),
        );
    }
    drop(event_tx);

    let worker_of = |conn: ConnId| (conn as usize) % workers;
    let deadline = options.duration.map(|d| Instant::now() + d);
    let mut next_conn: ConnId = 0;
    let mut connections = 0u64;
    let mut bad_frames = 0u64;
    let mut idle_disconnects = 0u64;
    let mut overflow_disconnects = 0u64;
    let mut shutdown_requested = false;

    loop {
        if shutdown_requested
            || shutdown_flag.load(Ordering::SeqCst)
            || deadline.is_some_and(|d| Instant::now() >= d)
        {
            break;
        }

        // Accept everything pending; hand sockets to their workers.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    next_conn += 1;
                    connections += 1;
                    let conn = next_conn;
                    let _ = worker_txs[worker_of(conn)].send(WorkerMsg::Conn { conn, stream });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Wait briefly for traffic, then batch-drain what arrived.
        let first = match event_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut batch: Vec<Event> = first.into_iter().collect();
        while batch.len() < 256 {
            match event_rx.try_recv() {
                Ok(ev) => batch.push(ev),
                Err(_) => break,
            }
        }
        for event in batch {
            match event {
                Event::Frame {
                    conn,
                    kind,
                    payload,
                } => match decode_frame(kind, &payload) {
                    Ok(WireFrame::Request(request)) => {
                        let output = engine.handle(conn, request);
                        for (to, frame) in output.frames {
                            let _ =
                                worker_txs[worker_of(to)].send(WorkerMsg::Send { conn: to, frame });
                        }
                        if output.shutdown {
                            shutdown_requested = true;
                        }
                    }
                    Ok(_) | Err(_) => bad_frames += 1,
                },
                Event::BadFrame => bad_frames += 1,
                Event::Disconnect { conn } => engine.on_disconnect(conn),
                Event::Reaped { conn, reason } => {
                    if reason == DISCONNECT_IDLE {
                        idle_disconnects += 1;
                    } else {
                        overflow_disconnects += 1;
                    }
                    engine.on_disconnect(conn);
                }
            }
        }

        // Fire any wakeups that came due on the wall clock.
        let now = engine.now();
        for (to, frame) in engine.advance_to(now) {
            let _ = worker_txs[worker_of(to)].send(WorkerMsg::Send { conn: to, frame });
        }
    }

    // Graceful shutdown: flush durable state, let workers drain writes.
    let flush = engine.shutdown_flush();
    for tx in &worker_txs {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    for join in worker_joins {
        let _ = join.join();
    }
    let stats = engine.stats();
    ServeSummary {
        requests: stats.requests,
        connections,
        bad_frames,
        assignments_pushed: stats.assignments_pushed,
        idle_disconnects,
        overflow_disconnects,
        flush,
    }
}
