//! Offline stand-in for `parking_lot`, built on `std::sync`.
//!
//! Mirrors the subset the workspace uses: a `Mutex` whose `lock()` returns
//! the guard directly (no poisoning `Result`). A poisoned std mutex is
//! recovered into its inner guard, matching parking_lot's no-poisoning
//! semantics closely enough for tests.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_from_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
