//! Offline stand-in for the `bytes` crate, covering the wire-codec subset
//! the workspace uses: `BytesMut` for building frames, frozen immutable
//! `Bytes`, big-endian `Buf`/`BufMut` accessors, and slice-advancing reads
//! on `&[u8]`.

use std::fmt;
use std::ops::Deref;

/// An immutable byte buffer, dereferencing to `&[u8]`.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in &self.data {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian write accessors, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read accessors that advance the buffer, mirroring
/// `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_bits(u64::from_be_bytes(b))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(21);
        buf.put_u8(0xab);
        buf.put_u64(0x0123_4567_89ab_cdef);
        buf.put_i32(-42);
        buf.put_f64(1013.25);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 1 + 8 + 4 + 8);

        let mut rd: &[u8] = &bytes;
        assert_eq!(rd.get_u8(), 0xab);
        assert_eq!(rd.get_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(rd.get_i32(), -42);
        assert_eq!(rd.get_f64(), 1013.25);
        assert!(rd.is_empty());
    }

    #[test]
    fn reads_advance_the_slice() {
        let data = [1u8, 2, 3];
        let mut rd: &[u8] = &data;
        assert_eq!(rd.get_u8(), 1);
        assert_eq!(rd.len(), 2);
        assert_eq!(rd.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut rd: &[u8] = &[1u8, 2];
        let _ = rd.get_u64();
    }
}
