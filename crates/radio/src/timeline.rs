//! Radio phase timeline reconstruction (paper Fig 6).
//!
//! The paper validates its tail-time inference by plotting the radio state
//! over time around a crowdsensing upload: regular traffic → tail →
//! crowdsensing bytes inside the tail → short/long DRX → demotion to idle.
//! [`PhaseTimeline`] rebuilds exactly that sequence of transitions from a
//! [`Radio`]'s transmission history.

use senseaid_sim::{SimTime, TraceEntry, TraceLog};

use crate::power::TailConfig;
use crate::rrc::{Radio, RadioPhase};

/// A reconstructed sequence of radio phase transitions.
///
/// # Example
///
/// ```
/// use senseaid_radio::{Direction, PhaseTimeline, Radio, RadioPowerProfile, ResetPolicy};
/// use senseaid_sim::SimTime;
///
/// let mut radio = Radio::new(RadioPowerProfile::lte_galaxy_s4());
/// radio.transmit(SimTime::from_secs(10), 600, Direction::Uplink, ResetPolicy::Reset);
/// let timeline = PhaseTimeline::reconstruct(&radio, SimTime::from_secs(60));
/// let phases: Vec<_> = timeline.entries().iter().map(|e| e.item).collect();
/// assert_eq!(phases.first().copied(), Some(senseaid_radio::RadioPhase::Idle));
/// assert_eq!(phases.last().copied(), Some(senseaid_radio::RadioPhase::Idle));
/// ```
#[derive(Debug, Clone)]
pub struct PhaseTimeline {
    log: TraceLog<RadioPhase>,
}

impl PhaseTimeline {
    /// Rebuilds the phase transitions of `radio` from `t = 0` to `horizon`.
    ///
    /// Each entry marks the instant a new phase begins; the phase persists
    /// until the next entry. The first entry is always `Idle` at `t = 0`.
    pub fn reconstruct(radio: &Radio, horizon: SimTime) -> Self {
        let tail = radio.profile().tail;
        let mut builder = Builder::new();
        builder.push(SimTime::ZERO, RadioPhase::Idle);

        let mut carried_anchor: Option<SimTime> = None;
        for rec in radio.history() {
            if rec.start > horizon {
                break;
            }
            // Emit the inter-activity phases (tail running out, idle)
            // between the previous activity and this one.
            if let Some(anchor) = carried_anchor {
                builder.emit_tail(&tail, anchor, rec.start);
            }
            if rec.promo_until > rec.start {
                builder.push(rec.start, RadioPhase::Promoting);
            }
            builder.push(rec.promo_until, RadioPhase::Transferring);
            carried_anchor = rec.anchor_after;
            // Tail phases right after this activity start at `rec.end`; we
            // emit them lazily before the *next* activity (or after the
            // loop), but the transfer-to-tail boundary itself is known now.
            builder.mark_activity_end(rec.end, carried_anchor, &tail);
        }
        if let Some(anchor) = carried_anchor {
            builder.emit_tail(&tail, anchor, horizon);
        }
        PhaseTimeline {
            log: builder.finish(horizon),
        }
    }

    /// The transitions in time order.
    pub fn entries(&self) -> &[TraceEntry<RadioPhase>] {
        self.log.entries()
    }

    /// The phase in effect at `t` (the last transition at or before `t`).
    /// `None` if `t` precedes the first entry (it never does: the timeline
    /// starts at `t = 0`).
    pub fn phase_at(&self, t: SimTime) -> Option<RadioPhase> {
        self.entries()
            .iter()
            .take_while(|e| e.at <= t)
            .last()
            .map(|e| e.item)
    }

    /// Renders the timeline as aligned text rows (`time  phase`), the form
    /// the Fig 6 bench prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            out.push_str(&format!("{:>12}  {}\n", e.at.to_string(), e.item));
        }
        out
    }

    /// Emits the timeline into a telemetry recording as one contiguous
    /// phase span per transition on `lane`, each closing where the next
    /// begins (the last at `horizon`). This is the span-stream view of the
    /// RRC state machine; renderers should prefer it (or
    /// [`entries`](Self::entries)) over replaying the raw `TraceLog`.
    pub fn record_spans(
        &self,
        tel: &senseaid_telemetry::Telemetry,
        lane: senseaid_telemetry::Lane,
        horizon: SimTime,
    ) {
        use senseaid_telemetry::SpanId;
        if !tel.active() {
            return;
        }
        let entries = self.entries();
        for (i, e) in entries.iter().enumerate() {
            let end = entries.get(i + 1).map(|next| next.at).unwrap_or(horizon);
            let span = tel.enter(&e.item.to_string(), e.at, lane, SpanId::NONE, Vec::new());
            tel.exit(span, end.max(e.at));
        }
    }
}

/// Internal builder that deduplicates consecutive identical phases and
/// keeps pending tail-boundary work.
struct Builder {
    entries: Vec<TraceEntry<RadioPhase>>,
    /// End of the most recent activity together with its governing anchor —
    /// the tail phases from here were not emitted yet.
    pending_tail_from: Option<(SimTime, Option<SimTime>)>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            entries: Vec::new(),
            pending_tail_from: None,
        }
    }

    fn push(&mut self, at: SimTime, phase: RadioPhase) {
        // Overwrite any pending tail start: a new activity began first.
        self.pending_tail_from = None;
        if let Some(last) = self.entries.last() {
            if last.item == phase && last.at <= at {
                return;
            }
        }
        self.entries.push(TraceEntry { at, item: phase });
    }

    fn mark_activity_end(&mut self, end: SimTime, anchor: Option<SimTime>, _tail: &TailConfig) {
        self.pending_tail_from = Some((end, anchor));
    }

    /// Emits tail transitions measured from `anchor`, starting at the
    /// pending activity end, capped at `until`.
    fn emit_tail(&mut self, tail: &TailConfig, anchor: SimTime, until: SimTime) {
        let Some((from, _)) = self.pending_tail_from.take() else {
            return;
        };
        let idle_at = {
            let demote = anchor + tail.total;
            if demote > from {
                demote
            } else {
                from
            }
        };
        let boundaries = [
            (anchor + tail.short_drx, RadioPhase::LongDrx),
            (
                anchor + tail.short_drx + tail.long_drx,
                RadioPhase::TailConnected,
            ),
            (idle_at, RadioPhase::Idle),
        ];
        // Phase at `from` itself.
        let phase_at_from = if from >= idle_at {
            RadioPhase::Idle
        } else if from < anchor + tail.short_drx {
            RadioPhase::ShortDrx
        } else if from < anchor + tail.short_drx + tail.long_drx {
            RadioPhase::LongDrx
        } else {
            RadioPhase::TailConnected
        };
        self.raw_push(from.min(until), phase_at_from);
        for (at, phase) in boundaries {
            if at > from && at <= until {
                self.raw_push(at, phase);
            }
        }
    }

    /// Push without clearing pending state (used by emit_tail itself).
    fn raw_push(&mut self, at: SimTime, phase: RadioPhase) {
        if let Some(last) = self.entries.last() {
            if last.item == phase {
                return;
            }
        }
        self.entries.push(TraceEntry { at, item: phase });
    }

    fn finish(mut self, horizon: SimTime) -> TraceLog<RadioPhase> {
        let mut log = TraceLog::new();
        self.entries.retain(|e| e.at <= horizon);
        for e in self.entries {
            log.push(e.at, e.item);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::RadioPowerProfile;
    use crate::rrc::{Direction, ResetPolicy};
    use senseaid_sim::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn single_upload_full_cycle() {
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        let rep = r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let tl = PhaseTimeline::reconstruct(&r, t(60.0));
        let phases: Vec<RadioPhase> = tl.entries().iter().map(|e| e.item).collect();
        assert_eq!(
            phases,
            vec![
                RadioPhase::Idle,
                RadioPhase::Promoting,
                RadioPhase::Transferring,
                RadioPhase::ShortDrx,
                RadioPhase::LongDrx,
                RadioPhase::TailConnected,
                RadioPhase::Idle,
            ]
        );
        // Demotion happens one tail after completion.
        let last = tl.entries().last().unwrap();
        assert_eq!(last.at, rep.completed_at + SimDuration::from_millis(11_500));
    }

    #[test]
    fn fig6_shape_crowdsensing_inside_tail_no_reset() {
        // Regular traffic, then a crowdsensing upload 3 s into the tail
        // with NoReset: the radio must demote exactly one tail after the
        // *regular* transfer.
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        let regular = r.transmit(t(10.0), 40_000, Direction::Uplink, ResetPolicy::Reset);
        let cs_at = regular.completed_at + SimDuration::from_secs(3);
        let cs = r.transmit(cs_at, 600, Direction::Uplink, ResetPolicy::NoReset);
        assert!(!cs.promoted);
        let tl = PhaseTimeline::reconstruct(&r, t(60.0));
        let idle_again = tl
            .entries()
            .iter()
            .filter(|e| e.item == RadioPhase::Idle)
            .map(|e| e.at)
            .next_back()
            .unwrap();
        assert_eq!(
            idle_again,
            regular.completed_at + SimDuration::from_millis(11_500),
            "NoReset upload must not postpone demotion"
        );
        // And the crowdsensing transfer appears as a second Transferring span.
        let transfers = tl
            .entries()
            .iter()
            .filter(|e| e.item == RadioPhase::Transferring)
            .count();
        assert_eq!(transfers, 2);
    }

    #[test]
    fn reset_upload_extends_the_timeline() {
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        let regular = r.transmit(t(10.0), 40_000, Direction::Uplink, ResetPolicy::Reset);
        let cs_at = regular.completed_at + SimDuration::from_secs(3);
        let cs = r.transmit(cs_at, 600, Direction::Uplink, ResetPolicy::Reset);
        let tl = PhaseTimeline::reconstruct(&r, t(60.0));
        let idle_again = tl
            .entries()
            .iter()
            .filter(|e| e.item == RadioPhase::Idle)
            .map(|e| e.at)
            .next_back()
            .unwrap();
        assert_eq!(
            idle_again,
            cs.completed_at + SimDuration::from_millis(11_500)
        );
    }

    #[test]
    fn phase_at_queries() {
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let tl = PhaseTimeline::reconstruct(&r, t(60.0));
        assert_eq!(tl.phase_at(t(5.0)), Some(RadioPhase::Idle));
        assert_eq!(tl.phase_at(t(10.1)), Some(RadioPhase::Promoting));
        assert_eq!(tl.phase_at(t(15.0)), Some(RadioPhase::TailConnected));
        assert_eq!(tl.phase_at(t(59.0)), Some(RadioPhase::Idle));
    }

    #[test]
    fn render_contains_phase_names() {
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        r.transmit(t(10.0), 600, Direction::Uplink, ResetPolicy::Reset);
        let text = PhaseTimeline::reconstruct(&r, t(60.0)).render();
        for needle in [
            "IDLE",
            "PROMOTING",
            "TRANSFER",
            "SHORT_DRX",
            "LONG_DRX",
            "TAIL",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn quiet_radio_is_just_idle() {
        let r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        let tl = PhaseTimeline::reconstruct(&r, t(100.0));
        assert_eq!(tl.entries().len(), 1);
        assert_eq!(tl.entries()[0].item, RadioPhase::Idle);
    }

    #[test]
    fn back_to_back_transfers_merge_sensibly() {
        let mut r = Radio::new(RadioPowerProfile::lte_galaxy_s4());
        let a = r.transmit(t(10.0), 5_000_000, Direction::Uplink, ResetPolicy::Reset);
        // Arrives mid-flight, queues.
        r.transmit(t(10.5), 600, Direction::Uplink, ResetPolicy::Reset);
        let tl = PhaseTimeline::reconstruct(&r, t(60.0));
        // No Idle or tail between the two transfers.
        let between: Vec<RadioPhase> = tl
            .entries()
            .iter()
            .filter(|e| e.at > a.started_at && e.at < a.completed_at + SimDuration::from_millis(10))
            .map(|e| e.item)
            .collect();
        assert!(
            !between.contains(&RadioPhase::Idle),
            "no idle between back-to-back transfers: {between:?}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::power::RadioPowerProfile;
    use crate::rrc::{Direction, ResetPolicy};
    use proptest::prelude::*;
    use senseaid_sim::SimDuration;

    proptest! {
        /// The reconstructed timeline agrees with the radio's own
        /// `phase_at` at every probe instant, for arbitrary transmission
        /// schedules mixing both tail policies.
        #[test]
        fn timeline_matches_phase_queries(
            gaps in prop::collection::vec(1u64..40_000_000, 1..15),
            sizes in prop::collection::vec(1u64..100_000, 15),
            resets in prop::collection::vec(any::<bool>(), 15),
            probes in prop::collection::vec(0u64..120_000_000, 40),
        ) {
            let mut radio = Radio::new(RadioPowerProfile::lte_galaxy_s4());
            let mut t = SimTime::ZERO;
            for (i, gap) in gaps.iter().enumerate() {
                t += SimDuration::from_micros(*gap);
                let policy = if resets[i] { ResetPolicy::Reset } else { ResetPolicy::NoReset };
                radio.transmit(t, sizes[i], Direction::Uplink, policy);
            }
            let horizon = radio.next_idle_at() + SimDuration::from_secs(5);
            let timeline = PhaseTimeline::reconstruct(&radio, horizon);
            for p in probes {
                let probe = SimTime::from_micros(p);
                if probe > horizon {
                    continue;
                }
                let from_timeline = timeline.phase_at(probe).expect("timeline starts at 0");
                let from_radio = radio.phase_at(probe);
                prop_assert_eq!(
                    from_timeline, from_radio,
                    "divergence at {}", probe
                );
            }
        }

        /// Timelines are well-formed: monotone timestamps, no consecutive
        /// duplicates, first entry Idle at t=0, last entry at/before the
        /// horizon.
        #[test]
        fn timeline_is_well_formed(
            gaps in prop::collection::vec(1u64..40_000_000, 1..15),
        ) {
            let mut radio = Radio::new(RadioPowerProfile::lte_galaxy_s4());
            let mut t = SimTime::ZERO;
            for gap in &gaps {
                t += SimDuration::from_micros(*gap);
                radio.transmit(t, 600, Direction::Uplink, ResetPolicy::Reset);
            }
            let horizon = radio.next_idle_at() + SimDuration::from_secs(5);
            let timeline = PhaseTimeline::reconstruct(&radio, horizon);
            let entries = timeline.entries();
            prop_assert!(!entries.is_empty());
            prop_assert_eq!(entries[0].at, SimTime::ZERO);
            prop_assert_eq!(entries[0].item, RadioPhase::Idle);
            for pair in entries.windows(2) {
                prop_assert!(pair[0].at <= pair[1].at);
                prop_assert_ne!(pair[0].item, pair[1].item);
            }
            prop_assert!(entries.last().unwrap().at <= horizon);
        }
    }
}
