//! Requests: the schedulable unit one task expands into.

use std::fmt;

use serde::{Deserialize, Serialize};

use senseaid_device::Sensor;
use senseaid_geo::CircleRegion;
use senseaid_sim::SimTime;

use crate::task::{TaskId, TaskSpec};

/// Identifier of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Dense index of one request's slot in a
/// [`RequestArena`](crate::store::task_store::RequestArena). Slots are
/// recycled once their request leaves the queues, so a slot id is only
/// meaningful while the arena holds the request; stable identity is the
/// [`RequestId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestSlot(pub u32);

/// Why admission control turned a request away at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The homing shard's run queue is at its configured bound.
    QueueFull,
}

/// Why the shed policy dropped an already-admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The homing shard's wait queue is at its configured bound.
    WaitQueueFull,
}

/// Lifecycle of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestStatus {
    /// In the run queue, not yet scheduled onto devices.
    Pending,
    /// In the wait queue: not enough qualified devices right now.
    Waiting,
    /// Assigned to devices, data not all in yet.
    Assigned,
    /// Spatial density met before the deadline.
    Fulfilled,
    /// The deadline passed without the density being met.
    Expired,
    /// The owning task was deleted.
    Cancelled,
    /// Admission control refused the request at submission time.
    Rejected {
        /// Why the request was turned away.
        reason: RejectReason,
    },
    /// The shed policy dropped the request under overload.
    Shed {
        /// Why the request was dropped.
        reason: ShedReason,
    },
    /// Served best-effort below the requested density (degraded mode):
    /// some data arrived before the deadline, but fewer devices than asked.
    Degraded {
        /// How many devices actually reported.
        achieved_density: usize,
    },
}

impl RequestStatus {
    /// Whether the status is terminal: once here, the request never runs
    /// again and its status must not be overwritten. `update_task_param`
    /// and the queue-release paths rely on this to stay truthful.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RequestStatus::Fulfilled
                | RequestStatus::Expired
                | RequestStatus::Cancelled
                | RequestStatus::Rejected { .. }
                | RequestStatus::Shed { .. }
                | RequestStatus::Degraded { .. }
        )
    }
}

/// One scheduled sampling instant of a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    id: RequestId,
    task: TaskId,
    spec: TaskSpec,
    sample_at: SimTime,
    deadline: SimTime,
}

impl Request {
    /// Creates a request. Used by [`TaskSpec::expand_requests`].
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not after `sample_at`.
    pub fn new(
        id: RequestId,
        task: TaskId,
        spec: TaskSpec,
        sample_at: SimTime,
        deadline: SimTime,
    ) -> Self {
        assert!(
            deadline > sample_at,
            "request deadline {deadline} must be after sampling instant {sample_at}"
        );
        Request {
            id,
            task,
            spec,
            sample_at,
            deadline,
        }
    }

    /// Reconstructs a request from decoded wire fields, returning `None`
    /// instead of panicking when the invariants do not hold — the
    /// persistence codec must never trust bytes read from disk.
    pub(crate) fn from_decoded(
        id: RequestId,
        task: TaskId,
        spec: TaskSpec,
        sample_at: SimTime,
        deadline: SimTime,
    ) -> Option<Self> {
        if deadline <= sample_at {
            return None;
        }
        Some(Request {
            id,
            task,
            spec,
            sample_at,
            deadline,
        })
    }

    /// The request id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The owning task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The task spec snapshot this request was generated from.
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// The sensor to sample.
    pub fn sensor(&self) -> Sensor {
        self.spec.sensor()
    }

    /// The area of interest.
    pub fn region(&self) -> CircleRegion {
        self.spec.region()
    }

    /// Devices required.
    pub fn density(&self) -> usize {
        self.spec.spatial_density()
    }

    /// When to sample.
    pub fn sample_at(&self) -> SimTime {
        self.sample_at
    }

    /// Latest useful upload instant.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} (sample {} deadline {})",
            self.id, self.task, self.sample_at, self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_geo::GeoPoint;
    use senseaid_sim::SimDuration;

    fn spec() -> TaskSpec {
        TaskSpec::builder(Sensor::Barometer)
            .region(CircleRegion::new(GeoPoint::new(40.0, -86.0), 500.0))
            .spatial_density(3)
            .sampling_period(SimDuration::from_mins(5))
            .sampling_duration(SimDuration::from_mins(30))
            .build()
            .unwrap()
    }

    #[test]
    fn accessors_delegate_to_spec() {
        let r = Request::new(
            RequestId(1),
            TaskId(2),
            spec(),
            SimTime::from_mins(10),
            SimTime::from_mins(15),
        );
        assert_eq!(r.id(), RequestId(1));
        assert_eq!(r.task(), TaskId(2));
        assert_eq!(r.sensor(), Sensor::Barometer);
        assert_eq!(r.density(), 3);
        assert_eq!(r.sample_at(), SimTime::from_mins(10));
        assert_eq!(r.deadline(), SimTime::from_mins(15));
        assert!(r.to_string().contains("req1"));
    }

    #[test]
    #[should_panic(expected = "must be after")]
    fn rejects_deadline_before_sample() {
        let _ = Request::new(
            RequestId(1),
            TaskId(2),
            spec(),
            SimTime::from_mins(10),
            SimTime::from_mins(10),
        );
    }
}
