//! Offline stand-in for `criterion`: times each benchmark closure with
//! `std::time::Instant` and prints a mean per iteration. No statistics,
//! plots, or CLI — just enough to build and run the workspace's
//! micro-benchmarks in a container without crates.io access.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Criterion {
    /// Creates a driver; mirrors `Criterion::default()`.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Accepts CLI flags in the real crate; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iterations == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iterations as f64
        };
        println!("{name}: {mean_ns:.1} ns/iter ({} iters)", b.iterations);
        self
    }
}

impl Bencher {
    fn target_iterations(probe_ns: u128) -> u64 {
        // Aim for ~50 ms of measurement, clamped to a sane range.
        let per_iter = probe_ns.max(1);
        ((50_000_000 / per_iter) as u64).clamp(10, 1_000_000)
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let probe = Instant::now();
        std::hint::black_box(routine());
        let iters = Self::target_iterations(probe.elapsed().as_nanos());
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += iters;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe = Instant::now();
        std::hint::black_box(routine(input));
        let iters = Self::target_iterations(probe.elapsed().as_nanos()).min(10_000);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iterations += iters;
    }
}

/// Prevents the optimiser from eliding a value; mirrors
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
