//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **Selector weights** — zero out each scoring term and observe the
//!   fairness spread and energy.
//! * **Tail inference window** — sweep the client's minimum-remaining-tail
//!   threshold and observe the warm-upload rate and energy.

use senseaid_core::SelectorWeights;
use senseaid_sim::SimDuration;
use senseaid_workload::ScenarioConfig;

use crate::experiments::fig09;
use crate::framework::FrameworkKind;
use crate::runner::{run_scenario_with, HarnessOptions};

/// One selector-weight configuration under test.
pub fn weight_variants() -> Vec<(&'static str, SelectorWeights)> {
    let d = SelectorWeights::default();
    vec![
        ("default (α,β,γ,φ)", d),
        ("no fairness (β=0)", SelectorWeights { beta: 0.0, ..d }),
        ("no energy (α=0)", SelectorWeights { alpha: 0.0, ..d }),
        ("no battery (γ=0)", SelectorWeights { gamma: 0.0, ..d }),
        ("no TTL (φ=0)", SelectorWeights { phi: 0.0, ..d }),
        ("fairness only", SelectorWeights::fairness_only()),
    ]
}

/// Renders the selector-weight ablation on the Fig 9 scenario.
pub fn run_selector(seed: u64) -> String {
    render_selector(fig09::scenario(), seed)
}

/// Renders the selector-weight ablation on an arbitrary scenario.
pub fn render_selector(scenario: ScenarioConfig, seed: u64) -> String {
    let mut out = String::from("=== Ablation: device-selector scoring weights ===\n");
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>12}\n",
        "variant", "energy J", "spread", "warm-rate"
    ));
    let reports = crate::parallel::map(weight_variants(), |_, (name, weights)| {
        let report = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario,
            seed,
            HarnessOptions {
                weights: Some(weights),
                ..HarnessOptions::default()
            },
        );
        (name, report)
    });
    for (name, report) in reports {
        out.push_str(&format!(
            "{:<22} {:>10.1} {:>10} {:>11.0}%\n",
            name,
            report.total_cs_j(),
            fig09::selection_spread(&report),
            100.0 * report.warm_upload_rate(),
        ));
    }
    out.push_str("\nexpectation: dropping β (fairness) widens the selection spread\n");
    out
}

/// The tail-window sweep points. The LTE tail is 11.5 s long and the
/// client checks once per second, so thresholds approaching or exceeding
/// the tail length forfeit upload opportunities.
pub fn tail_windows() -> Vec<SimDuration> {
    vec![
        SimDuration::from_millis(100),
        SimDuration::from_secs(2),
        SimDuration::from_secs(8),
        SimDuration::from_secs(11),
        SimDuration::from_secs(20),
    ]
}

/// Renders the tail-inference ablation.
pub fn run_tail(seed: u64) -> String {
    render_tail(fig09::scenario(), seed)
}

/// Renders the tail-inference ablation on an arbitrary scenario.
pub fn render_tail(scenario: ScenarioConfig, seed: u64) -> String {
    let mut out = String::from("=== Ablation: client tail-window threshold ===\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>10}\n",
        "window", "energy J", "warm-rate", "uploads"
    ));
    let reports = crate::parallel::map(tail_windows(), |_, window| {
        let report = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            scenario,
            seed,
            HarnessOptions {
                min_tail_window: Some(window),
                ..HarnessOptions::default()
            },
        );
        (window, report)
    });
    for (window, report) in reports {
        out.push_str(&format!(
            "{:<12} {:>10.1} {:>11.0}% {:>10}\n",
            window.to_string(),
            report.total_cs_j(),
            100.0 * report.warm_upload_rate(),
            report.uploads,
        ));
    }
    out.push_str("\nexpectation: a huge window forfeits tail opportunities (warm-rate falls, energy rises)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use senseaid_geo::NamedLocation;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            test_duration: SimDuration::from_mins(40),
            sampling_period: SimDuration::from_mins(10),
            spatial_density: 2,
            area_radius_m: 1000.0,
            tasks: 1,
            location: NamedLocation::CsDepartment,
            group_size: 12,
        }
    }

    #[test]
    fn dropping_fairness_widens_spread() {
        // One 40-minute run only has 4 rounds × 2 picks, which is too
        // noisy for a single-seed comparison; aggregate the spread over
        // several seeds so the fairness term's effect dominates.
        let spread_sum = |weights: SelectorWeights| -> usize {
            [21u64, 22, 23, 24, 25]
                .into_iter()
                .map(|seed| {
                    let report = run_scenario_with(
                        FrameworkKind::SenseAidComplete,
                        small(),
                        seed,
                        HarnessOptions {
                            weights: Some(weights),
                            ..HarnessOptions::default()
                        },
                    );
                    fig09::selection_spread(&report)
                })
                .sum()
        };
        let fair = spread_sum(SelectorWeights::default());
        let unfair = spread_sum(SelectorWeights {
            beta: 0.0,
            alpha: 0.0,
            ..SelectorWeights::default()
        });
        assert!(unfair >= fair, "unfair spread {unfair} vs fair {fair}");
    }

    #[test]
    fn absurd_tail_window_hurts_warm_rate() {
        let seed = 22;
        let normal = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            small(),
            seed,
            HarnessOptions {
                min_tail_window: Some(SimDuration::from_millis(500)),
                ..HarnessOptions::default()
            },
        );
        let absurd = run_scenario_with(
            FrameworkKind::SenseAidComplete,
            small(),
            seed,
            HarnessOptions {
                // Longer than the whole tail: no in-tail upload ever fires.
                min_tail_window: Some(SimDuration::from_secs(30)),
                ..HarnessOptions::default()
            },
        );
        assert!(normal.warm_upload_rate() > absurd.warm_upload_rate());
        assert!(normal.total_cs_j() < absurd.total_cs_j());
        assert_eq!(
            absurd.warm_upload_rate(),
            0.0,
            "30 s window kills every tail chance"
        );
    }
}
