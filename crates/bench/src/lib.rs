//! Experiment harness for the Sense-Aid reproduction.
//!
//! This crate glues the substrates together into the paper's user study:
//! a population of simulated students walks around campus generating app
//! traffic while one of four frameworks — Periodic, PCS, Sense-Aid Basic,
//! Sense-Aid Complete — collects barometric readings from them. One
//! `cargo bench` target per table/figure of the paper regenerates the
//! corresponding result (see `DESIGN.md` for the full index).
//!
//! The public API here is also what the repository's `examples/` use:
//!
//! ```no_run
//! use senseaid_bench::{run_scenario, FrameworkKind};
//! use senseaid_workload::ExperimentGrid;
//!
//! let scenario = ExperimentGrid::experiment1().points()[2];
//! let report = run_scenario(FrameworkKind::SenseAidComplete, scenario, 42);
//! println!("total crowdsensing energy: {:.1} J", report.total_cs_j());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod framework;
pub mod parallel;
pub mod perf;
pub mod report;
pub mod runner;
pub mod trace;

pub use framework::{FrameworkKind, GroupReport, RoundObservation};
pub use parallel::{configured_workers, map_cells};
pub use perf::{cell_names, run_perf, run_perf_filtered, PerfCell, PerfOptions, PerfReport};
pub use report::{per_device_csv, savings_pct, two_pct_bar_j, SweepTable};
pub use runner::{run_scenario, run_scenario_with, HarnessOptions};
pub use trace::{run_trace, TraceRun, TRACEABLE};
