//! Extension: adaptive tasks through a weather front (paper §8's
//! "dynamic tasks that can alter their requirements based on received
//! data", implemented).
//!
//! A two-hour study with a 6 hPa pressure front crossing the campus at
//! t = 60 min. The adaptive run starts at density 2 and lets the CAS-side
//! [`AdaptiveController`] escalate when readings disagree; it is compared
//! against a static density-2 run (cheap but blind to the front's
//! structure) and a static density-8 run (resolves the front but pays for
//! it all day).

use std::collections::BTreeMap;

use senseaid_core::adaptive::{AdaptiveConfig, AdaptiveController};
use senseaid_core::cas::CasId;
use senseaid_core::{AppServer, SenseAidClient, SenseAidConfig, SenseAidServer, UploadDecision};
use senseaid_device::{Device, ImeiHash, Sensor};
use senseaid_geo::{CampusMap, CircleRegion, NamedLocation};
use senseaid_sim::{SimDuration, SimTime};
use senseaid_workload::{PopulationConfig, StormFront, StudyPopulation};

/// Outcome of one adaptive-vs-static run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Run label.
    pub label: String,
    /// Total crowdsensing energy across the group, Joules.
    pub total_cs_j: f64,
    /// Readings delivered.
    pub readings: u64,
    /// Readings delivered per round while the front was crossing
    /// (t = 60–90 min) — the resolution that matters.
    pub storm_readings_per_round: f64,
    /// Density trajectory `(minute, density)` (adaptive runs only).
    pub density_trajectory: Vec<(u64, usize)>,
    /// Every controller window as `(minute, spread hPa)` (adaptive only).
    pub window_spreads: Vec<(u64, f64)>,
}

/// Runs one configuration: `adaptive = None` pins the density, `Some(cfg)`
/// lets the controller drive it.
pub fn run_config(
    label: &str,
    initial_density: usize,
    adaptive: Option<AdaptiveConfig>,
    seed: u64,
) -> AdaptiveOutcome {
    let map = CampusMap::standard();
    let storm_at = SimTime::from_mins(60);
    let field = StormFront::new(seed, storm_at, 6.0);
    let mut devices =
        StudyPopulation::generate(seed, &map, PopulationConfig::all_barometer(20)).into_devices();

    let mut server = SenseAidServer::new(SenseAidConfig::default());
    let mut clients: Vec<SenseAidClient> = Vec::new();
    let mut by_imei: BTreeMap<ImeiHash, usize> = BTreeMap::new();
    for (i, d) in devices.iter_mut().enumerate() {
        let imei = d.imei_hash();
        by_imei.insert(imei, i);
        let prefs = d.prefs();
        server
            .register_device(
                imei,
                prefs.energy_budget_j,
                prefs.critical_battery_pct,
                d.battery_level_pct(),
                d.profile().sensors.iter().copied().collect(),
                d.profile().device_type.clone(),
                SimTime::ZERO,
            )
            .expect("up");
        server
            .observe_device(imei, d.position(SimTime::ZERO), None)
            .expect("registered");
        let mut c = SenseAidClient::new(imei);
        c.register(prefs);
        clients.push(c);
    }

    let mut app = AppServer::new(CasId(1), "storm-watch");
    let end = SimTime::from_mins(120);
    let task = app
        .task(Sensor::Barometer)
        .region(CircleRegion::new(
            map.location(NamedLocation::CsDepartment),
            800.0,
        ))
        .spatial_density(initial_density)
        .sampling_period(SimDuration::from_mins(5))
        .window(SimTime::ZERO, end)
        .submit(&mut server, SimTime::ZERO)
        .expect("valid task");
    let mut controller = adaptive.map(|cfg| AdaptiveController::new(task, initial_density, cfg));

    let horizon = end + SimDuration::from_mins(6);
    let mut t = SimTime::ZERO;
    let mut storm_readings = 0u64;
    let mut density_trajectory = vec![(0, initial_density)];
    while t <= horizon {
        for (i, d) in devices.iter_mut().enumerate() {
            let before = d.sessions_run();
            d.run_regular_sessions_until(t);
            if d.sessions_run() > before {
                let _ = server.update_device_state(
                    clients[i].imei(),
                    d.battery_level_pct(),
                    d.cs_energy_j(),
                    t,
                );
            }
        }
        if t.as_micros().is_multiple_of(30_000_000) {
            for (i, d) in devices.iter_mut().enumerate() {
                let _ = server.observe_device(clients[i].imei(), d.position(t), None);
            }
        }
        for a in server.poll(t).expect("up") {
            for imei in &a.devices {
                let _ = clients[by_imei[imei]].start_sensing(&a);
            }
        }
        for (i, client) in clients.iter_mut().enumerate() {
            let d: &mut Device = &mut devices[i];
            for request in client.due_samples(t) {
                if let Ok(reading) = d.sample_sensor(t, Sensor::Barometer, &field) {
                    let _ = client.record_sample(request, reading);
                }
            }
            let decision = client.upload_decision(t, d.in_tail(t), d.tail_remaining(t));
            if decision != UploadDecision::Wait {
                let duties = client.send_sense_data(decision);
                if !duties.is_empty() {
                    let bytes: u64 = duties.iter().map(|x| x.payload_bytes).sum();
                    d.upload_crowdsensing(t, bytes, duties[0].reset_policy);
                    for duty in duties {
                        let reading = duty.reading.expect("sampled");
                        let _ = server.submit_sensed_data(client.imei(), duty.request, &reading, t);
                    }
                }
            }
            client.drop_expired(t);
        }
        // CAS feedback loop: deliver, observe, maybe re-parameterise.
        for (_, delivered) in server.drain_outbox() {
            if delivered.taken_at >= SimTime::from_mins(60)
                && delivered.taken_at < SimTime::from_mins(90)
            {
                storm_readings += 1;
            }
            if let Some(ctl) = controller.as_mut() {
                if let Some(new_density) = ctl.observe(&delivered, t) {
                    server
                        .update_task_param(task, Some(new_density), None, None, t)
                        .expect("task is active");
                    density_trajectory.push((t.as_secs_f64() as u64 / 60, new_density));
                }
            }
            app.receive_sensed_data(delivered);
        }
        t += SimDuration::from_secs(1);
    }

    let storm_rounds = 30.0 / 5.0; // 30 storm minutes at a 5-min period
    AdaptiveOutcome {
        label: label.to_owned(),
        total_cs_j: devices.iter().map(|d| d.cs_energy_j()).sum(),
        readings: app.received().len() as u64,
        storm_readings_per_round: storm_readings as f64 / storm_rounds,
        density_trajectory,
        window_spreads: controller
            .as_ref()
            .map(|c| {
                c.window_history()
                    .iter()
                    .map(|(t, s)| (t.as_secs_f64() as u64 / 60, *s))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// Renders the adaptive-task study.
pub fn run(seed: u64) -> String {
    let adaptive = run_config("adaptive (2→8)", 2, Some(AdaptiveConfig::default()), seed);
    let static_low = run_config("static density 2", 2, None, seed);
    let static_high = run_config("static density 8", 8, None, seed);

    let mut out = String::from(
        "=== Extension: adaptive task density through a 6 hPa pressure front (t=60 min) ===\n",
    );
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>22}\n",
        "run", "energy J", "readings", "storm readings/round"
    ));
    for o in [&static_low, &adaptive, &static_high] {
        out.push_str(&format!(
            "{:<18} {:>10.1} {:>10} {:>22.1}\n",
            o.label, o.total_cs_j, o.readings, o.storm_readings_per_round
        ));
    }
    out.push_str("\nadaptive density trajectory (minute → density): ");
    for (min, d) in &adaptive.density_trajectory {
        out.push_str(&format!("{min}′→{d} "));
    }
    out.push_str(
        "\n\nexpectation: the adaptive run matches static-8's storm resolution at a fraction\nof its energy, and static-2's calm-weather cost the rest of the time\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_escalates_during_the_storm_and_decays_after() {
        let o = run_config("a", 2, Some(AdaptiveConfig::default()), 71);
        let max_density = o.density_trajectory.iter().map(|(_, d)| *d).max().unwrap();
        assert!(
            max_density >= 4,
            "front must trigger escalation: {:?}",
            o.density_trajectory
        );
        // Escalation happens after the front arrives (minute 60+).
        let first_up = o
            .density_trajectory
            .iter()
            .find(|(_, d)| *d > 2)
            .expect("an escalation exists");
        assert!(
            first_up.0 >= 58,
            "no escalation before the storm: {:?}",
            o.density_trajectory
        );
        // And the controller decays once the front has passed.
        let last = o.density_trajectory.last().unwrap();
        assert!(
            last.1 < max_density,
            "density should decay after the front: {:?}",
            o.density_trajectory
        );
    }

    #[test]
    fn adaptive_sits_between_the_static_extremes_on_energy() {
        let seed = 72;
        let adaptive = run_config("a", 2, Some(AdaptiveConfig::default()), seed);
        let low = run_config("l", 2, None, seed);
        let high = run_config("h", 8, None, seed);
        assert!(low.total_cs_j < high.total_cs_j);
        assert!(
            adaptive.total_cs_j < high.total_cs_j,
            "adaptive {} must undercut always-8 {}",
            adaptive.total_cs_j,
            high.total_cs_j
        );
        // And it resolves the storm better than always-2.
        assert!(
            adaptive.storm_readings_per_round > low.storm_readings_per_round,
            "adaptive {} vs static-2 {}",
            adaptive.storm_readings_per_round,
            low.storm_readings_per_round
        );
    }
}
