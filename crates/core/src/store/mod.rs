//! Server-side datastores (paper §3.2).

pub mod device_store;
pub mod task_store;
