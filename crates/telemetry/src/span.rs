//! The span model: identifiers, lanes, typed attributes, and events.
//!
//! A *span* is an interval of simulated time with a name, a lane (where it
//! renders in a trace viewer), typed attributes, and a causal parent. An
//! *instant* is a zero-width span — a point event that can still parent
//! other spans (a tasking decision parents the envelope that carries it).
//! Both are recorded as [`Event`]s in a flat, append-only stream whose
//! order is itself deterministic for a fixed seed.

use std::collections::BTreeMap;
use std::fmt;

use senseaid_sim::SimTime;

/// Identifies one span or instant within a recording.
///
/// Ids are allocated densely from 1 in recording order; [`SpanId::NONE`]
/// (zero) means "no span" and is what the inactive telemetry handle
/// returns, so instrumentation sites never need to branch on activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no parent / telemetry off.
    pub const NONE: SpanId = SpanId(0);

    /// True for every id except [`SpanId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Where an event renders in a trace viewer.
///
/// Chrome Trace Event viewers group events into *processes* and *threads*;
/// we map shards to processes (`pid`) and devices to threads (`tid`).
/// `tid` 0 is the control lane of a shard (scheduler / selection work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lane {
    /// Process lane: the shard index.
    pub pid: u64,
    /// Thread lane: the device IMEI hash, or 0 for control-plane work.
    pub tid: u64,
}

impl Lane {
    /// The control lane of shard `shard`.
    pub const fn control(shard: u64) -> Lane {
        Lane { pid: shard, tid: 0 }
    }

    /// The lane of device `imei` homed on shard `shard`.
    pub const fn device(shard: u64, imei: u64) -> Lane {
        Lane {
            pid: shard,
            tid: imei,
        }
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

/// One `key = value` attribute on a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute name; static so call sites stay allocation-free.
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

impl Attr {
    /// An unsigned-integer attribute.
    pub fn u64(key: &'static str, value: u64) -> Attr {
        Attr {
            key,
            value: AttrValue::U64(value),
        }
    }

    /// A signed-integer attribute.
    pub fn i64(key: &'static str, value: i64) -> Attr {
        Attr {
            key,
            value: AttrValue::I64(value),
        }
    }

    /// A floating-point attribute.
    pub fn f64(key: &'static str, value: f64) -> Attr {
        Attr {
            key,
            value: AttrValue::F64(value),
        }
    }

    /// A boolean attribute.
    pub fn flag(key: &'static str, value: bool) -> Attr {
        Attr {
            key,
            value: AttrValue::Bool(value),
        }
    }

    /// A text attribute.
    pub fn str(key: &'static str, value: impl Into<String>) -> Attr {
        Attr {
            key,
            value: AttrValue::Str(value.into()),
        }
    }
}

/// One record in the telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opens.
    Enter {
        /// This span's id.
        id: SpanId,
        /// Causal parent ([`SpanId::NONE`] for roots).
        parent: SpanId,
        /// Open time.
        at: SimTime,
        /// Span name.
        name: String,
        /// Rendering lane.
        lane: Lane,
        /// Typed attributes.
        attrs: Vec<Attr>,
    },
    /// A span closes.
    Exit {
        /// The span being closed.
        id: SpanId,
        /// Close time.
        at: SimTime,
    },
    /// A point event.
    Instant {
        /// This instant's id (instants can parent spans).
        id: SpanId,
        /// Causal parent ([`SpanId::NONE`] for roots).
        parent: SpanId,
        /// Event time.
        at: SimTime,
        /// Event name.
        name: String,
        /// Rendering lane.
        lane: Lane,
        /// Typed attributes.
        attrs: Vec<Attr>,
    },
    /// A snapshot of the unified metrics registry.
    Stats {
        /// Snapshot time.
        at: SimTime,
        /// The registry view.
        snapshot: crate::registry::RegistrySnapshot,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            Event::Enter { at, .. }
            | Event::Exit { at, .. }
            | Event::Instant { at, .. }
            | Event::Stats { at, .. } => *at,
        }
    }

    /// The event's name, if it has one (`Exit`/`Stats` do not).
    pub fn name(&self) -> Option<&str> {
        match self {
            Event::Enter { name, .. } | Event::Instant { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The event's lane, if it has one.
    pub fn lane(&self) -> Option<Lane> {
        match self {
            Event::Enter { lane, .. } | Event::Instant { lane, .. } => Some(*lane),
            _ => None,
        }
    }

    /// The event's attributes (empty for `Exit`/`Stats`).
    pub fn attrs(&self) -> &[Attr] {
        match self {
            Event::Enter { attrs, .. } | Event::Instant { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Looks up an unsigned-integer attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs()
            .iter()
            .find(|a| a.key == key)
            .and_then(|a| match &a.value {
                AttrValue::U64(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a text attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs()
            .iter()
            .find(|a| a.key == key)
            .and_then(|a| match &a.value {
                AttrValue::Str(v) => Some(v.as_str()),
                _ => None,
            })
    }
}

/// Checks the structural invariants of a recorded stream: every `Exit`
/// closes a span that is open at that point, no span closes twice, every
/// `Enter` is eventually closed, parents exist before their children, and
/// a parent *span* never closes while a child span is still open (instants
/// may parent spans that outlive them — a tasking decision parents the
/// delivery envelope it causes).
///
/// Returns `Err` with a description of the first violation found.
pub fn check_balanced(events: &[Event]) -> Result<(), String> {
    // id -> (parent, open children) for spans currently open.
    let mut open: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(0u64);
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::Enter {
                id, parent, name, ..
            } => {
                if !seen.insert(id.0) {
                    return Err(format!("event {i}: span {id} ({name}) reuses an id"));
                }
                if !seen.contains(&parent.0) {
                    return Err(format!(
                        "event {i}: span {id} ({name}) parent {parent} unseen"
                    ));
                }
                if let Some((_, children)) = open.get_mut(&parent.0) {
                    *children += 1;
                }
                open.insert(id.0, (parent.0, 0));
            }
            Event::Exit { id, .. } => {
                let Some((parent, children)) = open.remove(&id.0) else {
                    return Err(format!("event {i}: exit of span {id} which is not open"));
                };
                if children != 0 {
                    return Err(format!(
                        "event {i}: span {id} closed with {children} child span(s) still open"
                    ));
                }
                if let Some((_, siblings)) = open.get_mut(&parent) {
                    *siblings -= 1;
                }
            }
            Event::Instant {
                id, parent, name, ..
            } => {
                if !seen.insert(id.0) {
                    return Err(format!("event {i}: instant {id} ({name}) reuses an id"));
                }
                if !seen.contains(&parent.0) {
                    return Err(format!(
                        "event {i}: instant {id} ({name}) parent {parent} unseen"
                    ));
                }
            }
            Event::Stats { .. } => {}
        }
    }
    if let Some((id, _)) = open.iter().next() {
        return Err(format!(
            "span {id} never closed ({} open in total)",
            open.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn balanced_stream_passes() {
        let events = vec![
            Event::Enter {
                id: SpanId(1),
                parent: SpanId::NONE,
                at: t(0),
                name: "a".into(),
                lane: Lane::control(0),
                attrs: vec![],
            },
            Event::Instant {
                id: SpanId(2),
                parent: SpanId(1),
                at: t(1),
                name: "b".into(),
                lane: Lane::control(0),
                attrs: vec![],
            },
            Event::Enter {
                id: SpanId(3),
                parent: SpanId(2),
                at: t(1),
                name: "c".into(),
                lane: Lane::device(0, 7),
                attrs: vec![],
            },
            Event::Exit {
                id: SpanId(3),
                at: t(2),
            },
            Event::Exit {
                id: SpanId(1),
                at: t(3),
            },
        ];
        assert_eq!(check_balanced(&events), Ok(()));
    }

    #[test]
    fn unclosed_span_is_flagged() {
        let events = vec![Event::Enter {
            id: SpanId(1),
            parent: SpanId::NONE,
            at: t(0),
            name: "a".into(),
            lane: Lane::control(0),
            attrs: vec![],
        }];
        assert!(check_balanced(&events)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn parent_closing_before_child_is_flagged() {
        let events = vec![
            Event::Enter {
                id: SpanId(1),
                parent: SpanId::NONE,
                at: t(0),
                name: "a".into(),
                lane: Lane::control(0),
                attrs: vec![],
            },
            Event::Enter {
                id: SpanId(2),
                parent: SpanId(1),
                at: t(0),
                name: "b".into(),
                lane: Lane::control(0),
                attrs: vec![],
            },
            Event::Exit {
                id: SpanId(1),
                at: t(1),
            },
            Event::Exit {
                id: SpanId(2),
                at: t(2),
            },
        ];
        assert!(check_balanced(&events).unwrap_err().contains("still open"));
    }

    #[test]
    fn double_exit_is_flagged() {
        let events = vec![
            Event::Enter {
                id: SpanId(1),
                parent: SpanId::NONE,
                at: t(0),
                name: "a".into(),
                lane: Lane::control(0),
                attrs: vec![],
            },
            Event::Exit {
                id: SpanId(1),
                at: t(1),
            },
            Event::Exit {
                id: SpanId(1),
                at: t(2),
            },
        ];
        assert!(check_balanced(&events).unwrap_err().contains("not open"));
    }

    #[test]
    fn unknown_parent_is_flagged() {
        let events = vec![Event::Instant {
            id: SpanId(2),
            parent: SpanId(9),
            at: t(0),
            name: "b".into(),
            lane: Lane::control(0),
            attrs: vec![],
        }];
        assert!(check_balanced(&events).unwrap_err().contains("unseen"));
    }

    #[test]
    fn attr_lookup() {
        let ev = Event::Instant {
            id: SpanId(1),
            parent: SpanId::NONE,
            at: t(0),
            name: "sel".into(),
            lane: Lane::control(0),
            attrs: vec![Attr::u64("n", 4), Attr::str("who", "a,b")],
        };
        assert_eq!(ev.attr_u64("n"), Some(4));
        assert_eq!(ev.attr_str("who"), Some("a,b"));
        assert_eq!(ev.attr_u64("who"), None);
        assert_eq!(ev.attr_u64("missing"), None);
    }
}
