//! Device hardware profiles.
//!
//! The paper's Table 1 lets a task restrict itself to a `device_type`
//! string (e.g. `"iPhone6"`, `"LG G2"`), and a device is unqualified for a
//! task whose sensor it lacks. Profiles carry both facts plus the radio
//! power model.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use senseaid_radio::RadioPowerProfile;

use crate::battery;
use crate::sensors::Sensor;

/// Hardware description of a device model.
///
/// # Example
///
/// ```
/// use senseaid_device::{DeviceProfile, Sensor};
///
/// let s4 = DeviceProfile::galaxy_s4();
/// assert!(s4.has_sensor(Sensor::Barometer));
/// assert!(!DeviceProfile::budget_phone().has_sensor(Sensor::Barometer));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The `device_type` string tasks may match against.
    pub device_type: String,
    /// Radio power model.
    pub radio: RadioPowerProfile,
    /// Battery capacity in Joules.
    pub battery_capacity_j: f64,
    /// Sensors present on this model.
    pub sensors: BTreeSet<Sensor>,
}

impl DeviceProfile {
    /// The study handset: Samsung Galaxy S4 on LTE, full sensor suite.
    pub fn galaxy_s4() -> Self {
        DeviceProfile {
            device_type: "GalaxyS4".to_owned(),
            radio: RadioPowerProfile::lte_galaxy_s4(),
            battery_capacity_j: battery::NOMINAL_CAPACITY_J,
            sensors: [
                Sensor::Accelerometer,
                Sensor::Magnetometer,
                Sensor::Gyroscope,
                Sensor::Light,
                Sensor::Barometer,
                Sensor::Humidity,
                Sensor::Thermometer,
                Sensor::Gps,
                Sensor::Microphone,
                Sensor::Camera,
            ]
            .into(),
        }
    }

    /// The study handset on a 3G network (Fig 2's 3G bars).
    pub fn galaxy_s4_3g() -> Self {
        DeviceProfile {
            device_type: "GalaxyS4-3G".to_owned(),
            radio: RadioPowerProfile::threeg_galaxy_s4(),
            ..Self::galaxy_s4()
        }
    }

    /// An iPhone 6-like device: has a barometer, no ambient thermometer or
    /// humidity sensor.
    pub fn iphone6() -> Self {
        DeviceProfile {
            device_type: "iPhone6".to_owned(),
            radio: RadioPowerProfile::lte_galaxy_s4(),
            battery_capacity_j: 1810.0 * 3.82 * 3.6,
            sensors: [
                Sensor::Accelerometer,
                Sensor::Magnetometer,
                Sensor::Gyroscope,
                Sensor::Light,
                Sensor::Barometer,
                Sensor::Gps,
                Sensor::Microphone,
                Sensor::Camera,
            ]
            .into(),
        }
    }

    /// An LG G2-like device: no barometer.
    pub fn lg_g2() -> Self {
        DeviceProfile {
            device_type: "LG G2".to_owned(),
            radio: RadioPowerProfile::lte_galaxy_s4(),
            battery_capacity_j: 3000.0 * 3.8 * 3.6,
            sensors: [
                Sensor::Accelerometer,
                Sensor::Magnetometer,
                Sensor::Gyroscope,
                Sensor::Light,
                Sensor::Gps,
                Sensor::Microphone,
                Sensor::Camera,
            ]
            .into(),
        }
    }

    /// A budget phone without barometer or gyroscope — exists in every
    /// student population and must end up *unqualified* for barometer
    /// tasks.
    pub fn budget_phone() -> Self {
        DeviceProfile {
            device_type: "BudgetPhone".to_owned(),
            radio: RadioPowerProfile::lte_galaxy_s4(),
            battery_capacity_j: 1500.0 * 3.7 * 3.6,
            sensors: [
                Sensor::Accelerometer,
                Sensor::Light,
                Sensor::Gps,
                Sensor::Microphone,
                Sensor::Camera,
            ]
            .into(),
        }
    }

    /// Whether the model carries `sensor`.
    pub fn has_sensor(&self, sensor: Sensor) -> bool {
        self.sensors.contains(&sensor)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive battery capacity, an empty device type, or
    /// an invalid radio profile.
    pub fn validate(&self) {
        assert!(
            !self.device_type.is_empty(),
            "device_type must be non-empty"
        );
        assert!(
            self.battery_capacity_j.is_finite() && self.battery_capacity_j > 0.0,
            "battery capacity {} must be positive",
            self.battery_capacity_j
        );
        self.radio.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            DeviceProfile::galaxy_s4(),
            DeviceProfile::galaxy_s4_3g(),
            DeviceProfile::iphone6(),
            DeviceProfile::lg_g2(),
            DeviceProfile::budget_phone(),
        ] {
            p.validate();
        }
    }

    #[test]
    fn barometer_availability_matches_reality() {
        assert!(DeviceProfile::galaxy_s4().has_sensor(Sensor::Barometer));
        assert!(DeviceProfile::iphone6().has_sensor(Sensor::Barometer));
        assert!(!DeviceProfile::lg_g2().has_sensor(Sensor::Barometer));
        assert!(!DeviceProfile::budget_phone().has_sensor(Sensor::Barometer));
    }

    #[test]
    fn threeg_variant_swaps_radio_only() {
        let lte = DeviceProfile::galaxy_s4();
        let threeg = DeviceProfile::galaxy_s4_3g();
        assert_eq!(lte.sensors, threeg.sensors);
        assert_eq!(lte.battery_capacity_j, threeg.battery_capacity_j);
        assert_ne!(lte.radio, threeg.radio);
    }

    #[test]
    fn device_types_are_distinct() {
        let types: Vec<String> = [
            DeviceProfile::galaxy_s4(),
            DeviceProfile::galaxy_s4_3g(),
            DeviceProfile::iphone6(),
            DeviceProfile::lg_g2(),
            DeviceProfile::budget_phone(),
        ]
        .iter()
        .map(|p| p.device_type.clone())
        .collect();
        let unique: std::collections::BTreeSet<_> = types.iter().collect();
        assert_eq!(unique.len(), types.len());
    }
}
