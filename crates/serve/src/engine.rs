//! The serving engine: one coordinator, one clock, many connections.
//!
//! [`ServeEngine`] is the mode-independent heart of the live runtime.
//! It owns a `SenseAidServer` and a [`Clock`]; decoded requests arrive
//! tagged with a connection id, get stamped with `clock.now()` at
//! receive time, and the resulting responses / assignment pushes come
//! back as sealed frames routed to connection ids. Neither sockets nor
//! loopback queues appear here — the TCP event loops (live mode) and the
//! trace replay driver (sim mode) both feed this same type, which is the
//! structural half of the byte-identity argument.
//!
//! **The serving semantics, stated once** (the sim-side replay in
//! [`crate::trace`] mirrors these rules verbatim — change them together):
//!
//! 1. Before a request is applied, the scheduler is advanced through
//!    every due wakeup: `while next_wakeup(cursor) <= now { poll }`.
//! 2. Every device-originated request except `Hello`/`Register` first
//!    renews the device's lease via `record_device_comm` at receive time
//!    (the PR 5 "any radio contact renews" rule, driven by real receive
//!    timestamps in live mode); an unknown device renews nothing.
//! 3. The request's own mutation is applied at the same receive
//!    timestamp.
//! 4. Assignments produced by polls are pushed to the session bound to
//!    each selected device (`Hello`/`Register` bind sessions); devices
//!    without a live session miss the push — delivery is not part of the
//!    durable state, so this cannot perturb byte identity.
//!
//! **Sessions survive their sockets.** A session is keyed by the device
//! identity, carries a token minted at `Hello`, and outlives any one
//! connection: `on_disconnect` unbinds the socket but keeps the session,
//! its bounded unacked-push ledger, and its request-dedup state, so a
//! [`WireRequest::Resume`] on a fresh connection replays exactly the
//! pushes the client has not acked and a retransmitted
//! [`WireRequest::Tracked`] envelope replays the recorded response
//! instead of re-applying the operation. That pair of rules is what makes
//! the surviving-prefix digest identity hold under transport chaos: an
//! operation is applied at most once no matter how many times the link
//! dies mid-exchange.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use senseaid_cellnet::CellId;
use senseaid_core::cas::CasId;
use senseaid_core::runtime::Clock;
use senseaid_core::{Assignment, SenseAidError, SenseAidServer, TaskSpec};
use senseaid_device::{ImeiHash, SensorReading};
use senseaid_geo::{CircleRegion, GeoPoint};
use senseaid_sim::{SimDuration, SimTime};
use senseaid_telemetry::{Attr, Lane, SpanId, Telemetry};

use crate::wire::{
    encode_push, encode_response, error_code, WirePush, WireReading, WireRequest, WireResponse,
    WireTaskSpec, DISCONNECT_LEASE_EXPIRED, DISCONNECT_LEDGER_OVERFLOW, ERR_BAD_SEQUENCE,
    ERR_UNKNOWN_SESSION,
};

/// A connection identity, assigned by the transport layer.
pub type ConnId = u64;

/// Default bound on a session's unacked push ledger; past it the session
/// is revoked (the client has plainly stopped acking).
pub const DEFAULT_LEDGER_CAP: usize = 256;

/// Counters the engine keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests decoded and applied.
    pub requests: u64,
    /// Responses sent (1:1 with requests).
    pub responses: u64,
    /// Assignment pushes routed to live sessions.
    pub assignments_pushed: u64,
    /// Assignments whose device had no live session.
    pub assignments_unrouted: u64,
    /// Assignments held in a disconnected session's ledger, awaiting
    /// resume replay.
    pub assignments_queued: u64,
    /// Sessions minted at `Hello`/`Register`.
    pub sessions_created: u64,
    /// Successful `Resume` rebinds.
    pub sessions_resumed: u64,
    /// Pushes replayed from a ledger during resume.
    pub pushes_replayed: u64,
    /// Tracked envelopes answered from the response cache without
    /// re-applying the operation.
    pub requests_deduped: u64,
    /// Sessions revoked because their unacked ledger overflowed.
    pub ledger_overflows: u64,
    /// Sessions torn down because the device's liveness lease expired.
    pub sessions_lease_torn: u64,
}

/// What the WAL flush at graceful shutdown found.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlushSummary {
    /// Whether persistence was armed at all.
    pub persistence_armed: bool,
    /// Journal records appended over the server's lifetime.
    pub journal_records: u64,
    /// Snapshots persisted (including the shutdown flush).
    pub snapshots_persisted: u64,
    /// The durable generation after the flush.
    pub generation: Option<u64>,
    /// Pushes still sitting unacked in session ledgers at flush time.
    /// Delivery is not durable state, so these are *reported*, not
    /// persisted: a client resuming against a restarted server re-Hellos
    /// and the scheduler re-derives its assignments from the WAL.
    pub unacked_pushes: u64,
}

/// Frames to send, each addressed to a connection.
#[derive(Debug, Default)]
pub struct EngineOutput {
    /// Sealed frames, in send order per connection.
    pub frames: Vec<(ConnId, Vec<u8>)>,
    /// The request asked the server to shut down.
    pub shutdown: bool,
}

/// One device's (or CAS driver's) durable session: the state that
/// survives the socket.
#[derive(Debug)]
struct Session {
    /// The resume credential minted at `Hello`.
    token: u64,
    /// The connection currently bound, if any.
    conn: Option<ConnId>,
    /// Whether this identity was a registered device when last checked
    /// (CAS driver sessions are not; the lease sweep skips them).
    device_bound: bool,
    /// Next push sequence number to mint (1-based).
    next_push_seq: u64,
    /// Unacked pushes: `(seq, sealed frame)`, oldest first.
    ledger: VecDeque<(u64, Vec<u8>)>,
    /// Highest Tracked envelope sequence applied.
    last_req_seq: u64,
    /// The sealed response frame for `last_req_seq`, replayed verbatim
    /// on a retransmit.
    cached_response: Option<Vec<u8>>,
}

impl Session {
    fn fresh(token: u64, conn: ConnId, device_bound: bool) -> Self {
        Session {
            token,
            conn: Some(conn),
            device_bound,
            next_push_seq: 1,
            ledger: VecDeque::new(),
            last_req_seq: 0,
            cached_response: None,
        }
    }

    /// Cumulative ack: drop every ledgered push with seq ≤ `ack`.
    fn prune(&mut self, ack: u64) {
        while self.ledger.front().is_some_and(|(seq, _)| *seq <= ack) {
            self.ledger.pop_front();
        }
    }
}

/// The mode-independent serving core. See the module docs for the
/// serving semantics it guarantees.
pub struct ServeEngine {
    server: SenseAidServer,
    clock: Arc<dyn Clock>,
    /// identity (imei, or a CAS driver's chosen id) → session.
    sessions: HashMap<u64, Session>,
    /// token → identity, the resume lookup.
    tokens: HashMap<u64, u64>,
    /// Deterministic token mint counter.
    next_token: u64,
    /// Bound on each session's unacked push ledger.
    ledger_cap: usize,
    /// When false, pushes are fire-and-forget exactly as before PR 10
    /// (the perf pair prices the ledger against this).
    ledger_enabled: bool,
    /// `ServerStats::leases_expired` last time the lease sweep ran.
    leases_expired_seen: u64,
    /// `session.*` / `conn.*` instants; off by default.
    tel: Telemetry,
    /// The last instant the scheduler was advanced to.
    cursor: SimTime,
    stats: EngineStats,
}

impl ServeEngine {
    /// Wraps a configured server and a clock.
    pub fn new(server: SenseAidServer, clock: Arc<dyn Clock>) -> Self {
        ServeEngine {
            server,
            clock,
            sessions: HashMap::new(),
            tokens: HashMap::new(),
            next_token: 0,
            ledger_cap: DEFAULT_LEDGER_CAP,
            ledger_enabled: true,
            leases_expired_seen: 0,
            tel: Telemetry::off(),
            cursor: SimTime::ZERO,
            stats: EngineStats::default(),
        }
    }

    /// The wrapped server (digests, stats).
    pub fn server(&self) -> &SenseAidServer {
        &self.server
    }

    /// Mutable access (persistence arming at startup).
    pub fn server_mut(&mut self) -> &mut SenseAidServer {
        &mut self.server
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine's current notion of now.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Arms `session.*`/`conn.*` instants on `tel` (off by default).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Overrides the per-session unacked-push ledger bound.
    pub fn set_ledger_cap(&mut self, cap: usize) {
        self.ledger_cap = cap.max(1);
    }

    /// Disables (or re-enables) push retention. With the ledger off,
    /// pushes are fire-and-forget and resume replays nothing — the
    /// pre-PR 10 behaviour the `session_ledger_overhead` perf pair
    /// measures against.
    pub fn set_session_ledger(&mut self, enabled: bool) {
        self.ledger_enabled = enabled;
    }

    /// Live sessions (bound or awaiting resume).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Pushes sitting unacked across every session ledger.
    pub fn unacked_pushes(&self) -> u64 {
        self.sessions.values().map(|s| s.ledger.len() as u64).sum()
    }

    /// Advances the scheduler through every wakeup due at or before `t`,
    /// returning assignment pushes for the sessions of selected devices.
    ///
    /// This is rule 1 of the serving semantics: polls happen at their
    /// scheduled instants in order, never early, never skipped — the same
    /// event-loop contract the sim harness runs (`WakeupDriver`).
    pub fn advance_to(&mut self, t: SimTime) -> Vec<(ConnId, Vec<u8>)> {
        let mut frames = Vec::new();
        while let Some(wakeup) = self.server.next_wakeup(self.cursor) {
            if wakeup > t {
                break;
            }
            let at = wakeup.max(self.cursor);
            let assignments = self.server.poll(at).unwrap_or_default();
            self.cursor = at;
            for assignment in assignments {
                self.route_assignment(&assignment, &mut frames);
            }
        }
        if t > self.cursor {
            self.cursor = t;
        }
        self.sweep_expired_leases(&mut frames);
        frames
    }

    /// PR 5 integration: when a poll evicted devices whose liveness lease
    /// expired, their sessions die with them. Cheap in the common case —
    /// the sweep only walks the session map when the eviction counter
    /// moved.
    fn sweep_expired_leases(&mut self, frames: &mut Vec<(ConnId, Vec<u8>)>) {
        let expired = self.server.stats().leases_expired;
        if expired == self.leases_expired_seen {
            return;
        }
        self.leases_expired_seen = expired;
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(identity, s)| {
                s.device_bound && self.server.device(ImeiHash(**identity)).is_none()
            })
            .map(|(identity, _)| *identity)
            .collect();
        for identity in dead {
            let session = self.sessions.remove(&identity).expect("listed above");
            self.tokens.remove(&session.token);
            self.stats.sessions_lease_torn += 1;
            self.tel.instant(
                "session.lease_torn",
                self.cursor,
                Lane::control(0),
                SpanId::NONE,
                vec![Attr::u64("imei", identity)],
            );
            if let Some(conn) = session.conn {
                let notice = WirePush::Disconnect {
                    code: DISCONNECT_LEASE_EXPIRED,
                    detail: format!("device {identity} lease expired; session torn down"),
                };
                frames.push((conn, encode_push(&notice)));
            }
        }
    }

    fn route_assignment(&mut self, assignment: &Assignment, frames: &mut Vec<(ConnId, Vec<u8>)>) {
        let devices: Vec<u64> = assignment.devices.iter().map(|d| d.0).collect();
        for device in &devices {
            let Some(session) = self.sessions.get_mut(device) else {
                self.stats.assignments_unrouted += 1;
                continue;
            };
            let seq = session.next_push_seq;
            session.next_push_seq += 1;
            let push = WirePush::Assignment {
                seq,
                device: *device,
                request: assignment.request.0,
                task: assignment.task.0,
                sensor: assignment.sensor,
                sample_at_us: assignment.sample_at.as_micros(),
                deadline_us: assignment.deadline.as_micros(),
                payload_bytes: assignment.payload_bytes,
                devices: devices.clone(),
            };
            let frame = encode_push(&push);
            if self.ledger_enabled {
                session.ledger.push_back((seq, frame.clone()));
                if session.ledger.len() > self.ledger_cap {
                    // The client stopped acking; holding unbounded frames
                    // for it would let one dead peer eat the server.
                    let session = self.sessions.remove(device).expect("present above");
                    self.tokens.remove(&session.token);
                    self.stats.ledger_overflows += 1;
                    self.tel.instant(
                        "session.ledger_overflow",
                        self.cursor,
                        Lane::control(0),
                        SpanId::NONE,
                        vec![Attr::u64("imei", *device)],
                    );
                    if let Some(conn) = session.conn {
                        let notice = WirePush::Disconnect {
                            code: DISCONNECT_LEDGER_OVERFLOW,
                            detail: format!(
                                "session push ledger exceeded {} unacked pushes",
                                self.ledger_cap
                            ),
                        };
                        frames.push((conn, encode_push(&notice)));
                    }
                    continue;
                }
            }
            match session.conn {
                Some(conn) => {
                    frames.push((conn, frame));
                    self.stats.assignments_pushed += 1;
                }
                None if self.ledger_enabled => self.stats.assignments_queued += 1,
                None => self.stats.assignments_unrouted += 1,
            }
        }
    }

    /// Unbinds the sessions of a disconnected connection. The sessions
    /// themselves survive — their ledgers keep accumulating pushes until
    /// the client resumes, the ledger overflows, or the device lease
    /// expires.
    pub fn on_disconnect(&mut self, conn: ConnId) {
        for session in self.sessions.values_mut() {
            if session.conn == Some(conn) {
                session.conn = None;
            }
        }
        self.tel.instant(
            "conn.closed",
            self.cursor,
            Lane::control(0),
            SpanId::NONE,
            vec![Attr::u64("conn", conn)],
        );
    }

    /// Applies one decoded request from `conn` at the clock's current
    /// instant, per the serving semantics in the module docs.
    pub fn handle(&mut self, conn: ConnId, request: WireRequest) -> EngineOutput {
        let now = self.clock.now();
        let mut output = EngineOutput {
            frames: self.advance_to(now),
            shutdown: false,
        };
        self.stats.requests += 1;
        match request {
            WireRequest::Tracked {
                token,
                req_seq,
                push_ack,
                inner,
            } => self.handle_tracked(conn, token, req_seq, push_ack, &inner, now, &mut output),
            WireRequest::Resume { token, push_ack } => {
                self.handle_resume(conn, token, push_ack, now, &mut output)
            }
            WireRequest::PushAck { token, push_ack } => {
                let response = match self.session_by_token(token) {
                    Some(identity) => {
                        let session = self.sessions.get_mut(&identity).expect("token maps");
                        session.prune(push_ack);
                        WireResponse::Ok
                    }
                    None => unknown_session_response(),
                };
                output.frames.push((conn, encode_response(&response)));
            }
            other => {
                let response = self.apply(conn, &other, now, &mut output);
                output.frames.push((conn, encode_response(&response)));
            }
        }
        self.stats.responses += 1;
        output
    }

    fn session_by_token(&self, token: u64) -> Option<u64> {
        self.tokens.get(&token).copied()
    }

    /// The at-most-once path. A retransmit of the last applied envelope
    /// replays the recorded response verbatim; anything else either
    /// applies in order or gets a truthful sequence error. The op itself
    /// is never applied twice — that is the whole surviving-prefix
    /// argument.
    #[allow(clippy::too_many_arguments)]
    fn handle_tracked(
        &mut self,
        conn: ConnId,
        token: u64,
        req_seq: u64,
        push_ack: u64,
        inner: &WireRequest,
        now: SimTime,
        output: &mut EngineOutput,
    ) {
        let Some(identity) = self.session_by_token(token) else {
            let frame = encode_response(&unknown_session_response());
            output.frames.push((conn, frame));
            return;
        };
        {
            let session = self.sessions.get_mut(&identity).expect("token maps");
            // The envelope proves the client is on this conn now.
            session.conn = Some(conn);
            session.prune(push_ack);
            if req_seq == session.last_req_seq {
                if let Some(cached) = session.cached_response.clone() {
                    self.stats.requests_deduped += 1;
                    output.frames.push((conn, cached));
                    return;
                }
            }
            if req_seq != session.last_req_seq + 1 {
                let response = WireResponse::Error {
                    code: ERR_BAD_SEQUENCE,
                    detail: format!(
                        "envelope seq {req_seq} does not follow applied seq {}",
                        session.last_req_seq
                    ),
                };
                output.frames.push((conn, encode_response(&response)));
                return;
            }
        }
        let response = self.apply(conn, inner, now, output);
        let frame = encode_response(&response);
        // The lease sweep or a ledger overflow inside apply/advance may
        // have killed the session; cache only if it still exists.
        if let Some(session) = self.sessions.get_mut(&identity) {
            session.last_req_seq = req_seq;
            session.cached_response = Some(frame.clone());
        }
        output.frames.push((conn, frame));
    }

    fn handle_resume(
        &mut self,
        conn: ConnId,
        token: u64,
        push_ack: u64,
        now: SimTime,
        output: &mut EngineOutput,
    ) {
        let Some(identity) = self.session_by_token(token) else {
            let frame = encode_response(&unknown_session_response());
            output.frames.push((conn, frame));
            return;
        };
        let session = self.sessions.get_mut(&identity).expect("token maps");
        session.conn = Some(conn);
        session.prune(push_ack);
        let replaying = session.ledger.len() as u32;
        let response = WireResponse::SessionResumed {
            applied_req_seq: session.last_req_seq,
            replaying,
        };
        output.frames.push((conn, encode_response(&response)));
        // Replay strictly after the response so the client rebinds before
        // it sees the backlog; order within the ledger is seq order.
        for (_, frame) in session.ledger.iter() {
            output.frames.push((conn, frame.clone()));
        }
        self.stats.pushes_replayed += u64::from(replaying);
        self.stats.sessions_resumed += 1;
        self.tel.instant(
            "session.resumed",
            now,
            Lane::control(0),
            SpanId::NONE,
            vec![
                Attr::u64("imei", identity),
                Attr::u64("replayed", u64::from(replaying)),
            ],
        );
    }

    /// Mints a fresh session for `identity`, revoking any prior one (a
    /// client that re-Hellos has lost its token; the old ledger is
    /// unreachable to it and would only replay confusion).
    fn mint_session(&mut self, identity: u64, conn: ConnId, now: SimTime) -> u64 {
        if let Some(old) = self.sessions.remove(&identity) {
            self.tokens.remove(&old.token);
        }
        self.next_token += 1;
        // Decorrelate tokens from the mint counter so a client cannot
        // guess a neighbour's credential from its own.
        let token = self
            .next_token
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ identity;
        let device_bound = self.server.device(ImeiHash(identity)).is_some();
        self.sessions
            .insert(identity, Session::fresh(token, conn, device_bound));
        self.tokens.insert(token, identity);
        self.stats.sessions_created += 1;
        self.tel.instant(
            "session.bound",
            now,
            Lane::control(0),
            SpanId::NONE,
            vec![Attr::u64("imei", identity), Attr::u64("conn", conn)],
        );
        token
    }

    /// Rule 2: any device-originated frame is radio contact; renew the
    /// lease at receive time. Unknown devices renew nothing (they are
    /// about to get their own typed error from the op itself, or they
    /// are stale traffic from a deregistered device).
    fn renew_lease(&mut self, imei: u64, now: SimTime) {
        let _ = self.server.record_device_comm(ImeiHash(imei), now);
    }

    fn apply(
        &mut self,
        conn: ConnId,
        request: &WireRequest,
        now: SimTime,
        output: &mut EngineOutput,
    ) -> WireResponse {
        match request {
            WireRequest::Hello { imei } => {
                let token = self.mint_session(*imei, conn, now);
                WireResponse::SessionBound { token }
            }
            WireRequest::Register {
                imei,
                energy_budget_j,
                critical_battery_pct,
                battery_pct,
                device_type,
                sensors,
            } => {
                let result = self.server.register_device(
                    ImeiHash(*imei),
                    *energy_budget_j,
                    *critical_battery_pct,
                    *battery_pct,
                    sensors.clone(),
                    device_type.clone(),
                    now,
                );
                if result.is_ok() {
                    // Keep an existing session (a Hello-then-Register
                    // client keeps its token and ledger); mint one for
                    // bare-Register clients.
                    match self.sessions.get_mut(imei) {
                        Some(session) => {
                            session.conn = Some(conn);
                            session.device_bound = true;
                        }
                        None => {
                            self.mint_session(*imei, conn, now);
                        }
                    }
                }
                respond(result)
            }
            WireRequest::Deregister { imei } => {
                if let Some(session) = self.sessions.remove(imei) {
                    self.tokens.remove(&session.token);
                }
                respond(self.server.deregister_device(ImeiHash(*imei)))
            }
            WireRequest::UpdatePreferences {
                imei,
                energy_budget_j,
                critical_battery_pct,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.update_preferences(
                    ImeiHash(*imei),
                    *energy_budget_j,
                    *critical_battery_pct,
                ))
            }
            WireRequest::StateUpdate {
                imei,
                battery_pct,
                cs_energy_j,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.update_device_state(
                    ImeiHash(*imei),
                    *battery_pct,
                    *cs_energy_j,
                    now,
                ))
            }
            WireRequest::Observe {
                imei,
                lat_deg,
                lon_deg,
                cell,
            } => {
                self.renew_lease(*imei, now);
                respond(self.server.observe_device(
                    ImeiHash(*imei),
                    GeoPoint::new(*lat_deg, *lon_deg),
                    cell.map(|c| CellId(c as usize)),
                ))
            }
            WireRequest::Comm { imei } => {
                // The renewal IS the op; no double-stamping.
                respond(self.server.record_device_comm(ImeiHash(*imei), now))
            }
            WireRequest::SubmitBatch {
                imei,
                seq,
                attempt,
                readings,
            } => {
                self.renew_lease(*imei, now);
                let decoded = decode_readings(readings);
                match self.server.submit_sensed_batch(
                    ImeiHash(*imei),
                    *seq,
                    *attempt,
                    &decoded,
                    now,
                ) {
                    Ok(receipt) => {
                        let accepted = receipt
                            .outcomes
                            .iter()
                            .filter(|o| {
                                matches!(o, senseaid_core::DeliveryOutcome::Accepted { .. })
                            })
                            .count() as u32;
                        let duplicates = receipt
                            .outcomes
                            .iter()
                            .filter(|o| matches!(o, senseaid_core::DeliveryOutcome::Duplicate))
                            .count() as u32;
                        WireResponse::BatchAck {
                            ack: receipt.ack,
                            accepted,
                            duplicates,
                        }
                    }
                    Err(e) => error_response(&e),
                }
            }
            WireRequest::SubmitTask { cas, spec } => match build_task_spec(spec) {
                Ok(built) => match self.server.submit_task_for(CasId(*cas), built, now) {
                    Ok(task) => WireResponse::TaskCreated { task: task.0 },
                    Err(e) => error_response(&e),
                },
                Err(e) => error_response(&e),
            },
            WireRequest::DrainOutbox => WireResponse::Outbox {
                delivered: self.server.drain_outbox().len() as u32,
            },
            WireRequest::Stats => {
                // ServerStats is rich; the wire carries the load-bearing gauges.
                WireResponse::Stats {
                    devices: self.server.device_count() as u64,
                    tasks: self.server.task_count() as u64,
                    run_queue: self.server.run_queue_len() as u64,
                    wait_queue: self.server.wait_queue_len() as u64,
                    unresolved: self.server.unresolved_request_count() as u64,
                }
            }
            WireRequest::Shutdown => {
                output.shutdown = true;
                WireResponse::ShuttingDown
            }
            // Session-layer requests are routed in `handle` before apply;
            // reaching here means one was smuggled inside an envelope.
            WireRequest::Resume { .. }
            | WireRequest::PushAck { .. }
            | WireRequest::Tracked { .. } => WireResponse::Error {
                code: ERR_BAD_SEQUENCE,
                detail: "session control request inside a tracked envelope".to_owned(),
            },
        }
    }

    /// Graceful-shutdown flush: advance the scheduler to `now`, persist
    /// a final snapshot when a WAL is armed, and report what is durable.
    pub fn shutdown_flush(&mut self) -> FlushSummary {
        let now = self.clock.now();
        let _ = self.advance_to(now);
        let unacked_pushes = self.unacked_pushes();
        let armed = self.server.persist_stats().is_some();
        if armed {
            self.server.take_snapshot(now);
        }
        let stats = self.server.persist_stats();
        FlushSummary {
            persistence_armed: armed,
            journal_records: stats.as_ref().map(|s| s.journal_records).unwrap_or(0),
            snapshots_persisted: stats
                .as_ref()
                .map(|s| s.snapshots_full + s.snapshots_delta)
                .unwrap_or(0),
            generation: self.server.persist_generation(),
            unacked_pushes,
        }
    }
}

/// Reconstructs the server-side `TaskSpec` from its wire form through
/// the same builder a sim-mode CAS uses, so wire-submitted tasks face
/// identical validation.
pub fn build_task_spec(spec: &WireTaskSpec) -> Result<TaskSpec, SenseAidError> {
    let region = CircleRegion::new(
        GeoPoint::new(spec.centre_lat, spec.centre_lon),
        spec.radius_m,
    );
    let mut builder = TaskSpec::builder(spec.sensor)
        .region(region)
        .spatial_density(spec.spatial_density as usize);
    if spec.one_shot {
        builder = builder.one_shot();
    } else {
        builder = builder
            .sampling_period(SimDuration::from_micros(spec.period_us))
            .sampling_duration(SimDuration::from_micros(spec.duration_us));
    }
    builder.build()
}

/// Converts wire readings to the server's native tuple form.
pub fn decode_readings(readings: &[WireReading]) -> Vec<(senseaid_core::RequestId, SensorReading)> {
    readings
        .iter()
        .map(|r| {
            (
                senseaid_core::RequestId(r.request),
                SensorReading {
                    sensor: r.sensor,
                    value: r.value,
                    taken_at: SimTime::from_micros(r.taken_at_us),
                    position: GeoPoint::new(r.lat_deg, r.lon_deg),
                },
            )
        })
        .collect()
}

fn unknown_session_response() -> WireResponse {
    WireResponse::Error {
        code: ERR_UNKNOWN_SESSION,
        detail: "unknown session token (expired, revoked, or pre-restart)".to_owned(),
    }
}

fn respond(result: Result<(), SenseAidError>) -> WireResponse {
    match result {
        Ok(()) => WireResponse::Ok,
        Err(e) => error_response(&e),
    }
}

fn error_response(e: &SenseAidError) -> WireResponse {
    WireResponse::Error {
        code: error_code(e),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use senseaid_core::runtime::SimClock;
    use senseaid_device::Sensor;

    use crate::conn::FrameAssembler;
    use crate::trace::trace_server;
    use crate::wire::{decode_frame, WireFrame};

    fn response_of(output: &EngineOutput) -> WireResponse {
        let (_conn, frame) = output.frames.first().expect("a response frame");
        let mut assembler = FrameAssembler::new();
        assembler.extend(frame);
        let (kind, payload) = assembler
            .next_frame()
            .expect("response reassembles")
            .expect("response is complete");
        match decode_frame(kind, &payload).expect("response decodes") {
            WireFrame::Response(resp) => resp,
            other => panic!("expected a response, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_flush_reports_pushes_still_unacked_in_ledgers() {
        let clock = SimClock::new();
        let mut engine = ServeEngine::new(trace_server(1), Arc::new(clock.clone()));

        // Bind a session and enrol its device inside the task region.
        let output = engine.handle(1, WireRequest::Hello { imei: 7 });
        let WireResponse::SessionBound { .. } = response_of(&output) else {
            panic!("hello must bind a session");
        };
        clock.advance_to(SimTime::from_secs(1));
        engine.handle(
            1,
            WireRequest::Register {
                imei: 7,
                energy_budget_j: 400.0,
                critical_battery_pct: 10.0,
                battery_pct: 90.0,
                device_type: "test-phone".to_owned(),
                sensors: vec![Sensor::Barometer],
            },
        );
        clock.advance_to(SimTime::from_secs(2));
        engine.handle(
            1,
            WireRequest::Observe {
                imei: 7,
                lat_deg: 40.4284,
                lon_deg: -86.9138,
                cell: None,
            },
        );
        clock.advance_to(SimTime::from_secs(3));
        let spec = WireTaskSpec {
            sensor: Sensor::Barometer,
            centre_lat: 40.4284,
            centre_lon: -86.9138,
            radius_m: 2_000.0,
            spatial_density: 1,
            one_shot: false,
            period_us: 120_000_000,
            duration_us: 1_200_000_000,
        };
        engine.handle(1, WireRequest::SubmitTask { cas: 1, spec });

        // Let the scheduler poll: the selected device's session receives
        // assignment pushes that nobody ever acks.
        clock.advance_to(SimTime::from_mins(30));
        let pushed = engine.advance_to(SimTime::from_mins(30));
        assert!(
            !pushed.is_empty(),
            "the poll should have pushed an assignment to the bound session"
        );
        assert!(engine.unacked_pushes() > 0);

        let flush = engine.shutdown_flush();
        assert_eq!(
            flush.unacked_pushes,
            engine.unacked_pushes(),
            "the flush must report exactly the pushes still sitting in ledgers"
        );
        assert!(flush.unacked_pushes > 0);
        // No WAL was armed: the flush is truthful about that too, and the
        // unacked pushes are reported rather than persisted.
        assert!(!flush.persistence_armed);
        assert_eq!(flush.generation, None);
    }
}
