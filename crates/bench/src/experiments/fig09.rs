//! Figure 9 — fairness of the device selector.
//!
//! Paper setup: 1000 m radius at the CS department, one task, 10-minute
//! period, density 2, 90 minutes → 9 selector rounds over ~11 qualified
//! devices. Expected shape: the selector rotates through the population —
//! every device is selected once or at most twice, and a device that
//! leaves the region is skipped until it returns.

use std::collections::BTreeMap;

use senseaid_geo::NamedLocation;
use senseaid_sim::SimDuration;
use senseaid_workload::ScenarioConfig;

use crate::framework::{FrameworkKind, GroupReport};
use crate::runner::run_scenario;

/// The Fig 9 scenario.
pub fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        test_duration: SimDuration::from_mins(90),
        sampling_period: SimDuration::from_mins(10),
        spatial_density: 2,
        area_radius_m: 1000.0,
        tasks: 1,
        location: NamedLocation::CsDepartment,
        group_size: 20,
    }
}

/// How many times each device id was selected.
pub fn selection_counts(report: &GroupReport) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for round in &report.rounds {
        for id in &round.participating {
            *counts.entry(*id).or_insert(0) += 1;
        }
    }
    counts
}

/// Max − min selections over devices that were picked at least once.
pub fn selection_spread(report: &GroupReport) -> usize {
    let counts = selection_counts(report);
    let max = counts.values().copied().max().unwrap_or(0);
    let min = counts.values().copied().min().unwrap_or(0);
    max - min
}

/// Renders Fig 9.
pub fn run(seed: u64) -> String {
    let report = run_scenario(FrameworkKind::SenseAidComplete, scenario(), seed);
    let mut out = String::from(
        "=== Figure 9: device-selection rounds (radius 1 km, density 2, 10-min period) ===\n",
    );
    for (i, round) in report.rounds.iter().enumerate() {
        out.push_str(&format!(
            "T{} ({}): qualified={} selected={:?}\n",
            i + 1,
            round.at,
            round.qualified,
            round.participating,
        ));
    }
    let counts = selection_counts(&report);
    out.push_str("\nselections per device: ");
    for (id, n) in &counts {
        out.push_str(&format!("dev{id}×{n} "));
    }
    out.push_str(&format!(
        "\nfairness spread (max−min among selected devices): {}\n",
        selection_spread(&report)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_rotates_fairly() {
        let report = run_scenario(FrameworkKind::SenseAidComplete, scenario(), 11);
        assert!(
            report.rounds.len() >= 8,
            "expect ~9 rounds, got {}",
            report.rounds.len()
        );
        for round in &report.rounds {
            assert_eq!(round.participating.len(), 2);
        }
        // The paper's observation: each device is selected once or twice.
        let counts = selection_counts(&report);
        let max = counts.values().copied().max().unwrap();
        assert!(max <= 3, "no device should be hammered; counts {counts:?}");
        assert!(
            counts.len() >= 7,
            "selections must spread over most of the population: {counts:?}"
        );
    }

    #[test]
    fn spread_is_small() {
        let report = run_scenario(FrameworkKind::SenseAidComplete, scenario(), 11);
        assert!(
            selection_spread(&report) <= 2,
            "spread {} too wide",
            selection_spread(&report)
        );
    }
}
