//! Figure 1 — the energy-tolerance survey histogram.
//!
//! Paper: 109 university students; 41.4 % willing to spend up to 2 % of
//! battery on crowdsensing; none willing to go above 10 %.

use senseaid_workload::SurveyDistribution;

/// Renders the Fig 1 histogram (the survey is input data; `seed` is
/// unused but kept for a uniform experiment signature).
pub fn run(_seed: u64) -> String {
    let survey = SurveyDistribution::paper();
    let mut out = String::from("=== Figure 1: energy usage expectations (109 respondents) ===\n");
    out.push_str(&survey.render());
    out.push_str(&format!(
        "\nheadline: {:.1}% of respondents tolerate at most 2% battery; {:.1}% tolerate more than 10%\n",
        100.0 * survey.share_at(2.0),
        100.0 * survey.share_above(10.0),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn output_carries_the_anchors() {
        let text = super::run(0);
        assert!(text.contains("41.3%") || text.contains("41.4%"));
        assert!(text.contains("tolerate more than 10%"));
        assert!(text.contains("0.0% tolerate more than 10%"));
    }
}
