//! Deterministic exporters: JSONL and Chrome Trace Event format.
//!
//! Both are hand-rolled (the workspace carries no JSON dependency) and
//! emit events strictly in recording order, so for a fixed seed the output
//! is byte-identical run to run and across `SENSEAID_WORKERS`.
//!
//! The Chrome Trace Event output loads directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`: shards render as
//! processes, devices as threads (see [`Lane`]), spans as `B`/`E` pairs,
//! instants as `i`, and the final registry snapshot as `C` counter tracks.

use std::collections::{BTreeMap, BTreeSet};

use crate::span::{Attr, AttrValue, Event, Lane, SpanId};

/// Escapes a string for inclusion inside a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a valid JSON number (non-finite values become 0).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn attr_json(attrs: &[Attr]) -> String {
    let mut out = String::from("{");
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", esc(a.key)));
        match &a.value {
            AttrValue::U64(v) => out.push_str(&v.to_string()),
            AttrValue::I64(v) => out.push_str(&v.to_string()),
            AttrValue::F64(v) => out.push_str(&fmt_f64(*v)),
            AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            AttrValue::Str(v) => out.push_str(&format!("\"{}\"", esc(v))),
        }
    }
    out.push('}');
    out
}

/// Serializes a stream as JSON Lines: one object per event, in recording
/// order. This is the byte-identity surface the determinism tests compare.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        match ev {
            Event::Enter {
                id,
                parent,
                at,
                name,
                lane,
                attrs,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"enter\",\"id\":{},\"parent\":{},\"ts\":{},\"pid\":{},\"tid\":{},\"name\":\"{}\",\"attrs\":{}}}\n",
                    id.0, parent.0, at.as_micros(), lane.pid, lane.tid, esc(name), attr_json(attrs),
                ));
            }
            Event::Exit { id, at } => {
                out.push_str(&format!(
                    "{{\"ev\":\"exit\",\"id\":{},\"ts\":{}}}\n",
                    id.0,
                    at.as_micros(),
                ));
            }
            Event::Instant {
                id,
                parent,
                at,
                name,
                lane,
                attrs,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"instant\",\"id\":{},\"parent\":{},\"ts\":{},\"pid\":{},\"tid\":{},\"name\":\"{}\",\"attrs\":{}}}\n",
                    id.0, parent.0, at.as_micros(), lane.pid, lane.tid, esc(name), attr_json(attrs),
                ));
            }
            Event::Stats { at, snapshot } => {
                out.push_str(&format!(
                    "{{\"ev\":\"stats\",\"ts\":{},\"registry\":{}}}\n",
                    at.as_micros(),
                    snapshot.to_json(),
                ));
            }
        }
    }
    out
}

/// Serializes a stream in Chrome Trace Event format.
///
/// `SimTime` microseconds map directly onto the format's `ts` field, so
/// the viewer's timeline reads in simulated time.
pub fn to_chrome_trace(events: &[Event]) -> String {
    // Exits carry no lane of their own; resolve through the opening Enter.
    let mut lane_of: BTreeMap<SpanId, Lane> = BTreeMap::new();
    let mut lanes: BTreeSet<Lane> = BTreeSet::new();
    for ev in events {
        if let Event::Enter { id, lane, .. } = ev {
            lane_of.insert(*id, *lane);
        }
        if let Some(lane) = ev.lane() {
            lanes.insert(lane);
        }
    }

    let mut records: Vec<String> = Vec::new();
    for pid in lanes.iter().map(|l| l.pid).collect::<BTreeSet<_>>() {
        records.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"shard {pid}\"}}}}"
        ));
    }
    for lane in &lanes {
        let label = if lane.tid == 0 {
            "control".to_owned()
        } else {
            format!("device {}", lane.tid)
        };
        records.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            lane.pid, lane.tid, label,
        ));
    }

    for ev in events {
        match ev {
            Event::Enter {
                id,
                parent,
                at,
                name,
                lane,
                attrs,
            } => {
                records.push(format!(
                    "{{\"ph\":\"B\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{{\"span\":{},\"parent\":{},\"attrs\":{}}}}}",
                    lane.pid, lane.tid, at.as_micros(), esc(name), id.0, parent.0, attr_json(attrs),
                ));
            }
            Event::Exit { id, at } => {
                let lane = lane_of.get(id).copied().unwrap_or_default();
                records.push(format!(
                    "{{\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                    lane.pid,
                    lane.tid,
                    at.as_micros(),
                ));
            }
            Event::Instant {
                id,
                parent,
                at,
                name,
                lane,
                attrs,
            } => {
                records.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{{\"span\":{},\"parent\":{},\"attrs\":{}}}}}",
                    lane.pid, lane.tid, at.as_micros(), esc(name), id.0, parent.0, attr_json(attrs),
                ));
            }
            Event::Stats { at, snapshot } => {
                for (name, value) in snapshot.counters() {
                    records.push(format!(
                        "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                        at.as_micros(),
                        esc(name),
                        value,
                    ));
                }
            }
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        records.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use senseaid_sim::SimTime;

    use super::*;
    use crate::registry::RegistrySnapshot;
    use crate::Telemetry;

    fn sample_events() -> Vec<Event> {
        let tel = Telemetry::recording();
        let t0 = SimTime::from_secs(0);
        let t1 = SimTime::from_secs(1);
        let req = tel.enter(
            "request",
            t0,
            Lane::control(0),
            SpanId::NONE,
            vec![Attr::u64("task", 3)],
        );
        tel.instant(
            "selection",
            t0,
            Lane::control(0),
            req,
            vec![Attr::str("who", "a\"b"), Attr::f64("score", 0.5)],
        );
        tel.exit(req, t1);
        let mut snap = RegistrySnapshot::new();
        snap.set_counter("server.requests_assigned", 1);
        tel.record_stats(t1, snap);
        tel.events()
    }

    #[test]
    fn jsonl_is_one_object_per_event() {
        let events = sample_events();
        let jsonl = to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        for line in jsonl.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(jsonl.contains("\"ev\":\"enter\""));
        assert!(jsonl.contains("\"who\":\"a\\\"b\""));
        assert!(jsonl.contains("\"ev\":\"stats\""));
    }

    #[test]
    fn chrome_trace_has_metadata_and_balanced_phases() {
        let trace = to_chrome_trace(&sample_events());
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"thread_name\""));
        assert_eq!(
            trace.matches("\"ph\":\"B\"").count(),
            trace.matches("\"ph\":\"E\"").count()
        );
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.trim_end().ends_with("]}"));
    }

    #[test]
    fn exit_inherits_the_enter_lane() {
        let tel = Telemetry::recording();
        let id = tel.enter(
            "x",
            SimTime::from_secs(0),
            Lane::device(2, 77),
            SpanId::NONE,
            vec![],
        );
        tel.exit(id, SimTime::from_secs(1));
        let trace = to_chrome_trace(&tel.events());
        assert!(trace.contains("{\"ph\":\"E\",\"pid\":2,\"tid\":77,"));
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\nb\t\"\\"), "a\\nb\\t\\\"\\\\");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_f64_never_emits_invalid_json() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}
